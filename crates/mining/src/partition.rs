//! The Partition algorithm of Savasere, Omiecinski, and Navathe [17].
//!
//! Two passes over the data: (1) split the collection into partitions that
//! fit in memory and mine each *locally* — any globally frequent itemset is
//! locally frequent in at least one partition, so the union of local
//! results is a superset of the answer; (2) count the union's supports
//! globally and keep the truly frequent ones.
//!
//! Section 7 of the paper proposes two OSSM enhancements, both implemented
//! here:
//!
//! * a per-partition OSSM prunes *local* candidates during phase 1;
//! * summing the per-partition OSSM bounds gives a *global* upper bound,
//!   pruning global candidates before the phase-2 counting pass.

use std::time::Instant;

use ossm_core::{Ossm, OssmBuilder, Strategy};
use ossm_data::{Dataset, Itemset, PageStore};

use crate::apriori::{Apriori, MiningOutcome};
use crate::filter::OssmFilter;
use crate::metrics::{LevelMetrics, MiningMetrics};
use crate::support::{count_with, CountingBackend, FrequentPatterns};

/// Partition-algorithm configuration.
#[derive(Clone, Copy, Debug)]
pub struct Partition {
    /// Number of partitions the collection is split into.
    pub num_partitions: usize,
    /// Counting back-end for both phases.
    pub backend: CountingBackend,
    /// Mine partitions on scoped worker threads (phase 1 only; results are
    /// identical either way).
    pub parallel: bool,
}

impl Partition {
    /// Partition mining with `num_partitions` parts.
    ///
    /// # Panics
    /// Panics if `num_partitions == 0`.
    pub fn new(num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        Partition {
            num_partitions,
            backend: CountingBackend::LinearScan,
            parallel: false,
        }
    }

    /// Enables parallel phase-1 mining.
    pub fn parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Mines without any OSSM.
    pub fn mine(&self, dataset: &Dataset, min_support: u64) -> MiningOutcome {
        self.mine_impl(dataset, min_support, None)
    }

    /// Mines with one OSSM per partition (Section 7's enhancement): local
    /// candidates are pruned by the partition's own map, and global
    /// candidates by the sum of all partition bounds.
    ///
    /// `segments_per_partition` controls each partition OSSM's size.
    pub fn mine_with_ossms(
        &self,
        dataset: &Dataset,
        min_support: u64,
        segments_per_partition: usize,
    ) -> MiningOutcome {
        self.mine_impl(dataset, min_support, Some(segments_per_partition))
    }

    fn mine_impl(
        &self,
        dataset: &Dataset,
        min_support: u64,
        ossm_segments: Option<usize>,
    ) -> MiningOutcome {
        assert!(min_support > 0, "support threshold must be at least 1");
        let start = Instant::now();
        let n = dataset.len() as u64;
        let k = self.num_partitions.min(dataset.len().max(1));
        let ranges = dataset.partition_ranges(k);

        // Phase 1: local mining. Local threshold ⌈min_support · |part| / N⌉
        // (at least 1) guarantees no globally frequent itemset is missed.
        // Partitions are independent, so they mine in parallel (scoped
        // threads; the paper notes Partition "favours parallelism").
        let backend = self.backend;
        let mine_one =
            move |range: &std::ops::Range<usize>| -> Option<(MiningOutcome, Option<Ossm>)> {
                let part = Dataset::new(
                    dataset.num_items(),
                    dataset.transactions()[range.clone()].to_vec(),
                );
                if part.is_empty() {
                    return None;
                }
                let local_min = ((min_support * part.len() as u64).div_ceil(n.max(1))).max(1);
                let ossm = ossm_segments.map(|segs| {
                    let pages = PageStore::with_page_count(part.clone(), (segs * 4).max(1));
                    OssmBuilder::new(segs)
                        .strategy(Strategy::Rc)
                        .build(&pages)
                        .0
                });
                let outcome = match &ossm {
                    Some(map) => Apriori::new().with_backend(backend).mine_filtered(
                        &part,
                        local_min,
                        &OssmFilter::new(map),
                    ),
                    None => Apriori::new().with_backend(backend).mine(&part, local_min),
                };
                Some((outcome, ossm))
            };
        let results: Vec<Option<(MiningOutcome, Option<Ossm>)>> = if self.parallel && k > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|r| scope.spawn(move || mine_one(r)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("partition worker panicked"))
                    .collect()
            })
        } else {
            ranges.iter().map(mine_one).collect()
        };

        let mut global_candidates: std::collections::BTreeSet<Itemset> = Default::default();
        let mut partition_ossms: Vec<Ossm> = Vec::new();
        let mut phase1_metrics = MiningMetrics::default();
        for (outcome, ossm) in results.into_iter().flatten() {
            for l in outcome.metrics.levels {
                phase1_metrics.push_level(l);
            }
            for (p, _) in outcome.patterns.iter() {
                global_candidates.insert(p.clone());
            }
            if let Some(map) = ossm {
                partition_ossms.push(map);
            }
        }

        // Section 7's global pruning: a candidate whose summed per-partition
        // bound misses the global threshold cannot be globally frequent.
        let generated = global_candidates.len() as u64;
        let candidates: Vec<Itemset> = global_candidates
            .into_iter()
            .filter(|c| {
                if partition_ossms.is_empty() {
                    return true;
                }
                let bound: u64 = partition_ossms.iter().map(|o| o.upper_bound(c)).sum();
                bound >= min_support
            })
            .collect();
        let globally_pruned = generated - candidates.len() as u64;

        // Phase 2: one global counting pass over the surviving candidates.
        let counts = count_with(self.backend, dataset.transactions(), &candidates);
        let mut patterns = FrequentPatterns::new();
        for (c, sup) in candidates.iter().zip(&counts) {
            if *sup >= min_support {
                patterns.insert(c.clone(), *sup);
            }
        }

        // Metrics: phase-1 rows first, then one synthetic "global pass" row
        // per candidate size so candidate-2 reporting still works.
        let mut metrics = phase1_metrics;
        let mut by_len: std::collections::BTreeMap<usize, LevelMetrics> = Default::default();
        for (c, sup) in candidates.iter().zip(&counts) {
            let row = by_len.entry(c.len()).or_insert_with(|| LevelMetrics {
                level: c.len(),
                ..Default::default()
            });
            row.generated += 1;
            row.counted += 1;
            if *sup >= min_support {
                row.frequent += 1;
            }
        }
        if let Some(first) = by_len.values_mut().next() {
            first.filtered_out = globally_pruned; // attribute global pruning once
        }
        for (_, row) in by_len {
            metrics.push_level(row);
        }
        metrics.elapsed = start.elapsed();
        MiningOutcome { patterns, metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_data::gen::{QuestConfig, SkewedConfig};

    fn quest(n: usize, m: usize) -> Dataset {
        QuestConfig {
            num_transactions: n,
            num_items: m,
            ..QuestConfig::small()
        }
        .generate()
    }

    #[test]
    fn agrees_with_apriori() {
        let d = quest(300, 25);
        let a = Apriori::new().mine(&d, 8);
        for parts in [1, 2, 3, 7] {
            let p = Partition::new(parts).mine(&d, 8);
            assert_eq!(a.patterns, p.patterns, "partitions {parts}");
        }
    }

    #[test]
    fn agrees_on_skewed_data() {
        // Skew is the adversarial case for Partition: locally frequent
        // itemsets abound in their season. Results must still be exact.
        let d = SkewedConfig {
            num_transactions: 400,
            num_items: 20,
            ..SkewedConfig::small()
        }
        .generate();
        let a = Apriori::new().mine(&d, 12);
        let p = Partition::new(4).mine(&d, 12);
        assert_eq!(a.patterns, p.patterns);
    }

    #[test]
    fn ossm_enhanced_partition_is_exact() {
        let d = quest(300, 25);
        let a = Apriori::new().mine(&d, 8);
        let p = Partition::new(3).mine_with_ossms(&d, 8, 5);
        assert_eq!(a.patterns, p.patterns, "OSSM pruning must be lossless");
    }

    #[test]
    fn more_partitions_than_transactions_is_fine() {
        let d = quest(10, 8);
        let p = Partition::new(50).mine(&d, 2);
        let a = Apriori::new().mine(&d, 2);
        assert_eq!(a.patterns, p.patterns);
    }

    #[test]
    fn parallel_phase_1_is_equivalent() {
        let d = quest(400, 25);
        for (parts, min_support) in [(2, 8), (4, 10), (8, 12)] {
            let serial = Partition::new(parts).mine(&d, min_support);
            let parallel = Partition::new(parts).parallel().mine(&d, min_support);
            assert_eq!(serial.patterns, parallel.patterns, "parts {parts}");
            let with_ossms = Partition::new(parts)
                .parallel()
                .mine_with_ossms(&d, min_support, 3);
            assert_eq!(serial.patterns, with_ossms.patterns);
        }
    }

    #[test]
    fn single_partition_degenerates_to_apriori() {
        let d = quest(150, 15);
        let a = Apriori::new().mine(&d, 5);
        let p = Partition::new(1).mine(&d, 5);
        assert_eq!(a.patterns, p.patterns);
    }
}
