//@path: crates/core/src/metrics.rs
//@expect: R3
//! Seeded violation for rule R3: a counter and a span declared with
//! names that are not in `crates/obs/registry.txt`.

pub static ROGUE: Counter = Counter::new("core.fixture.unregistered");

pub fn traced() {
    let _s = span("core.fixture.rogue_span");
}
