//! Corruption triage and best-effort repair for `OSSMPAGE` stores.
//!
//! [`crate::disk::DiskStore`] is deliberately strict: a checksum failure
//! anywhere is an error, because the OSSM derived from the store must be
//! a sound upper-bound oracle (eq. (1) of the paper). This module is the
//! other half of that bargain — when strict reading fails, [`scan_store`]
//! parses the same bytes *leniently*, classifying each page as intact or
//! corrupt, and [`repair_store`] writes a fresh, fully-checksummed v2
//! store from whatever the intact parts still determine:
//!
//! * an intact data page is carried over verbatim (**restored**);
//! * a corrupt data page whose index summary survives keeps that summary
//!   — exact aggregates, no transactions (**quarantined**);
//! * a page corrupt in both places gets a **widened** summary: every item
//!   support and the transaction count are set to the maximum a page of
//!   this size could physically hold, so any segment containing the page
//!   over-estimates — bounds stay sound upper bounds, just looser.
//!
//! The repaired file is written `tmp + fsync + rename`, so a crash during
//! repair never damages the source. `ossm verify` / `ossm repair` in the
//! CLI are thin wrappers over this module.

use std::io::{self, Read, Seek, SeekFrom};
use std::path::Path;

use crate::checksum::crc32c;
use crate::disk::PageSummary;
use crate::fault;
use crate::format;
use crate::item::Itemset;

/// Triage verdict for one page of a scanned store.
#[derive(Debug)]
pub struct PageScan {
    /// Whether the page slot's checksum (v2) and structure verified.
    pub data_intact: bool,
    /// The page's aggregate from the index, when the index survived.
    pub index_summary: Option<PageSummary>,
    /// The decoded transactions, when the data survived.
    pub data: Option<Vec<Itemset>>,
}

impl PageScan {
    /// Whether *some* exact aggregate survives for this page (from data
    /// or from the checksummed index).
    // SOUND: a query only — when it returns false, recovery must widen
    // this page (`widened_summary`) instead of trusting any field.
    pub fn has_exact_aggregate(&self) -> bool {
        self.data_intact || self.index_summary.is_some()
    }
}

/// The result of leniently scanning a (possibly damaged) store.
#[derive(Debug)]
pub struct StoreScan {
    /// Format version the file declares.
    pub version: u32,
    /// Item-domain size.
    pub m: usize,
    /// Logical page size.
    pub page_bytes: u32,
    /// Whether the header's own checksum verified (v1: vacuously true).
    pub header_intact: bool,
    /// Whether the index region's checksum and structure verified.
    pub index_intact: bool,
    /// One verdict per declared page.
    pub pages: Vec<PageScan>,
}

impl StoreScan {
    /// A store with nothing wrong: strict readers will accept it as-is.
    pub fn is_clean(&self) -> bool {
        self.header_intact && self.index_intact && self.pages.iter().all(|p| p.data_intact)
    }

    /// Number of pages whose data did not verify.
    pub fn corrupt_pages(&self) -> usize {
        self.pages.iter().filter(|p| !p.data_intact).count()
    }

    /// One-line human summary, used by `ossm verify`.
    pub fn describe(&self) -> String {
        if self.is_clean() {
            format!(
                "clean: v{} store, {} pages, all checksums verified",
                self.version,
                self.pages.len()
            )
        } else {
            format!(
                "corrupt: header {}, index {}, {}/{} pages damaged",
                if self.header_intact { "ok" } else { "BAD" },
                if self.index_intact { "ok" } else { "BAD" },
                self.corrupt_pages(),
                self.pages.len()
            )
        }
    }
}

/// What [`repair_store`] managed to salvage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Pages carried over intact.
    pub restored: usize,
    /// Pages whose data was lost but whose exact index aggregate was kept.
    pub quarantined: usize,
    /// Pages replaced by a maximal (sound but loose) aggregate.
    pub widened: usize,
    /// Whether the index had to be rebuilt rather than carried over.
    pub index_rebuilt: bool,
}

/// Leniently scans the store at `path`, classifying every page. Errors
/// only when the file cannot be located at all or its header is too
/// damaged to even locate the pages (wrong magic, implausible geometry).
pub fn scan_store(path: &Path) -> io::Result<StoreScan> {
    let mut file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let header = format::read_header(&mut file, file_len)?;

    // Index first: it is tiny and, when its checksum holds, gives an
    // exact aggregate even for pages whose data is gone.
    file.seek(SeekFrom::Start(header.index_offset))?;
    let mut index_bytes = Vec::new();
    file.read_to_end(&mut index_bytes)?;
    let crc_ok = header.version < format::V2 || crc32c(&index_bytes) == header.index_crc;
    let index = if crc_ok {
        format::parse_index(&index_bytes, header.m, header.num_pages).ok()
    } else {
        None
    };

    let slot = header.slot_bytes() as usize;
    let payload = header.page_bytes as usize;
    let mut pages = Vec::with_capacity(header.num_pages as usize);
    let mut buf = vec![0u8; slot];
    for p in 0..header.num_pages {
        file.seek(SeekFrom::Start(header.page_offset(p)))?;
        let mut page = PageScan {
            data_intact: false,
            index_summary: index.as_ref().map(|idx| idx[p as usize].clone()),
            data: None,
        };
        if file.read_exact(&mut buf).is_ok() {
            let crc_ok = header.version < format::V2 || {
                let stored = u32::from_le_bytes(
                    buf[payload..]
                        .try_into()
                        .expect("slot ends in a 4-byte CRC"),
                );
                crc32c(&buf[..payload]) == stored
            };
            if crc_ok {
                if let Ok(txs) = format::decode_page(&buf[..payload], header.m) {
                    page.data_intact = true;
                    page.data = Some(txs);
                }
            }
        }
        pages.push(page);
    }
    Ok(StoreScan {
        version: header.version,
        m: header.m,
        page_bytes: header.page_bytes,
        header_intact: header.header_ok,
        index_intact: index.is_some(),
        pages,
    })
}

/// The widest aggregate a page of `page_bytes` can physically represent:
/// a transaction costs ≥ 4 payload bytes, one carrying a given item ≥ 8,
/// and 4 bytes go to the page's own count. Using these maxima for a lost
/// page over-estimates every support, so eq. (1) stays an upper bound.
// SOUND: widening — the returned supports are the physical maxima a
// page of this size can hold, so they dominate whatever the lost page
// truly contained; eq. (1) is monotone in each support, hence the bound
// can only grow.
pub fn widened_summary(m: usize, page_bytes: u32) -> PageSummary {
    let budget = page_bytes.saturating_sub(4);
    let max_support = budget / 8;
    PageSummary {
        transactions: budget / 4,
        supports: (0..m as u32).map(|item| (item, max_support)).collect(),
    }
}

/// Rewrites the store at `src` as a clean, fully-checksummed v2 store at
/// `dst` (which may equal `src`), salvaging per the module docs. The
/// output is written to a temporary sibling, fsynced, and renamed into
/// place, so failure at any point leaves `src` untouched.
pub fn repair_store(src: &Path, dst: &Path) -> io::Result<RepairOutcome> {
    let scan = scan_store(src)?;
    let mut outcome = RepairOutcome {
        index_rebuilt: !scan.index_intact,
        ..RepairOutcome::default()
    };
    let payload_bytes = scan.page_bytes as usize;
    let mut slots: Vec<Vec<u8>> = Vec::with_capacity(scan.pages.len());
    let mut summaries: Vec<PageSummary> = Vec::with_capacity(scan.pages.len());
    let empty_payload =
        format::encode_page_payload(&[], payload_bytes).expect("empty page always fits");
    for page in &scan.pages {
        let (payload, summary) = if let Some(txs) = &page.data {
            outcome.restored += 1;
            let payload = format::encode_page_payload(txs, payload_bytes)
                .expect("re-encoding decoded transactions cannot overflow the page");
            (payload, format::summarize(txs))
        } else if let Some(summary) = &page.index_summary {
            outcome.quarantined += 1;
            (empty_payload.clone(), summary.clone())
        } else {
            outcome.widened += 1;
            (
                empty_payload.clone(),
                widened_summary(scan.m, scan.page_bytes),
            )
        };
        let crc = crc32c(&payload);
        let mut slot = payload;
        slot.extend_from_slice(&crc.to_le_bytes());
        slots.push(slot);
        summaries.push(summary);
    }

    let tmp = dst.with_extension("repair-tmp");
    {
        let mut out = io::BufWriter::new(std::fs::File::create(&tmp)?);
        let num_pages = slots.len() as u64;
        let slot_bytes = u64::from(scan.page_bytes) + format::PAGE_TRAILER;
        let index_offset = format::HEADER_V2 + num_pages * slot_bytes;
        let index = format::encode_index(&summaries);
        let header = format::encode_header_v2(
            scan.m as u32,
            scan.page_bytes,
            num_pages,
            index_offset,
            crc32c(&index),
        );
        fault::write_all_tagged(&mut out, "data.disk.write_header", &header)?;
        for slot in &slots {
            fault::write_all_tagged(&mut out, "data.disk.write_page", slot)?;
        }
        fault::write_all_tagged(&mut out, "data.disk.write_index", &index)?;
        out.into_inner()?.sync_all()?;
    }
    std::fs::rename(&tmp, dst)?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{write_paged, DiskStore};
    use crate::gen::QuestConfig;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ossm-repair-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample() -> crate::Dataset {
        QuestConfig {
            num_transactions: 400,
            num_items: 40,
            ..QuestConfig::small()
        }
        .generate()
    }

    fn flip_page_byte(path: &Path, page: usize, page_bytes: usize) {
        let mut bytes = std::fs::read(path).expect("read");
        let slot = page_bytes + format::PAGE_TRAILER as usize;
        let at = format::HEADER_V2 as usize + page * slot + 64;
        bytes[at] ^= 0x20;
        std::fs::write(path, &bytes).expect("rewrite");
    }

    #[test]
    fn clean_stores_scan_clean() {
        let path = tmp("clean.pages");
        write_paged(&path, &sample(), 1024).expect("write");
        let scan = scan_store(&path).expect("scan");
        assert!(scan.is_clean(), "{}", scan.describe());
        assert_eq!(scan.corrupt_pages(), 0);
        assert!(scan.pages.iter().all(super::PageScan::has_exact_aggregate));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn repair_restores_from_intact_pages_and_keeps_exact_aggregates() {
        let d = sample();
        let path = tmp("restore.pages");
        write_paged(&path, &d, 1024).expect("write");
        let before = scan_store(&path).expect("scan");
        let damaged_summary = before.pages[1].index_summary.clone().expect("index");
        flip_page_byte(&path, 1, 1024);

        let scan = scan_store(&path).expect("scan");
        assert!(!scan.is_clean());
        assert_eq!(scan.corrupt_pages(), 1);
        assert!(!scan.pages[1].data_intact);
        assert!(scan.pages[1].has_exact_aggregate(), "index survives");

        let fixed = tmp("restore.fixed.pages");
        let outcome = repair_store(&path, &fixed).expect("repair");
        assert_eq!(outcome.quarantined, 1);
        assert_eq!(outcome.widened, 0);
        assert_eq!(outcome.restored, scan.pages.len() - 1);

        // The repaired store is strictly readable, and the quarantined
        // page's aggregate is byte-for-byte the exact original.
        let store = DiskStore::open(&fixed, 2).expect("open repaired");
        assert_eq!(store.summaries()[1], damaged_summary);
        assert!(scan_store(&fixed).expect("rescan").is_clean());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&fixed).ok();
    }

    #[test]
    fn double_damage_widens_to_a_sound_over_estimate() {
        let d = sample();
        let path = tmp("widen.pages");
        write_paged(&path, &d, 1024).expect("write");
        let before = scan_store(&path).expect("scan");
        let true_summary = before.pages[0].index_summary.clone().expect("index");
        flip_page_byte(&path, 0, 1024);
        // Also corrupt the index region so no exact aggregate survives.
        let mut bytes = std::fs::read(&path).expect("read");
        let at = bytes.len() - 2;
        bytes[at] ^= 0x08;
        std::fs::write(&path, &bytes).expect("rewrite");

        let scan = scan_store(&path).expect("scan");
        assert!(!scan.index_intact);
        assert!(!scan.pages[0].has_exact_aggregate());

        let fixed = tmp("widen.fixed.pages");
        let outcome = repair_store(&path, &fixed).expect("repair");
        assert_eq!(outcome.widened, 1);
        assert!(outcome.index_rebuilt);

        // Widened supports dominate the true page aggregate: soundness.
        let store = DiskStore::open(&fixed, 2).expect("open repaired");
        let widened = store.summaries()[0].dense(store.num_items());
        let truth = true_summary.dense(store.num_items());
        for (w, t) in widened.iter().zip(&truth) {
            assert!(w >= t, "widened {w} < true {t}");
        }
        assert!(
            u64::from(store.summaries()[0].transactions) >= u64::from(true_summary.transactions)
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&fixed).ok();
    }

    #[test]
    fn repair_is_atomic_over_the_destination() {
        let d = sample();
        let path = tmp("atomic.pages");
        write_paged(&path, &d, 1024).expect("write");
        // In-place repair of a clean store is an identity.
        let outcome = repair_store(&path, &path).expect("repair");
        assert_eq!(outcome.quarantined + outcome.widened, 0);
        let mut store = DiskStore::open(&path, 2).expect("open");
        assert_eq!(store.to_dataset().expect("read"), d);
        std::fs::remove_file(&path).ok();
    }
}
