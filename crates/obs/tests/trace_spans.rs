//! Live behavior of the hierarchical span layer (compiled only with
//! `--features enabled`).
//!
//! These tests share the process-global trace collector, so they run
//! under a mutex: cargo runs tests in this binary on multiple threads,
//! and `trace_begin`/`trace_take` bracket a *process*-wide recording.

#![cfg(feature = "enabled")]

use std::sync::{Mutex, MutexGuard, OnceLock};

use ossm_obs::{detail_span, registry, span, trace_active, trace_begin, trace_take, Counter};

fn trace_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    // A test that panicked mid-trace poisons the mutex; the lock is still
    // a valid serialization point.
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn spans_nest_through_the_thread_local_stack() {
    let _serial = trace_lock();
    trace_begin();
    {
        let _root = span("t.root");
        {
            let _child = span("t.child");
            let _leaf = span("t.leaf");
        }
        let _sibling = span("t.sibling");
    }
    let trace = trace_take();
    assert_eq!(trace.len(), 4);
    let find = |name: &str| {
        trace
            .events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    let root = find("t.root");
    assert_eq!(root.parent, None);
    assert_eq!(find("t.child").parent, Some(root.id));
    assert_eq!(find("t.leaf").parent, Some(find("t.child").id));
    assert_eq!(find("t.sibling").parent, Some(root.id));
}

#[test]
fn folded_export_of_a_real_trace_sums_to_the_root_duration() {
    let _serial = trace_lock();
    trace_begin();
    {
        let _root = span("t.sum.root");
        for _ in 0..3 {
            let _inner = span("t.sum.inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let trace = trace_take();
    let folded = trace.to_folded();
    let total: u64 = folded
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    let root = trace.root_duration_nanos();
    assert!(root >= 3_000_000, "three 1ms sleeps inside the root");
    // Self times telescope, so the sum matches the root duration exactly
    // up to the saturating subtraction (acceptance bound: within 1%).
    let diff = root.abs_diff(total);
    assert!(
        diff * 100 <= root,
        "folded sum {total} vs root duration {root}"
    );
}

#[test]
fn spans_record_phase_aggregates_with_or_without_a_trace() {
    let _serial = trace_lock();
    assert!(!trace_active());
    drop(span("t.phase.alias"));
    let snap = registry().snapshot();
    let p = snap.phases.get("t.phase.alias").expect("phase recorded");
    assert!(p.calls >= 1);
}

#[test]
fn detail_spans_are_inert_without_a_trace() {
    let _serial = trace_lock();
    assert!(!trace_active());
    drop(detail_span("t.detail.untraced"));
    let snap = registry().snapshot();
    assert!(
        !snap.phases.contains_key("t.detail.untraced"),
        "detail spans must not touch the registry when untraced"
    );

    trace_begin();
    drop(detail_span("t.detail.traced"));
    let trace = trace_take();
    assert!(
        trace.events.iter().any(|e| e.name == "t.detail.traced"),
        "detail spans must appear in an active trace"
    );
    assert!(
        !registry().snapshot().phases.contains_key("t.detail.traced"),
        "detail spans never feed the phase aggregates"
    );
}

#[test]
fn attachments_and_counter_deltas_land_in_args() {
    static WATCHED: Counter = Counter::new("t.watched");
    let _serial = trace_lock();
    trace_begin();
    {
        let mut s = span("t.args");
        s.attach("page", 7);
        s.watch(&WATCHED);
        WATCHED.add(5);
    }
    let trace = trace_take();
    let e = trace.events.iter().find(|e| e.name == "t.args").unwrap();
    assert!(e.args.contains(&("page".to_string(), 7)));
    assert!(e.args.contains(&("t.watched.delta".to_string(), 5)));
}

#[test]
fn trace_take_stops_collection_and_drains() {
    let _serial = trace_lock();
    trace_begin();
    assert!(trace_active());
    drop(span("t.drain.one"));
    let first = trace_take();
    assert!(!trace_active());
    assert_eq!(first.len(), 1);
    // After take, new spans still aggregate phases but record no events.
    drop(span("t.drain.two"));
    assert!(trace_take().is_empty());
}

#[test]
fn spans_on_other_threads_get_their_own_roots() {
    let _serial = trace_lock();
    trace_begin();
    {
        let _root = span("t.thread.main");
        std::thread::scope(|sc| {
            sc.spawn(|| drop(span("t.thread.worker")));
        });
    }
    let trace = trace_take();
    let main = trace
        .events
        .iter()
        .find(|e| e.name == "t.thread.main")
        .unwrap();
    let worker = trace
        .events
        .iter()
        .find(|e| e.name == "t.thread.worker")
        .unwrap();
    assert_eq!(
        worker.parent, None,
        "parent links never cross thread boundaries"
    );
    assert_ne!(worker.thread, main.thread);
}
