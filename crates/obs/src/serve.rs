//! The metrics exposition endpoint: a std-only blocking TCP listener
//! serving registry snapshots as Prometheus text format (default) or
//! JSON lines (`/metrics.json`), with heartbeat/uptime/build-info rows.
//!
//! No HTTP library, no async runtime: one named thread accepts loopback
//! connections, reads a single request line, and writes one response.
//! That is all a scrape needs, and it keeps the crate dependency-free
//! under `forbid(unsafe_code)`. Per-scrape rates come from an
//! [`IntervalTracker`](crate::IntervalTracker) owned by the serve loop,
//! so each fetch reports activity since the previous fetch.
//!
//! When the `enabled` feature is off, [`MetricsServer::start`] returns
//! an error and none of the serving code — including its marker string —
//! is compiled in.

#[cfg(feature = "enabled")]
mod imp {
    use std::io::{self, BufRead, BufReader, Read, Write};
    use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    use crate::interval::{IntervalDelta, IntervalTracker};
    use crate::live::Counter;
    use crate::report::json_escape;

    /// Marker literal identifying live-metrics output; compiled into
    /// enabled binaries only, so CI can grep disabled binaries for its
    /// absence.
    pub(crate) const SERVE_MARKER: &str = "ossm-livemetrics";

    /// Scrapes served since process start (exposed as
    /// `ossm_live_http_requests_total` and `live.http.requests`).
    static HTTP_REQUESTS: Counter = Counter::new("live.http.requests");

    /// Handle to a running metrics endpoint; stops serving on
    /// [`shutdown`](MetricsServer::shutdown) or drop.
    pub struct MetricsServer {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        handle: Option<JoinHandle<()>>,
    }

    impl MetricsServer {
        /// Binds `addr` (e.g. `127.0.0.1:9185`; port 0 picks a free
        /// port) and spawns the serving thread.
        pub fn start(addr: &str) -> io::Result<MetricsServer> {
            let listener = TcpListener::bind(addr)?;
            let addr = listener.local_addr()?;
            let stop = Arc::new(AtomicBool::new(false));
            let thread_stop = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name("ossm-obs-serve".to_string())
                .spawn(move || serve_loop(&listener, &thread_stop))?;
            Ok(MetricsServer {
                addr,
                stop,
                handle: Some(handle),
            })
        }

        /// The bound address (the actual port when bound with port 0).
        pub fn local_addr(&self) -> SocketAddr {
            self.addr
        }

        /// Stops the serving thread and waits for it to exit.
        pub fn shutdown(mut self) {
            self.stop_and_join();
        }

        fn stop_and_join(&mut self) {
            let Some(handle) = self.handle.take() else {
                return;
            };
            self.stop.store(true, Ordering::SeqCst);
            // The accept loop blocks in `incoming()`; a throwaway
            // connection wakes it so it can observe the stop flag.
            let unblock = SocketAddr::from((Ipv4Addr::LOCALHOST, self.addr.port()));
            drop(TcpStream::connect_timeout(
                &unblock,
                Duration::from_millis(500),
            ));
            drop(handle.join());
        }
    }

    impl Drop for MetricsServer {
        fn drop(&mut self) {
            self.stop_and_join();
        }
    }

    fn serve_loop(listener: &TcpListener, stop: &AtomicBool) {
        let started = Instant::now();
        let mut tracker = IntervalTracker::new();
        for conn in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            // A failed scrape is the scraper's problem; the endpoint
            // keeps serving.
            drop(handle_conn(stream, started, &mut tracker));
        }
    }

    /// Reads one request, routes on its path, writes one response.
    fn handle_conn(
        stream: TcpStream,
        started: Instant,
        tracker: &mut IntervalTracker,
    ) -> io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_secs(2)))?;
        stream.set_write_timeout(Some(Duration::from_secs(2)))?;
        let mut reader = BufReader::new(stream);
        let mut request_line = String::new();
        reader.by_ref().take(4096).read_line(&mut request_line)?;
        // Drain the headers (bounded) so well-behaved clients see a
        // clean close, but never wait on bodies we don't use.
        for _ in 0..64 {
            let mut header = String::new();
            if reader.by_ref().take(4096).read_line(&mut header)? == 0
                || header.trim_end().is_empty()
            {
                break;
            }
        }
        let path = request_line.split_whitespace().nth(1).unwrap_or("/");
        HTTP_REQUESTS.incr();
        let delta = tracker.tick();
        let uptime = started.elapsed().as_secs_f64();
        let (status, content_type, body) = match path {
            "/" | "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                render_prometheus(&delta, uptime),
            ),
            "/metrics.json" | "/json" => {
                ("200 OK", "application/json", render_json(&delta, uptime))
            }
            _ => (
                "404 Not Found",
                "text/plain; version=0.0.4",
                "try /metrics or /metrics.json\n".to_string(),
            ),
        };
        let mut stream = reader.into_inner();
        write!(
            stream,
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len(),
        )?;
        stream.flush()
    }

    /// `live.http.requests` → `ossm_live_http_requests`.
    fn sanitize(name: &str) -> String {
        let mut out = String::with_capacity(name.len() + 5);
        out.push_str("ossm_");
        for c in name.chars() {
            out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
        }
        out
    }

    fn render_prometheus(delta: &IntervalDelta, uptime: f64) -> String {
        use std::fmt::Write as _;

        let mut out = format!("# {SERVE_MARKER} v1\n");
        out.push_str("# TYPE ossm_up gauge\nossm_up 1\n");
        let _ = writeln!(out, "ossm_uptime_seconds {uptime}");
        let _ = writeln!(
            out,
            "ossm_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION"),
        );
        for (name, c) in &delta.counters {
            let p = sanitize(name);
            let _ = writeln!(out, "# TYPE {p}_total counter");
            let _ = writeln!(out, "{p}_total {}", c.total);
            let _ = writeln!(out, "{p}_per_sec {}", c.per_sec);
        }
        for (name, ph) in &delta.phases {
            let p = sanitize(name);
            let _ = writeln!(out, "# TYPE {p}_seconds_total counter");
            let _ = writeln!(out, "{p}_seconds_total {}", ph.nanos_total as f64 / 1e9);
            let _ = writeln!(out, "{p}_calls_total {}", ph.calls_total);
            let _ = writeln!(out, "{p}_calls_per_sec {}", ph.calls_per_sec);
        }
        for (name, h) in &delta.histograms {
            let p = sanitize(name);
            let _ = writeln!(out, "# TYPE {p} summary");
            if let Some(q) = h.quantiles {
                let _ = writeln!(out, "{p}{{quantile=\"0.5\"}} {}", q.p50);
                let _ = writeln!(out, "{p}{{quantile=\"0.95\"}} {}", q.p95);
                let _ = writeln!(out, "{p}{{quantile=\"0.99\"}} {}", q.p99);
            }
            let _ = writeln!(out, "{p}_sum {}", h.sum_total);
            let _ = writeln!(out, "{p}_count {}", h.count_total);
            let _ = writeln!(out, "{p}_per_sec {}", h.per_sec);
        }
        for (name, g) in &delta.gauges {
            let p = sanitize(name);
            let _ = writeln!(out, "# TYPE {p}_current gauge");
            let _ = writeln!(out, "{p}_current {}", g.current);
            let _ = writeln!(out, "{p}_peak {}", g.peak);
        }
        out
    }

    fn render_json(delta: &IntervalDelta, uptime: f64) -> String {
        use std::fmt::Write as _;

        let mut out = format!(
            "{{\"type\":\"live\",\"marker\":\"{SERVE_MARKER}\",\"version\":\"{}\",\
             \"uptime_seconds\":{uptime},\"interval_seconds\":{},\"resets\":{}}}\n",
            env!("CARGO_PKG_VERSION"),
            delta.elapsed_secs(),
            delta.resets,
        );
        for (name, c) in &delta.counters {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{},\"delta\":{},\"per_sec\":{}}}",
                json_escape(name),
                c.total,
                c.delta,
                c.per_sec,
            );
        }
        for (name, p) in &delta.phases {
            let _ = writeln!(
                out,
                "{{\"type\":\"phase\",\"name\":\"{}\",\"nanos\":{},\"calls\":{},\
                 \"calls_delta\":{},\"calls_per_sec\":{}}}",
                json_escape(name),
                p.nanos_total,
                p.calls_total,
                p.calls_delta,
                p.calls_per_sec,
            );
        }
        for (name, h) in &delta.histograms {
            let mut row = format!(
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\
                 \"delta\":{},\"per_sec\":{}",
                json_escape(name),
                h.count_total,
                h.sum_total,
                h.count_delta,
                h.per_sec,
            );
            if let Some(q) = h.quantiles {
                let _ = write!(
                    row,
                    ",\"p50\":{},\"p95\":{},\"p99\":{}",
                    q.p50, q.p95, q.p99
                );
            }
            let _ = writeln!(out, "{row}}}");
        }
        for (name, g) in &delta.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"current\":{},\"delta\":{},\"peak\":{}}}",
                json_escape(name),
                g.current,
                g.delta,
                g.peak,
            );
        }
        out
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use std::io;
    use std::net::{Ipv4Addr, SocketAddr};

    /// Disabled stand-in for the live `MetricsServer`: a ZST that
    /// refuses to start.
    pub struct MetricsServer;

    impl MetricsServer {
        /// Always an error (instrumentation disabled): there is no
        /// registry to expose.
        pub fn start(_addr: &str) -> io::Result<MetricsServer> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "instrumentation compiled out (rebuild with the `obs` feature)",
            ))
        }

        /// The unspecified address (instrumentation disabled).
        pub fn local_addr(&self) -> SocketAddr {
            SocketAddr::from((Ipv4Addr::UNSPECIFIED, 0))
        }

        /// Does nothing (instrumentation disabled).
        #[inline(always)]
        pub fn shutdown(self) {}
    }
}

pub use imp::MetricsServer;
