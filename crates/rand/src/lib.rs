//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! small slice of `rand`'s API the code actually uses is reimplemented
//! here: [`rngs::StdRng`], the [`Rng`]/[`SeedableRng`] traits, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid for synthetic-data generation and
//! randomized heuristics, deterministic per seed, and *not* a
//! cryptographic RNG.
//!
//! The streams differ from upstream `rand`'s `StdRng` (ChaCha12), so
//! seeded outputs are stable within this repository but not across the
//! two implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128 - low as i128) as u128 + 1;
                // Modulo with a 128-bit accumulator: bias is < 2^-64 for any
                // span this workspace uses, far below statistical noise.
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (low as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_inclusive(rng, self.start, T::minus_one(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from an empty range");
        T::sample_inclusive(rng, start, end)
    }
}

/// Helper to turn a half-open bound into an inclusive one.
pub trait One {
    /// `value - 1`.
    fn minus_one(value: Self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(value: Self) -> Self { value - 1 }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform bits; `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion keeps nearby seeds uncorrelated and
            // guarantees a non-zero state.
            let mut next = || {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
        // Mean of U[0,1) should be ~0.5.
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_and_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 drawn");
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(rng.gen_range(3..4usize), 3, "singleton range");
        assert_eq!(rng.gen_range(9..=9u64), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u32 = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02, "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "20 elements should move");
    }

    #[test]
    fn choose_is_none_only_when_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }

    #[test]
    fn works_through_unsized_references() {
        // dist.rs-style call shape: R: Rng + ?Sized via &mut R.
        fn sum_three<R: super::RngCore + ?Sized>(rng: &mut R) -> u64 {
            use super::Rng as _;
            (0..3).map(|_| rng.gen_range(0..100u64)).sum()
        }
        let mut rng = StdRng::seed_from_u64(9);
        assert!(sum_three(&mut rng) < 300);
    }
}
