//! Sequential-pattern mining (Agrawal–Srikant [4]) with OSSM pruning.
//!
//! The paper's introduction opens its list of OSSM-applicable pattern
//! classes with *sequential patterns*: customers' ordered transaction
//! histories, mined for subsequences like ⟨{tv} {vcr, game}⟩ that many
//! customers follow. We implement the standard semantics — a pattern is an
//! ordered list of itemsets; a data sequence *contains* it if each element
//! is a subset of a distinct, order-respecting element of the sequence;
//! support counts containing data sequences — via depth-first prefix
//! extension (each node extends the pattern either by starting a new
//! element or by growing the last one, the PrefixSpan enumeration).
//!
//! The OSSM hook is the union-set bound: every item of a contained pattern
//! appears *somewhere* in the data sequence, so
//!
//! ```text
//! sup_seq(pattern) ≤ sup(∪ elements)   over the "union transactions"
//! ```
//!
//! where each data sequence contributes one transaction holding all its
//! items ([`SequenceDb::union_dataset`]). An OSSM over those transactions
//! therefore soundly prunes pattern extensions before their containment
//! scan — the same one-line integration the paper promises for this class.

use std::time::Instant;

use ossm_core::Ossm;
use ossm_data::{Dataset, ItemId, Itemset};

use crate::metrics::{LevelMetrics, MiningMetrics};

/// An ordered list of non-empty itemsets, e.g. ⟨{1} {2,3} {2}⟩.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SequencePattern {
    elements: Vec<Itemset>,
}

impl SequencePattern {
    /// Builds a pattern from its elements.
    ///
    /// # Panics
    /// Panics if any element is empty.
    pub fn new(elements: Vec<Itemset>) -> Self {
        assert!(!elements.is_empty(), "a pattern needs at least one element");
        assert!(
            elements.iter().all(|e| !e.is_empty()),
            "pattern elements must be non-empty"
        );
        SequencePattern { elements }
    }

    /// The pattern's elements in order.
    pub fn elements(&self) -> &[Itemset] {
        &self.elements
    }

    /// Total number of items across elements (the pattern's *length* in
    /// GSP terms — the level-wise `k`).
    pub fn num_items(&self) -> usize {
        self.elements.iter().map(Itemset::len).sum()
    }

    /// Union of all elements — the itemset whose OSSM bound dominates this
    /// pattern's support.
    pub fn union_items(&self) -> Itemset {
        let mut acc = Itemset::empty();
        for e in &self.elements {
            acc = acc.union(e);
        }
        acc
    }

    /// Whether `sequence` contains this pattern (order-respecting subset
    /// embedding; greedy left-to-right matching is complete because
    /// elements are matched independently).
    pub fn contained_in(&self, sequence: &[Itemset]) -> bool {
        let mut si = 0;
        for element in &self.elements {
            loop {
                if si >= sequence.len() {
                    return false;
                }
                si += 1;
                if element.is_subset_of(&sequence[si - 1]) {
                    break;
                }
            }
        }
        true
    }
}

impl std::fmt::Display for SequencePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.elements.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "⟩")
    }
}

/// A database of data sequences over a fixed item domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SequenceDb {
    num_items: usize,
    sequences: Vec<Vec<Itemset>>,
}

impl SequenceDb {
    /// Builds the database.
    ///
    /// # Panics
    /// Panics if any element references an item outside `0..num_items`.
    pub fn new(num_items: usize, sequences: Vec<Vec<Itemset>>) -> Self {
        for s in &sequences {
            for e in s {
                if let Some(max) = e.items().last() {
                    assert!(max.index() < num_items, "item {max} outside 0..{num_items}");
                }
            }
        }
        SequenceDb {
            num_items,
            sequences,
        }
    }

    /// Number of data sequences.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Item-domain size.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The data sequences.
    pub fn sequences(&self) -> &[Vec<Itemset>] {
        &self.sequences
    }

    /// Exact support: the number of data sequences containing `pattern`.
    pub fn support(&self, pattern: &SequencePattern) -> u64 {
        self.sequences
            .iter()
            .filter(|s| pattern.contained_in(s))
            .count() as u64
    }

    /// The union transactions: one itemset per data sequence holding every
    /// item it ever mentions. This is the collection the OSSM is built
    /// over (see module docs).
    pub fn union_dataset(&self) -> Dataset {
        Dataset::new(
            self.num_items,
            self.sequences
                .iter()
                .map(|s| s.iter().fold(Itemset::empty(), |acc, e| acc.union(e)))
                .collect(),
        )
    }

    /// Converts a relative threshold to an absolute sequence count.
    pub fn absolute_threshold(&self, fraction: f64) -> u64 {
        assert!((0.0..=1.0).contains(&fraction));
        (fraction * self.len() as f64).ceil() as u64
    }
}

/// Result of a sequential-pattern mining run.
#[derive(Clone, Debug)]
pub struct SequenceOutcome {
    /// Frequent patterns with supports, sorted.
    pub patterns: Vec<(SequencePattern, u64)>,
    /// Candidate bookkeeping (level = pattern item count).
    pub metrics: MiningMetrics,
}

/// Depth-first sequential-pattern miner with optional OSSM pruning.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequenceMiner {
    /// Stop at patterns with this many items, if set.
    pub max_items: Option<usize>,
}

impl SequenceMiner {
    /// A miner with no size limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Limits total pattern item count.
    pub fn with_max_items(mut self, max_items: usize) -> Self {
        assert!(max_items > 0);
        self.max_items = Some(max_items);
        self
    }

    /// Mines all frequent sequential patterns. With `ossm: Some(_)` (built
    /// over [`SequenceDb::union_dataset`]), extensions whose union-set
    /// bound misses the threshold are pruned before the containment scan.
    ///
    /// # Panics
    /// Panics if `min_support == 0`, or if the OSSM's transaction count
    /// differs from the database's sequence count.
    pub fn mine(&self, db: &SequenceDb, min_support: u64, ossm: Option<&Ossm>) -> SequenceOutcome {
        assert!(min_support > 0, "support threshold must be at least 1");
        if let Some(map) = ossm {
            assert_eq!(
                map.num_transactions(),
                db.len() as u64,
                "the OSSM must be built over this database's union transactions"
            );
        }
        let start = Instant::now();
        let mut state = State {
            db,
            min_support,
            ossm,
            max_items: self.max_items,
            patterns: Vec::new(),
            metrics: MiningMetrics::default(),
        };

        // Frequent single items seed the search and are the extension
        // alphabet everywhere below.
        let m = db.num_items();
        let mut level1 = LevelMetrics {
            level: 1,
            generated: m as u64,
            counted: m as u64,
            ..Default::default()
        };
        let union = db.union_dataset();
        let singles = union.singleton_supports();
        let mut frequent_items: Vec<u32> = Vec::new();
        for i in 0..m as u32 {
            // A single-item pattern's support equals the item's support in
            // the union transactions.
            if singles[i as usize] >= min_support {
                frequent_items.push(i);
            }
        }
        level1.frequent = frequent_items.len() as u64;
        state.metrics.push_level(level1);

        let all_ids: Vec<u32> = (0..db.len() as u32).collect();
        for &item in &frequent_items {
            let pattern = SequencePattern::new(vec![Itemset::singleton(ItemId(item))]);
            let matches: Vec<u32> = all_ids
                .iter()
                .copied()
                .filter(|&s| pattern.contained_in(&db.sequences()[s as usize]))
                .collect();
            let support = matches.len() as u64;
            debug_assert_eq!(support, singles[item as usize]);
            state.patterns.push((pattern.clone(), support));
            state.expand(&pattern, &matches, &frequent_items);
        }

        state.patterns.sort();
        state.metrics.elapsed = start.elapsed();
        SequenceOutcome {
            patterns: state.patterns,
            metrics: state.metrics,
        }
    }
}

struct State<'a> {
    db: &'a SequenceDb,
    min_support: u64,
    ossm: Option<&'a Ossm>,
    max_items: Option<usize>,
    patterns: Vec<(SequencePattern, u64)>,
    metrics: MiningMetrics,
}

impl State<'_> {
    /// Expands `pattern` (whose containing sequences are `matches`) by
    /// every canonical one-item extension.
    fn expand(&mut self, pattern: &SequencePattern, matches: &[u32], alphabet: &[u32]) {
        let next_items = pattern.num_items() + 1;
        if let Some(max) = self.max_items {
            if next_items > max {
                return;
            }
        }
        if (matches.len() as u64) < self.min_support {
            return;
        }
        let last_max = pattern
            .elements()
            .last()
            .and_then(|e| e.items().last())
            .copied()
            .expect("elements are non-empty");

        let mut level = LevelMetrics {
            level: next_items,
            ..Default::default()
        };
        // Canonical extensions: sequence-extend with any frequent item;
        // itemset-extend the last element with a strictly larger item.
        let mut extensions: Vec<SequencePattern> = Vec::new();
        for &item in alphabet {
            level.generated += 1;
            let mut elements = pattern.elements().to_vec();
            elements.push(Itemset::singleton(ItemId(item)));
            extensions.push(SequencePattern::new(elements));
        }
        for &item in alphabet.iter().filter(|&&i| i > last_max.0) {
            level.generated += 1;
            let mut elements = pattern.elements().to_vec();
            let last = elements.pop().expect("non-empty");
            elements.push(last.with(ItemId(item)));
            extensions.push(SequencePattern::new(elements));
        }
        // OSSM pruning on the union set, before any containment scan.
        let extensions: Vec<SequencePattern> = match self.ossm {
            Some(map) => extensions
                .into_iter()
                .filter(|e| map.upper_bound(&e.union_items()) >= self.min_support)
                .collect(),
            None => extensions,
        };
        level.filtered_out = level.generated - extensions.len() as u64;
        level.counted = extensions.len() as u64;

        let mut frequent: Vec<(SequencePattern, Vec<u32>)> = Vec::new();
        for ext in extensions {
            let sub_matches: Vec<u32> = matches
                .iter()
                .copied()
                .filter(|&s| ext.contained_in(&self.db.sequences()[s as usize]))
                .collect();
            if sub_matches.len() as u64 >= self.min_support {
                self.patterns.push((ext.clone(), sub_matches.len() as u64));
                frequent.push((ext, sub_matches));
            }
        }
        level.frequent = frequent.len() as u64;
        self.metrics.push_level(level);

        for (ext, sub_matches) in frequent {
            self.expand(&ext, &sub_matches, alphabet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_data::PageStore;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    fn pattern(elements: &[&[u32]]) -> SequencePattern {
        SequencePattern::new(elements.iter().map(|e| set(e)).collect())
    }

    /// The classic AprioriAll example shape: tv → vcr+game.
    fn sample_db() -> SequenceDb {
        // items: 0=tv, 1=vcr, 2=game, 3=bread
        SequenceDb::new(
            4,
            vec![
                vec![set(&[0]), set(&[1, 2])],
                vec![set(&[0]), set(&[3]), set(&[1, 2])],
                vec![set(&[0, 3]), set(&[1])],
                vec![set(&[3]), set(&[2])],
                vec![set(&[0]), set(&[2]), set(&[1])],
            ],
        )
    }

    #[test]
    fn containment_semantics() {
        let s = vec![set(&[0]), set(&[3]), set(&[1, 2])];
        assert!(pattern(&[&[0], &[1, 2]]).contained_in(&s));
        assert!(pattern(&[&[0], &[1]]).contained_in(&s));
        assert!(pattern(&[&[3]]).contained_in(&s));
        assert!(!pattern(&[&[1], &[0]]).contained_in(&s), "order matters");
        assert!(
            !pattern(&[&[0, 1]]).contained_in(&s),
            "one element must hold both"
        );
        assert!(
            !pattern(&[&[0], &[0]]).contained_in(&s),
            "elements bind distinct positions"
        );
    }

    #[test]
    fn supports_match_hand_counts() {
        let db = sample_db();
        assert_eq!(db.support(&pattern(&[&[0], &[1]])), 4);
        assert_eq!(db.support(&pattern(&[&[0], &[1, 2]])), 2);
        assert_eq!(db.support(&pattern(&[&[3]])), 3);
        assert_eq!(db.support(&pattern(&[&[0], &[2], &[1]])), 1);
    }

    #[test]
    fn miner_finds_the_classic_pattern() {
        let db = sample_db();
        let out = SequenceMiner::new().mine(&db, 2, None);
        let tv_then_vcr_game = pattern(&[&[0], &[1, 2]]);
        assert!(out.patterns.contains(&(tv_then_vcr_game, 2)));
        // Every reported support is exact and ≥ threshold.
        for (p, s) in &out.patterns {
            assert_eq!(*s, db.support(p), "support mismatch for {p}");
            assert!(*s >= 2);
        }
        // And no frequent pattern of ≤ 3 items is missing (brute check of
        // a few hand-picked ones).
        for (els, sup) in [
            (vec![vec![0u32]], 4u64),
            (vec![vec![0], vec![1]], 4),
            (vec![vec![0], vec![2]], 3),
            (vec![vec![1, 2]], 2),
        ] {
            let p = SequencePattern::new(els.into_iter().map(|e| set(&e)).collect());
            assert!(out.patterns.contains(&(p.clone(), sup)), "missing {p}");
        }
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let db = sample_db();
        let out = SequenceMiner::new().mine(&db, 1, None);
        let mut seen = std::collections::HashSet::new();
        for (p, _) in &out.patterns {
            assert!(seen.insert(p.clone()), "duplicate pattern {p}");
        }
    }

    #[test]
    fn ossm_pruning_is_lossless_for_sequences() {
        // Two "customer populations": one buys items 0..5 over time, the
        // other 5..10 — union transactions are seasonal, so the OSSM
        // discharges cross-population patterns.
        let mut sequences = Vec::new();
        for c in 0..200u32 {
            let base = if c < 100 { 0u32 } else { 5 };
            sequences.push(vec![
                set(&[base, base + 1]),
                set(&[base + 2]),
                set(&[base + 3, base + 4]),
            ]);
        }
        let db = SequenceDb::new(10, sequences);
        let union = db.union_dataset();
        let store = PageStore::with_page_count(union, 8);
        let (ossm, _) = ossm_core::OssmBuilder::new(4).build(&store);

        let plain = SequenceMiner::new().with_max_items(3).mine(&db, 50, None);
        let pruned = SequenceMiner::new()
            .with_max_items(3)
            .mine(&db, 50, Some(&ossm));
        assert_eq!(
            plain.patterns, pruned.patterns,
            "OSSM changed sequence results"
        );
        assert!(
            pruned.metrics.total_counted() < plain.metrics.total_counted(),
            "cross-population extensions should be pruned before scanning"
        );
        // The population-0 pattern (3 items, inside the max_items cap).
        assert!(plain.patterns.contains(&(pattern(&[&[0, 1], &[2]]), 100)));
    }

    #[test]
    fn max_items_limits_pattern_size() {
        let db = sample_db();
        let out = SequenceMiner::new().with_max_items(2).mine(&db, 1, None);
        assert!(out.patterns.iter().all(|(p, _)| p.num_items() <= 2));
    }

    #[test]
    fn union_dataset_collects_all_items_per_sequence() {
        let db = sample_db();
        let u = db.union_dataset();
        assert_eq!(u.len(), 5);
        assert_eq!(u.transaction(1), &set(&[0, 1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "union transactions")]
    fn mismatched_ossm_is_rejected() {
        let db = sample_db();
        let other = Dataset::new(4, vec![set(&[0])]);
        let store = PageStore::with_page_count(other, 1);
        let (ossm, _) = ossm_core::OssmBuilder::new(1).build(&store);
        SequenceMiner::new().mine(&db, 1, Some(&ossm));
    }
}
