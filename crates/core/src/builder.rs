//! High-level OSSM construction: strategy selection, bubble list, lossless
//! pre-pass, and a build report with the numbers the paper's tables track
//! (segmentation time, loss, memory).
//!
//! ```
//! use ossm_core::builder::{OssmBuilder, Strategy};
//! use ossm_data::{gen::QuestConfig, PageStore};
//!
//! let store = PageStore::with_page_count(QuestConfig::small().generate(), 50);
//! let (ossm, report) = OssmBuilder::new(10)
//!     .strategy(Strategy::RandomGreedy { n_mid: 25 })
//!     .bubble(0.01, 20.0)
//!     .build(&store);
//! assert_eq!(ossm.num_segments(), 10);
//! assert_eq!(report.num_segments, 10);
//! ```

use std::time::{Duration, Instant};

use ossm_data::PageStore;

use crate::bubble::BubbleList;
use crate::loss::LossCalculator;
use crate::minimize::group_by_configuration;
use crate::recipe::RecommendedStrategy;
use crate::seg::{
    hybrid::{random_greedy, random_rc},
    Greedy, Random, RandomClosest, SegmentationAlgorithm,
};
use crate::segmentation::{Aggregate, Segmentation};
use crate::ssm::Ossm;

/// Resident bytes of the most recently built (or loaded) OSSM — the
/// quantity the ROADMAP's sketch-mode item will trade against bound
/// looseness.
static MEM_OSSM: ossm_obs::Gauge = ossm_obs::Gauge::new("mem.core.ossm");

/// Which segmentation algorithm to run (Section 5's heuristics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// O(p) random partitioning.
    Random,
    /// Random Closest (Figure 3).
    Rc,
    /// Greedy minimal-loss-pair (Figure 2).
    Greedy,
    /// Random to `n_mid`, then RC (Section 5.4).
    RandomRc {
        /// Intermediate segment count for the Random phase.
        n_mid: usize,
    },
    /// Random to `n_mid`, then Greedy (Section 5.4).
    RandomGreedy {
        /// Intermediate segment count for the Random phase.
        n_mid: usize,
    },
}

impl Strategy {
    /// Maps a Figure 7 recommendation onto a concrete strategy, supplying
    /// `n_mid` for the hybrids. (The bubble list is configured separately
    /// on the builder.)
    pub fn from_recommendation(rec: RecommendedStrategy, n_mid: usize) -> Strategy {
        match rec {
            RecommendedStrategy::Random => Strategy::Random,
            RecommendedStrategy::GreedyWithBubble => Strategy::Greedy,
            RecommendedStrategy::RandomRcWithBubble => Strategy::RandomRc { n_mid },
            RecommendedStrategy::RandomGreedyWithBubble => Strategy::RandomGreedy { n_mid },
        }
    }
}

/// What it cost to build the OSSM, and what came out.
#[derive(Clone, Debug)]
pub struct BuildReport {
    /// Display name of the algorithm that ran ("Random-Greedy", …).
    pub algorithm: String,
    /// Number of initial pages `p`.
    pub num_pages: usize,
    /// Number of final segments.
    pub num_segments: usize,
    /// Wall-clock segmentation time (the paper's "segmentation cost").
    pub segmentation_time: Duration,
    /// Total equation-(2) loss of the final segmentation, measured over
    /// *all* item pairs (even when a bubble list scoped the optimization),
    /// so reports are comparable across configurations.
    pub total_loss: u64,
    /// In-memory size of the produced OSSM.
    pub memory_bytes: usize,
    /// Bubble list length, if one was used.
    pub bubble_len: Option<usize>,
}

/// Fluent builder for OSSM construction over a [`PageStore`].
#[derive(Clone, Debug)]
pub struct OssmBuilder {
    n_user: usize,
    strategy: Strategy,
    /// `(reference support fraction, bubble size as % of m)`.
    bubble: Option<(f64, f64)>,
    seed: u64,
    lossless_prepass: bool,
}

impl OssmBuilder {
    /// Starts a builder targeting `n_user` segments (Greedy strategy, no
    /// bubble list, lossless pre-pass on).
    ///
    /// # Panics
    /// Panics if `n_user == 0`.
    pub fn new(n_user: usize) -> Self {
        assert!(n_user > 0, "an OSSM needs at least one segment");
        OssmBuilder {
            n_user,
            strategy: Strategy::Greedy,
            bubble: None,
            seed: 0,
            lossless_prepass: true,
        }
    }

    /// Selects the segmentation strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables the bubble list: the loss optimization considers only the
    /// `percent`% of items whose global support is closest to
    /// `threshold_fraction × N` (Section 5.3).
    pub fn bubble(mut self, threshold_fraction: f64, percent: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold_fraction));
        assert!((0.0..=100.0).contains(&percent));
        self.bubble = Some((threshold_fraction, percent));
        self
    }

    /// Seeds the randomized strategies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables or disables the Lemma 1 pre-pass that merges same-
    /// configuration pages for free before the heuristic runs.
    pub fn lossless_prepass(mut self, on: bool) -> Self {
        self.lossless_prepass = on;
        self
    }

    /// Runs segmentation and builds the OSSM.
    ///
    /// # Panics
    /// Panics if the store has no pages.
    pub fn build(&self, store: &PageStore) -> (Ossm, BuildReport) {
        let (ossm, _seg, report) = self.build_with_segmentation(store);
        (ossm, report)
    }

    /// Like [`Self::build`], also returning the page-level segmentation.
    pub fn build_with_segmentation(&self, store: &PageStore) -> (Ossm, Segmentation, BuildReport) {
        assert!(
            store.num_pages() > 0,
            "cannot build an OSSM over zero pages"
        );
        let _build_span = ossm_obs::span("core.build");
        // Segmentation scratch (aggregates, heaps, the OSSM itself) is
        // charged to the core.seg subsystem.
        let _mem = ossm_obs::alloc_scope("core.seg");
        let start = Instant::now();
        let inputs = {
            let _span = ossm_obs::phase("core.build.aggregate");
            Aggregate::from_pages(store)
        };

        let bubble = {
            let _span = ossm_obs::phase("core.build.bubble");
            self.bubble.map(|(frac, percent)| {
                let threshold = store.dataset().absolute_threshold(frac);
                BubbleList::with_percentage(&store.total_supports(), threshold, percent)
            })
        };
        let calc = match &bubble {
            Some(b) if !b.is_empty() => b.loss_calculator(),
            _ => LossCalculator::all_items(),
        };

        // Lemma 1 pre-pass: merge equal-configuration pages for free.
        let (work_inputs, prepass) = if self.lossless_prepass {
            let _span = ossm_obs::phase("core.build.prepass");
            let pre = group_by_configuration(&inputs);
            let merged = pre.merge_aggregates(&inputs);
            (merged, Some(pre))
        } else {
            (inputs.clone(), None)
        };

        let algorithm: Box<dyn SegmentationAlgorithm> = match self.strategy {
            Strategy::Random => Box::new(Random::new(self.seed)),
            Strategy::Rc => Box::new(RandomClosest::new(calc.clone(), self.seed)),
            Strategy::Greedy => Box::new(Greedy::new(calc.clone())),
            Strategy::RandomRc { n_mid } => Box::new(random_rc(calc.clone(), n_mid, self.seed)),
            Strategy::RandomGreedy { n_mid } => {
                Box::new(random_greedy(calc.clone(), n_mid, self.seed))
            }
        };
        let inner = {
            let _span = ossm_obs::phase("core.build.segment");
            algorithm.segment(&work_inputs, self.n_user)
        };
        let segmentation = match prepass {
            Some(pre) => pre.compose(&inner),
            None => inner,
        };
        let segmentation_time = start.elapsed();

        let ossm = Ossm::from_pages(store, &segmentation);
        let total_loss = {
            let _span = ossm_obs::phase("core.build.loss");
            LossCalculator::all_items().segmentation_loss(&inputs, &segmentation)
        };
        MEM_OSSM.set(ossm.memory_bytes() as u64);
        let report = BuildReport {
            algorithm: algorithm.name(),
            num_pages: store.num_pages(),
            num_segments: segmentation.num_segments(),
            segmentation_time,
            total_loss,
            memory_bytes: ossm.memory_bytes(),
            bubble_len: bubble.as_ref().map(BubbleList::len),
        };
        (ossm, segmentation, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_data::gen::{QuestConfig, SkewedConfig};

    fn store() -> PageStore {
        PageStore::with_page_count(
            QuestConfig {
                num_transactions: 600,
                num_items: 40,
                ..QuestConfig::small()
            }
            .generate(),
            30,
        )
    }

    #[test]
    fn builds_requested_segment_count() {
        for strategy in [
            Strategy::Random,
            Strategy::Rc,
            Strategy::Greedy,
            Strategy::RandomRc { n_mid: 15 },
            Strategy::RandomGreedy { n_mid: 15 },
        ] {
            let (ossm, report) = OssmBuilder::new(8).strategy(strategy).build(&store());
            assert_eq!(ossm.num_segments(), 8, "{strategy:?}");
            assert_eq!(report.num_segments, 8);
            assert_eq!(report.num_pages, 30);
            assert!(report.memory_bytes > 0);
        }
    }

    #[test]
    fn bubble_list_is_reported() {
        let (_, report) = OssmBuilder::new(5).bubble(0.01, 25.0).build(&store());
        assert_eq!(report.bubble_len, Some(10), "25% of 40 items");
        let (_, no_bubble) = OssmBuilder::new(5).build(&store());
        assert_eq!(no_bubble.bubble_len, None);
    }

    #[test]
    fn greedy_loss_at_most_random_loss() {
        let s = store();
        let (_, greedy) = OssmBuilder::new(5).strategy(Strategy::Greedy).build(&s);
        let (_, random) = OssmBuilder::new(5).strategy(Strategy::Random).build(&s);
        assert!(
            greedy.total_loss <= random.total_loss,
            "greedy {} vs random {}",
            greedy.total_loss,
            random.total_loss
        );
    }

    #[test]
    fn prepass_changes_nothing_on_distinct_pages_but_helps_on_duplicates() {
        // Build a store whose pages repeat two configurations.
        let d = SkewedConfig {
            num_transactions: 400,
            num_items: 10,
            num_seasons: 2,
            season_boost: 50.0,
            ..SkewedConfig::small()
        }
        .generate();
        let s = PageStore::with_page_count(d, 20);
        let with = OssmBuilder::new(4).lossless_prepass(true).build(&s).1;
        let without = OssmBuilder::new(4).lossless_prepass(false).build(&s).1;
        assert!(with.total_loss <= without.total_loss);
    }

    #[test]
    fn strategy_from_recommendation_roundtrip() {
        use crate::recipe::RecommendedStrategy as R;
        assert_eq!(
            Strategy::from_recommendation(R::Random, 9),
            Strategy::Random
        );
        assert_eq!(
            Strategy::from_recommendation(R::GreedyWithBubble, 9),
            Strategy::Greedy
        );
        assert_eq!(
            Strategy::from_recommendation(R::RandomRcWithBubble, 9),
            Strategy::RandomRc { n_mid: 9 }
        );
        assert_eq!(
            Strategy::from_recommendation(R::RandomGreedyWithBubble, 9),
            Strategy::RandomGreedy { n_mid: 9 }
        );
    }

    #[test]
    fn report_names_match_strategy() {
        let s = store();
        let (_, r) = OssmBuilder::new(4)
            .strategy(Strategy::RandomRc { n_mid: 10 })
            .build(&s);
        assert_eq!(r.algorithm, "Random-RC");
    }
}
