//! # ossm-bench — experiment harness for the OSSM paper's evaluation
//!
//! One binary per table/figure of the paper (see `DESIGN.md`'s
//! per-experiment index):
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig4` | Figure 4(a) speedup and 4(b) candidate-2-itemset fraction vs `n_user` |
//! | `fig5` | Figure 5(a) pure and 5(b) hybrid segmentation cost/speedup tables |
//! | `fig6` | Figure 6(a)/(b) bubble-list size sweeps |
//! | `sec7` | Section 7's DHP-with/without-OSSM table |
//! | `all-experiments` | everything above, in EXPERIMENTS.md order (plus `--write-experiments`) |
//! | `regress` | the bench regression gate: fresh run vs `BENCH_baseline.json` |
//!
//! Criterion ablation benches live in `benches/` (`loss`, `counting`,
//! `bound`, `segmentation`, `miners`).
//!
//! All binaries accept `--pages=N --items=M --minsup=F --seed=S` plus
//! binary-specific knobs, and print markdown tables. Every binary also
//! takes `--trace[=chrome|folded] [PATH]` to record a hierarchical span
//! trace of the run (see `traceio`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ablation;
pub mod cli;
pub mod experiments;
pub mod regress;
pub mod runner;
pub mod table;
pub mod traceio;
pub mod workloads;

pub use cli::Options;
pub use runner::{run_baseline, run_with_ossm, timed, Baseline, SpeedupRow};
pub use table::Table;
pub use workloads::{Workload, WorkloadKind};
