//! Renders [`Snapshot`]s for humans (aligned table) and machines (JSON
//! lines). JSON is hand-rolled — the workspace builds offline, so no
//! serde — and emits one self-contained object per line so downstream
//! tools can stream-parse with a line splitter.

use std::fmt::Write as _;

use crate::snapshot::Snapshot;

/// Output format for a stats report, parsed from `--stats [table|json]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StatsFormat {
    /// Aligned human-readable table.
    #[default]
    Table,
    /// One JSON object per line.
    Json,
}

impl std::str::FromStr for StatsFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "table" => Ok(StatsFormat::Table),
            "json" => Ok(StatsFormat::Json),
            other => Err(format!(
                "unknown stats format {other:?} (expected table or json)"
            )),
        }
    }
}

/// Renders snapshots.
#[derive(Clone, Copy, Debug, Default)]
pub struct Reporter {
    /// Output format.
    pub format: StatsFormat,
}

impl Reporter {
    /// A reporter producing `format` output.
    pub fn new(format: StatsFormat) -> Self {
        Reporter { format }
    }

    /// Renders `snapshot` in the configured format. The result ends with
    /// a newline unless the snapshot is empty.
    pub fn render(&self, snapshot: &Snapshot) -> String {
        match self.format {
            StatsFormat::Table => render_table(snapshot),
            StatsFormat::Json => render_json_lines(snapshot),
        }
    }
}

fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

fn render_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.counters.is_empty() {
        let width = snap
            .counters
            .keys()
            .map(std::string::String::len)
            .max()
            .unwrap_or(0);
        out.push_str("counters\n");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    if !snap.phases.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let width = snap
            .phases
            .keys()
            .map(std::string::String::len)
            .max()
            .unwrap_or(0);
        out.push_str("phases\n");
        for (name, p) in &snap.phases {
            let _ = writeln!(
                out,
                "  {name:<width$}  {total:>10}  ({calls} call{s})",
                total = fmt_nanos(p.nanos),
                calls = p.calls,
                s = if p.calls == 1 { "" } else { "s" },
            );
        }
    }
    if !snap.histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("histograms\n");
        for (name, h) in &snap.histograms {
            let quantiles = h
                .quantiles()
                .map(|q| format!(" p50={} p95={} p99={}", q.p50, q.p95, q.p99))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {name}  count={count} mean={mean:.1}{quantiles}",
                count = h.count,
                mean = h.mean(),
            );
            for &(lo, n) in &h.buckets {
                let _ = writeln!(out, "    ≥{lo:<12}  {n}");
            }
        }
    }
    if !snap.gauges.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let width = snap
            .gauges
            .keys()
            .map(std::string::String::len)
            .max()
            .unwrap_or(0);
        out.push_str("memory (current / peak bytes)\n");
        for (name, g) in &snap.gauges {
            let _ = writeln!(
                out,
                "  {name:<width$}  {current:>12} / {peak}",
                current = g.current,
                peak = g.peak,
            );
        }
    }
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_json_lines(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json_escape(name),
        );
    }
    for (name, p) in &snap.phases {
        let _ = writeln!(
            out,
            "{{\"type\":\"phase\",\"name\":\"{}\",\"nanos\":{},\"calls\":{}}}",
            json_escape(name),
            p.nanos,
            p.calls,
        );
    }
    for (name, h) in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|&(lo, n)| format!("[{lo},{n}]"))
            .collect();
        let quantiles = h
            .quantiles()
            .map(|q| format!("\"p50\":{},\"p95\":{},\"p99\":{},", q.p50, q.p95, q.p99))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},{}\"buckets\":[{}]}}",
            json_escape(name),
            h.count,
            h.sum,
            quantiles,
            buckets.join(","),
        );
    }
    for (name, g) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"current\":{},\"peak\":{}}}",
            json_escape(name),
            g.current,
            g.peak,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistogramSnapshot, PhaseSnapshot};

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("core.bound.evals".into(), 42);
        snap.counters.insert("mining.pruned".into(), 7);
        snap.phases.insert(
            "core.build.segment".into(),
            PhaseSnapshot {
                nanos: 1_500_000,
                calls: 2,
            },
        );
        snap.histograms.insert(
            "mining.bound.slack".into(),
            HistogramSnapshot {
                count: 3,
                sum: 10,
                buckets: vec![(0, 1), (4, 2)],
            },
        );
        snap
    }

    #[test]
    fn table_lists_all_sections() {
        let text = Reporter::new(StatsFormat::Table).render(&sample());
        assert!(text.contains("counters"));
        assert!(text.contains("core.bound.evals"));
        assert!(text.contains("42"));
        assert!(text.contains("phases"));
        assert!(text.contains("1.50ms"));
        assert!(text.contains("histograms"));
        assert!(text.contains("count=3"));
    }

    #[test]
    fn json_lines_are_parseable_objects() {
        let text = Reporter::new(StatsFormat::Json).render(&sample());
        assert_eq!(text.lines().count(), 4);
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "line {line:?}"
            );
            // Balanced-brace sanity check: rough stand-in for a parser.
            let opens = line.matches('{').count();
            let closes = line.matches('}').count();
            assert_eq!(opens, closes, "line {line:?}");
        }
        assert!(text.contains(r#""type":"counter""#));
        assert!(text.contains(r#""buckets":[[0,1],[4,2]]"#));
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = Reporter::new(StatsFormat::Json);
        assert_eq!(r.render(&sample()), r.render(&sample()));
    }

    // Golden renderings: the exact bytes are the contract. Snapshot maps
    // are BTreeMaps, so key order (and thus output order) is stable.
    #[test]
    fn golden_table_rendering() {
        let expected = "\
counters
  core.bound.evals  42
  mining.pruned     7

phases
  core.build.segment      1.50ms  (2 calls)

histograms
  mining.bound.slack  count=3 mean=3.3 p50=6 p95=8 p99=8
    ≥0             1
    ≥4             2
";
        assert_eq!(
            Reporter::new(StatsFormat::Table).render(&sample()),
            expected
        );
    }

    #[test]
    fn golden_json_rendering() {
        let expected = concat!(
            r#"{"type":"counter","name":"core.bound.evals","value":42}"#,
            "\n",
            r#"{"type":"counter","name":"mining.pruned","value":7}"#,
            "\n",
            r#"{"type":"phase","name":"core.build.segment","nanos":1500000,"calls":2}"#,
            "\n",
            r#"{"type":"histogram","name":"mining.bound.slack","count":3,"sum":10,"p50":6,"p95":8,"p99":8,"buckets":[[0,1],[4,2]]}"#,
            "\n",
        );
        let text = Reporter::new(StatsFormat::Json).render(&sample());
        assert_eq!(text, expected);
        // Every line must round-trip through the in-crate JSON parser.
        for line in text.lines() {
            crate::json::parse(line).expect("reporter output must be valid JSON");
        }
    }

    #[test]
    fn gauges_render_in_both_formats() {
        use crate::snapshot::GaugeSnapshot;
        let mut snap = sample();
        snap.gauges.insert(
            "mem.alloc.data.page".into(),
            GaugeSnapshot {
                current: 4096,
                peak: 65536,
            },
        );
        let table = Reporter::new(StatsFormat::Table).render(&snap);
        assert!(table.contains("memory (current / peak bytes)"));
        assert!(table.contains("mem.alloc.data.page"));
        assert!(table.contains("4096 / 65536"));
        let json = Reporter::new(StatsFormat::Json).render(&snap);
        let line = json
            .lines()
            .find(|l| l.contains(r#""type":"gauge""#))
            .expect("gauge line");
        let v = crate::json::parse(line).expect("valid JSON");
        assert_eq!(
            v.get("name").and_then(crate::json::Json::as_str),
            Some("mem.alloc.data.page")
        );
        assert_eq!(
            v.get("peak").and_then(crate::json::Json::as_f64),
            Some(65536.0)
        );
        // Gauge-less snapshots render exactly as before this section
        // existed — the golden tests above pin that.
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Snapshot::default();
        assert!(Reporter::new(StatsFormat::Table).render(&snap).is_empty());
        assert!(Reporter::new(StatsFormat::Json).render(&snap).is_empty());
    }

    #[test]
    fn escapes_control_characters_in_names() {
        let mut snap = Snapshot::default();
        snap.counters.insert("weird\"name\n".into(), 1);
        let text = Reporter::new(StatsFormat::Json).render(&snap);
        assert!(text.contains(r#"weird\"name\n"#));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn stats_format_parses() {
        assert_eq!("table".parse::<StatsFormat>().unwrap(), StatsFormat::Table);
        assert_eq!("json".parse::<StatsFormat>().unwrap(), StatsFormat::Json);
        assert!("csv".parse::<StatsFormat>().is_err());
    }
}
