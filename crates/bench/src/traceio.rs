//! Shared `--trace[=chrome|folded]` handling for the `ossm` CLI and every
//! bench binary.
//!
//! The flag contract, identical everywhere:
//!
//! * `--trace` — record a Chrome trace (the default format);
//! * `--trace=chrome` / `--trace=folded` — select the exporter;
//! * the output path is the first positional argument when the caller
//!   accepts one (the `ossm` CLI), or `--trace-out=PATH`; otherwise the
//!   format's conventional file name (`trace.json` / `trace.folded`) in
//!   the working directory.
//!
//! In builds without the `obs` feature the flag still parses and writes a
//! valid (empty) document, so scripts and CI pipelines work unchanged —
//! the file just notes that instrumentation was compiled out.

use std::path::PathBuf;

use ossm_obs::TraceFormat;

use crate::cli::Options;

/// A resolved `--trace` request: export format plus output path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Export format.
    pub format: TraceFormat,
    /// Where the rendered trace is written.
    pub path: PathBuf,
}

impl TraceConfig {
    /// Interprets `--trace` from parsed options. `positional` is the
    /// caller-supplied output path, if it accepts one. Returns `None` when
    /// no `--trace` was given, `Err` on an unknown format.
    pub fn from_options(opts: &Options, positional: Option<&str>) -> Result<Option<Self>, String> {
        let format = match opts.raw("trace") {
            Some(fmt) => fmt.parse::<TraceFormat>()?,
            None if opts.flag("trace") => TraceFormat::default(),
            None => return Ok(None),
        };
        let path = positional
            .map(PathBuf::from)
            .or_else(|| opts.raw("trace-out").map(PathBuf::from))
            .unwrap_or_else(|| PathBuf::from(format.default_file_name()));
        Ok(Some(TraceConfig { format, path }))
    }

    /// Starts trace collection (a no-op without the `obs` feature).
    pub fn begin(&self) {
        ossm_obs::trace_begin();
    }

    /// Stops collection, writes the rendered trace to `self.path`, and
    /// returns a one-line human note about what was written.
    pub fn finish(&self) -> Result<String, String> {
        let trace = ossm_obs::trace_take();
        let body = trace.render(self.format);
        std::fs::write(&self.path, &body)
            .map_err(|e| format!("cannot write trace to {}: {e}", self.path.display()))?;
        let note = if ossm_obs::ENABLED {
            format!(
                "trace: wrote {} spans ({}) to {}",
                trace.len(),
                self.format,
                self.path.display()
            )
        } else {
            format!(
                "trace: instrumentation compiled out (build with the obs feature); \
                 wrote an empty {} trace to {}",
                self.format,
                self.path.display()
            )
        };
        Ok(note)
    }
}

/// Applies `--threads=N` to the ossm-par worker pool. Returns an error on
/// anything but a positive integer; `None` (flag absent) leaves the
/// `OSSM_THREADS`-or-CPU-count default in place.
pub fn apply_threads(opts: &Options) -> Result<(), String> {
    if let Some(v) = opts.raw("threads") {
        let n: usize = v
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("--threads={v}: expected a positive integer"))?;
        ossm_par::set_threads(Some(n));
    }
    Ok(())
}

/// Entry-point wrapper shared by the experiment binaries: parses the
/// process arguments (allowing one positional trace-output path), applies
/// `--threads`, starts trace collection if `--trace` was given, runs
/// `body`, writes the trace, and exits with `body`'s status code. Argument
/// or trace-I/O errors exit non-zero with a message on stderr.
pub fn main_with_trace(body: impl FnOnce(&Options) -> i32) -> ! {
    let (opts, positionals) = Options::parse_with_positionals(std::env::args().skip(1));
    let fail = |msg: String| -> ! {
        eprintln!("error: {msg}");
        std::process::exit(2);
    };
    if let Err(e) = apply_threads(&opts) {
        fail(e);
    }
    if positionals.len() > 1 {
        fail(format!(
            "unexpected argument {:?}: at most one positional (the --trace output path) is accepted",
            positionals[1]
        ));
    }
    let trace = match TraceConfig::from_options(&opts, positionals.first().map(String::as_str)) {
        Ok(tc) => tc,
        Err(e) => fail(e),
    };
    if trace.is_none() {
        if let Some(arg) = positionals.first() {
            fail(format!(
                "unexpected argument {arg:?}: positional paths are only used with --trace"
            ));
        }
    }
    if let Some(tc) = &trace {
        tc.begin();
    }
    let status = body(&opts);
    if let Some(tc) = &trace {
        match tc.finish() {
            Ok(note) => eprintln!("{note}"),
            Err(e) => fail(e),
        }
    }
    std::process::exit(status);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn absent_flag_means_no_tracing() {
        assert_eq!(TraceConfig::from_options(&opts(&[]), None), Ok(None));
        assert_eq!(
            TraceConfig::from_options(&opts(&["--full"]), Some("x")),
            Ok(None)
        );
    }

    #[test]
    fn bare_flag_defaults_to_chrome() {
        let tc = TraceConfig::from_options(&opts(&["--trace"]), None)
            .unwrap()
            .unwrap();
        assert_eq!(tc.format, TraceFormat::Chrome);
        assert_eq!(tc.path, PathBuf::from("trace.json"));
    }

    #[test]
    fn format_and_path_resolution() {
        let tc = TraceConfig::from_options(&opts(&["--trace=folded"]), Some("/tmp/t.folded"))
            .unwrap()
            .unwrap();
        assert_eq!(tc.format, TraceFormat::Folded);
        assert_eq!(tc.path, PathBuf::from("/tmp/t.folded"));

        let tc = TraceConfig::from_options(&opts(&["--trace=folded", "--trace-out=o.txt"]), None)
            .unwrap()
            .unwrap();
        assert_eq!(tc.path, PathBuf::from("o.txt"));
    }

    #[test]
    fn unknown_format_is_an_error() {
        assert!(TraceConfig::from_options(&opts(&["--trace=svg"]), None).is_err());
    }

    #[test]
    fn threads_flag_validates_but_only_applies_positive_integers() {
        assert_eq!(apply_threads(&opts(&[])), Ok(()));
        assert!(apply_threads(&opts(&["--threads=0"])).is_err());
        assert!(apply_threads(&opts(&["--threads=lots"])).is_err());
        // A valid value round-trips through the pool override. No other
        // test in this crate touches the override, so this is race-free.
        assert_eq!(apply_threads(&opts(&["--threads=3"])), Ok(()));
        assert_eq!(ossm_par::thread_count(), 3);
        ossm_par::set_threads(None);
    }

    #[test]
    fn finish_writes_a_parseable_document() {
        let dir = std::env::temp_dir().join("ossm-traceio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let tc = TraceConfig {
            format: TraceFormat::Chrome,
            path: path.clone(),
        };
        tc.begin();
        drop(ossm_obs::span("traceio.test"));
        let note = tc.finish().expect("write");
        assert!(note.starts_with("trace:"), "{note}");
        let text = std::fs::read_to_string(&path).unwrap();
        let json = ossm_obs::json::parse(&text).expect("chrome trace parses");
        let events = json.as_array().expect("array");
        if ossm_obs::ENABLED {
            assert!(events
                .iter()
                .any(|e| e.get("name").and_then(|v| v.as_str()) == Some("traceio.test")));
        } else {
            assert!(events.is_empty(), "disabled builds record nothing");
        }
    }
}
