//! The recommended recipe (Figure 7 / Section 6.4 of the paper).
//!
//! The paper closes its evaluation with a decision tree for picking a
//! segmentation strategy:
//!
//! 1. If the application can afford many segments (`n_user` large) **and**
//!    the data is skewed, plain **Random** is sufficient.
//! 2. Otherwise, if segmentation cost is not an issue, use **Greedy** with
//!    the bubble list.
//! 3. Otherwise (cost matters): for very large `p` use **Random-RC**, else
//!    **Random-Greedy** — both with the bubble list.

/// An application's answers to the recipe's three questions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApplicationProfile {
    /// Can the OSSM occupy a lot of space, i.e. is `n_user` large?
    pub large_n_user: bool,
    /// Is the data skewed (seasonal/bursty, like the skewed-synthetic and
    /// alarm workloads)?
    pub skewed_data: bool,
    /// Does one-time segmentation cost matter for this application?
    pub segmentation_cost_an_issue: bool,
    /// Is the initial page count `p` very large (tens of thousands)?
    pub very_large_p: bool,
}

/// The strategies the recipe can recommend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecommendedStrategy {
    /// Plain random segmentation — no loss computation at all.
    Random,
    /// Greedy with the bubble list.
    GreedyWithBubble,
    /// Random phase down to `n_mid`, then RC, with the bubble list.
    RandomRcWithBubble,
    /// Random phase down to `n_mid`, then Greedy, with the bubble list.
    RandomGreedyWithBubble,
}

impl std::fmt::Display for RecommendedStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RecommendedStrategy::Random => "Random",
            RecommendedStrategy::GreedyWithBubble => "Greedy + bubble list",
            RecommendedStrategy::RandomRcWithBubble => "Random-RC + bubble list",
            RecommendedStrategy::RandomGreedyWithBubble => "Random-Greedy + bubble list",
        };
        f.write_str(s)
    }
}

/// Figure 7's decision procedure.
pub fn recommend(profile: ApplicationProfile) -> RecommendedStrategy {
    if profile.large_n_user && profile.skewed_data {
        RecommendedStrategy::Random
    } else if !profile.segmentation_cost_an_issue {
        RecommendedStrategy::GreedyWithBubble
    } else if profile.very_large_p {
        RecommendedStrategy::RandomRcWithBubble
    } else {
        RecommendedStrategy::RandomGreedyWithBubble
    }
}

/// Heuristic thresholds for answering the recipe's questions from observed
/// workload numbers, for callers who do not want to answer by hand. The
/// cut-offs follow the paper's experimental ranges: `n_user ≥ 100` counts
/// as large (Figure 4 calls 100–160 segments generous), `p ≥ 10 000` as
/// very large (Figure 5(b) uses 50 000).
pub fn profile_from_workload(
    n_user: usize,
    p: usize,
    skewed_data: bool,
    segmentation_cost_an_issue: bool,
) -> ApplicationProfile {
    ApplicationProfile {
        large_n_user: n_user >= 100,
        skewed_data,
        segmentation_cost_an_issue,
        very_large_p: p >= 10_000,
    }
}

/// Fully data-driven profile: answers the recipe's "is the data skewed?"
/// question by measuring inter-segment variability on the page aggregates
/// themselves (see [`crate::variability`]). For very large stores the
/// pages are first coalesced into at most 64 contiguous chunks —
/// contiguity preserves exactly the temporal skew the question is about —
/// so profiling stays cheap at any scale.
pub fn auto_profile(
    store: &ossm_data::PageStore,
    n_user: usize,
    segmentation_cost_an_issue: bool,
) -> ApplicationProfile {
    use crate::segmentation::Segmentation;
    use crate::ssm::Ossm;
    let p = store.num_pages();
    assert!(p > 0, "cannot profile an empty store");
    let chunks = p.min(64);
    let base = p / chunks;
    let extra = p % chunks;
    let mut groups = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let size = base + usize::from(c < extra);
        groups.push((start..start + size).collect());
        start += size;
    }
    let seg = Segmentation::from_groups(groups, p);
    let probe = Ossm::from_pages(store, &seg);
    let skewed = crate::variability::analyze(&probe).is_skewed();
    profile_from_workload(n_user, p, skewed, segmentation_cost_an_issue)
}

/// One-call strategy selection: measure the data, apply Figure 7. The
/// hybrids get `n_mid = min(max(4 · n_user, 100), p)`, squarely inside the
/// paper's suggested 100–500 range for realistic inputs.
pub fn auto_strategy(
    store: &ossm_data::PageStore,
    n_user: usize,
    segmentation_cost_an_issue: bool,
) -> crate::builder::Strategy {
    let profile = auto_profile(store, n_user, segmentation_cost_an_issue);
    let n_mid = (4 * n_user)
        .max(100)
        .min(store.num_pages().max(1))
        .max(n_user);
    crate::builder::Strategy::from_recommendation(recommend(profile), n_mid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(
        large_n_user: bool,
        skewed_data: bool,
        cost: bool,
        large_p: bool,
    ) -> ApplicationProfile {
        ApplicationProfile {
            large_n_user,
            skewed_data,
            segmentation_cost_an_issue: cost,
            very_large_p: large_p,
        }
    }

    #[test]
    fn skewed_and_roomy_takes_random() {
        assert_eq!(
            recommend(profile(true, true, true, true)),
            RecommendedStrategy::Random
        );
        assert_eq!(
            recommend(profile(true, true, false, false)),
            RecommendedStrategy::Random
        );
    }

    #[test]
    fn cost_no_object_takes_greedy() {
        for (large, skew) in [(false, false), (true, false), (false, true)] {
            assert_eq!(
                recommend(profile(large, skew, false, true)),
                RecommendedStrategy::GreedyWithBubble
            );
        }
    }

    #[test]
    fn cost_sensitive_takes_a_hybrid_split_on_p() {
        assert_eq!(
            recommend(profile(false, false, true, true)),
            RecommendedStrategy::RandomRcWithBubble
        );
        assert_eq!(
            recommend(profile(false, false, true, false)),
            RecommendedStrategy::RandomGreedyWithBubble
        );
    }

    #[test]
    fn workload_profile_thresholds() {
        let p = profile_from_workload(150, 50_000, true, true);
        assert!(p.large_n_user && p.very_large_p);
        assert_eq!(recommend(p), RecommendedStrategy::Random);
        let q = profile_from_workload(40, 500, false, true);
        assert!(!q.large_n_user && !q.very_large_p);
        assert_eq!(recommend(q), RecommendedStrategy::RandomGreedyWithBubble);
    }

    #[test]
    fn auto_profile_detects_skew_from_data() {
        use ossm_data::gen::{QuestConfig, SkewedConfig};
        use ossm_data::PageStore;
        let skewed = SkewedConfig {
            num_transactions: 2000,
            num_items: 60,
            season_boost: 10.0,
            ..SkewedConfig::small()
        }
        .generate();
        let store = PageStore::with_page_count(skewed, 20);
        let p = auto_profile(&store, 150, false);
        assert!(p.skewed_data);
        assert!(p.large_n_user);
        assert_eq!(
            recommend(p),
            RecommendedStrategy::Random,
            "skewed + roomy should land on Random"
        );
        let regular = QuestConfig {
            num_transactions: 2000,
            num_items: 60,
            ..QuestConfig::small()
        }
        .generate();
        let store = PageStore::with_page_count(regular, 20);
        assert!(!auto_profile(&store, 150, false).skewed_data);
    }

    #[test]
    fn auto_strategy_produces_buildable_strategies() {
        use crate::builder::{OssmBuilder, Strategy};
        use ossm_data::gen::QuestConfig;
        use ossm_data::PageStore;
        let d = QuestConfig {
            num_transactions: 1500,
            num_items: 40,
            ..QuestConfig::small()
        }
        .generate();
        let store = PageStore::with_page_count(d, 30);
        for cost_sensitive in [false, true] {
            let strategy = auto_strategy(&store, 6, cost_sensitive);
            if let Strategy::RandomRc { n_mid } | Strategy::RandomGreedy { n_mid } = strategy {
                assert!((6..=30).contains(&n_mid), "n_mid {n_mid} out of range");
            }
            let (ossm, _) = OssmBuilder::new(6).strategy(strategy).build(&store);
            assert_eq!(ossm.num_segments(), 6);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(RecommendedStrategy::Random.to_string(), "Random");
        assert_eq!(
            RecommendedStrategy::RandomGreedyWithBubble.to_string(),
            "Random-Greedy + bubble list"
        );
    }
}
