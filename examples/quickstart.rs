//! Quickstart: build an OSSM over a synthetic workload and watch it cut
//! Apriori's candidate-counting work without changing the answer.
//!
//! Run with: `cargo run -p ossm --release --example quickstart`

use ossm::prelude::*;

fn main() {
    // 1. A paper-shaped workload: IBM-Quest-style transactions.
    let dataset = QuestConfig {
        num_transactions: 20_000,
        num_items: 500,
        ..QuestConfig::default()
    }
    .generate();
    let min_support = dataset.absolute_threshold(0.01); // the paper's 1 %
    println!(
        "workload: {} transactions over {} items, min support {}",
        dataset.len(),
        dataset.num_items(),
        min_support
    );

    // 2. Page the collection (4 KB pages ≈ 100 transactions, as in the
    //    paper) and build an OSSM with the Greedy heuristic.
    let store = PageStore::pack_default(dataset);
    let (ossm, report) = OssmBuilder::new(40)
        .strategy(Strategy::Greedy)
        .bubble(0.0025, 20.0) // bubble list: 20 % of items, 0.25 % reference
        .build(&store);
    println!(
        "OSSM: {} pages -> {} segments in {:?} ({} bytes, eq.2 loss {})",
        report.num_pages,
        report.num_segments,
        report.segmentation_time,
        report.memory_bytes,
        report.total_loss
    );

    // 3. Mine with and without the OSSM. Same patterns, less counting.
    let apriori = Apriori::new().with_backend(CountingBackend::HashTree);
    let without = apriori.mine(store.dataset(), min_support);
    let with = apriori.mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm));
    assert_eq!(
        without.patterns, with.patterns,
        "the OSSM never changes the answer"
    );

    println!(
        "frequent patterns: {} (longest has {} items)",
        with.patterns.len(),
        with.patterns.max_len()
    );
    println!(
        "candidate 2-itemsets counted: {} -> {} ({:.1}% pruned)",
        without.metrics.candidate_2_itemsets_counted(),
        with.metrics.candidate_2_itemsets_counted(),
        100.0
            * (1.0
                - with.metrics.candidate_2_itemsets_counted() as f64
                    / without.metrics.candidate_2_itemsets_counted().max(1) as f64)
    );
    println!(
        "mining time: {:?} -> {:?} ({:.1}x speedup)",
        without.metrics.elapsed,
        with.metrics.elapsed,
        without.metrics.elapsed.as_secs_f64() / with.metrics.elapsed.as_secs_f64().max(1e-9)
    );
}
