//! A write-ahead append log for crash-safe incremental ingestion.
//!
//! The incremental OSSM path (`IncrementalOssm` in `ossm-core`) absorbs
//! batches of transactions between snapshots. If the process dies after
//! an append was acknowledged but before the next snapshot, that batch
//! must not be lost — eq. (1) bounds computed from a stale map would not
//! cover the appended data. The WAL closes the window: every append is
//! written here, checksummed and fsynced, *before* it is applied to the
//! in-memory map, and replayed against the last good snapshot on reopen.
//!
//! # On-disk format
//!
//! ```text
//! header : magic "OSSM-WAL" (8 bytes)
//! record : payload_len u32 | crc u32 (CRC32C of payload) | payload
//! ```
//!
//! All integers little-endian. Records are opaque payloads to this layer;
//! the caller defines their encoding.
//!
//! # Recovery semantics
//!
//! [`WriteAheadLog::open`] parses records front to back and **truncates
//! at the first record that is short, oversized, or fails its CRC** — a
//! crash mid-append leaves exactly such a torn tail, and everything
//! before it was fsynced and is intact. A torn tail therefore never
//! poisons earlier records, and re-appending the lost batch is the
//! caller's (acknowledged-write) contract to its own client. Replays are
//! counted on the `data.wal.replays` counter.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::checksum::crc32c;
use crate::fault;

/// Magic prefixing every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"OSSM-WAL";

/// Cap on a single record's payload (64 MiB); a length field beyond it is
/// corruption, and bounding it keeps recovery from allocating garbage.
const MAX_RECORD_BYTES: u32 = 1 << 26;

/// Reopens that replayed at least one record.
static REPLAYS: ossm_obs::Counter = ossm_obs::Counter::new("data.wal.replays");

/// What [`WriteAheadLog::open`] found in an existing log.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Intact record payloads, in append order. Replay these against the
    /// last snapshot before acknowledging new work.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn/corrupt tail was cut off (evidence of a crash
    /// mid-append; the cut bytes were never acknowledged as durable).
    pub truncated_tail: bool,
}

/// An append-only, checksummed, fsync-per-append log file.
pub struct WriteAheadLog {
    file: std::fs::File,
    /// Byte length of the durable, intact prefix (header + whole records).
    end: u64,
}

impl WriteAheadLog {
    /// Opens (creating if absent) the log at `path` and recovers every
    /// intact record. A torn tail — the signature of a crash mid-append —
    /// is truncated away; see the module docs for why that is safe.
    pub fn open(path: &Path) -> io::Result<(Self, WalRecovery)> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < WAL_MAGIC.len() as u64 {
            // Fresh file, or a crash tore the header itself: no record
            // can have been acknowledged, so start clean.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            return Ok((
                WriteAheadLog {
                    file,
                    end: WAL_MAGIC.len() as u64,
                },
                WalRecovery::default(),
            ));
        }
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != WAL_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an OSSM write-ahead log",
            ));
        }
        let mut recovery = WalRecovery::default();
        let mut pos = WAL_MAGIC.len() as u64;
        loop {
            let remaining = file_len - pos;
            if remaining == 0 {
                break;
            }
            if remaining < 8 {
                recovery.truncated_tail = true;
                break;
            }
            let mut head = [0u8; 8];
            fault::read_exact_tagged(&mut file, "data.wal.read", &mut head)?;
            let len = u32::from_le_bytes([head[0], head[1], head[2], head[3]]);
            let crc = u32::from_le_bytes([head[4], head[5], head[6], head[7]]);
            if len > MAX_RECORD_BYTES || u64::from(len) > remaining - 8 {
                recovery.truncated_tail = true;
                break;
            }
            let mut payload = vec![0u8; len as usize];
            fault::read_exact_tagged(&mut file, "data.wal.read", &mut payload)?;
            if crc32c(&payload) != crc {
                recovery.truncated_tail = true;
                break;
            }
            pos += 8 + u64::from(len);
            recovery.records.push(payload);
        }
        if recovery.truncated_tail {
            file.set_len(pos)?;
            file.sync_all()?;
        }
        if !recovery.records.is_empty() {
            REPLAYS.incr();
        }
        file.seek(SeekFrom::Start(pos))?;
        Ok((WriteAheadLog { file, end: pos }, recovery))
    }

    /// Number of durable bytes (for tests and diagnostics).
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// Appends one record and fsyncs it. When this returns `Ok`, the
    /// record survives a crash; on `Err` the caller must treat the
    /// append as not having happened (recovery truncates any torn tail).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() as u64 > u64::from(MAX_RECORD_BYTES) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("WAL record of {} bytes exceeds the cap", payload.len()),
            ));
        }
        let _mem = ossm_obs::alloc_scope("data.wal");
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32c(payload).to_le_bytes());
        record.extend_from_slice(payload);
        ossm_obs::recorder::record_event(
            "data.wal.append",
            ossm_obs::recorder::EventKind::WalAppend,
            record.len() as u64,
        );
        fault::write_all_tagged(&mut self.file, "data.wal.append", &record)?;
        self.file.sync_data()?;
        self.end += record.len() as u64;
        Ok(())
    }

    /// Empties the log (all records are now reflected in a durable
    /// snapshot). Callers fsync the snapshot *before* resetting.
    pub fn reset(&mut self) -> io::Result<()> {
        self.end = WAL_MAGIC.len() as u64;
        self.file.set_len(self.end)?;
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ossm-wal-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn appends_recover_in_order() {
        let path = tmp("order.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, rec) = WriteAheadLog::open(&path).expect("create");
        assert!(rec.records.is_empty() && !rec.truncated_tail);
        wal.append(b"first").expect("append");
        wal.append(b"").expect("empty records are fine");
        wal.append(b"third").expect("append");
        drop(wal);
        let (_, rec) = WriteAheadLog::open(&path).expect("reopen");
        assert_eq!(
            rec.records,
            vec![b"first".to_vec(), vec![], b"third".to_vec()]
        );
        assert!(!rec.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = WriteAheadLog::open(&path).expect("create");
        wal.append(b"durable").expect("append");
        wal.append(b"doomed-record").expect("append");
        drop(wal);
        // Simulate a crash that tore the second record mid-payload.
        let clean_len = std::fs::metadata(&path).expect("meta").len();
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open");
        file.set_len(clean_len - 5).expect("tear");
        drop(file);
        let (mut wal, rec) = WriteAheadLog::open(&path).expect("recover");
        assert_eq!(rec.records, vec![b"durable".to_vec()]);
        assert!(rec.truncated_tail);
        // The log is usable again immediately.
        wal.append(b"after-crash").expect("append");
        drop(wal);
        let (_, rec) = WriteAheadLog::open(&path).expect("reopen");
        assert_eq!(
            rec.records,
            vec![b"durable".to_vec(), b"after-crash".to_vec()]
        );
        assert!(!rec.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_record_cuts_the_log_there() {
        let path = tmp("flip.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = WriteAheadLog::open(&path).expect("create");
        wal.append(b"one").expect("append");
        wal.append(b"two").expect("append");
        wal.append(b"three").expect("append");
        drop(wal);
        // Flip a payload bit in record two.
        let mut bytes = std::fs::read(&path).expect("read");
        let rec_two_payload = 8 + (8 + 3) + 8;
        bytes[rec_two_payload] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");
        let (_, rec) = WriteAheadLog::open(&path).expect("recover");
        assert_eq!(rec.records, vec![b"one".to_vec()], "cut at the corruption");
        assert!(rec.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hostile_length_field_does_not_allocate() {
        let path = tmp("hostile.wal");
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"tiny");
        std::fs::write(&path, &bytes).expect("write");
        let (_, rec) = WriteAheadLog::open(&path).expect("recover");
        assert!(rec.records.is_empty());
        assert!(rec.truncated_tail);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_forgets_everything() {
        let path = tmp("reset.wal");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = WriteAheadLog::open(&path).expect("create");
        wal.append(b"snapshotted").expect("append");
        wal.reset().expect("reset");
        wal.append(b"fresh").expect("append");
        drop(wal);
        let (_, rec) = WriteAheadLog::open(&path).expect("reopen");
        assert_eq!(rec.records, vec![b"fresh".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_files_are_rejected() {
        let path = tmp("foreign.wal");
        std::fs::write(&path, b"definitely not a log").expect("write");
        assert!(WriteAheadLog::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "faults")]
    mod faults {
        use super::*;
        use crate::fault::FaultPlan;

        #[test]
        fn torn_append_recovers_to_the_previous_record() {
            let _lock = crate::fault::tests::serialize_tests();
            let path = tmp("injected.wal");
            std::fs::remove_file(&path).ok();
            let (mut wal, _) = WriteAheadLog::open(&path).expect("create");
            wal.append(b"safe").expect("append");
            let mut plan = FaultPlan::new();
            plan.tear_write("data.wal.append", 1, 6); // mid-header tear
            let guard = plan.arm();
            let err = wal.append(b"torn-away").expect_err("torn append errors");
            assert!(err.to_string().contains("torn"), "{err}");
            assert_eq!(guard.fired(), 1);
            drop(guard);
            drop(wal);
            let (_, rec) = WriteAheadLog::open(&path).expect("recover");
            assert_eq!(rec.records, vec![b"safe".to_vec()]);
            assert!(rec.truncated_tail);
            std::fs::remove_file(&path).ok();
        }
    }
}
