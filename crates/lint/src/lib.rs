//! `ossm-lint` — the workspace's in-repo invariant checker.
//!
//! Five rules over a lexical model of every `crates/*/src/**/*.rs` file
//! (see [`rules`] for the rule ↔ invariant table), a ratcheting
//! allowlist, and a fixture harness that proves each rule still fires.
//! Run it with `cargo run -p ossm-lint -- --all`; DESIGN.md §10 has the
//! full contract.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod diag;
pub mod lexer;
pub mod regions;
pub mod rules;
pub mod workspace;

use std::fs;
use std::path::Path;

use allowlist::Allowlist;
use diag::Diagnostic;
use regions::FileModel;
use rules::{Context, ALLOWLIST_PATH, FORMAT_CONSTS_PATH, REGISTRY_PATH};

/// Result of a full-tree lint.
pub struct Outcome {
    /// Violations that survived the allowlist (including allowlist-policy
    /// findings), stably ordered.
    pub diags: Vec<Diagnostic>,
    /// How many findings the allowlist suppressed.
    pub allowlisted: usize,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

/// Lints the whole workspace rooted at `root`. `Err` means the tool could
/// not run (missing registry, unreadable file) — distinct from "ran and
/// found violations".
pub fn lint_all(root: &Path) -> Result<Outcome, String> {
    let paths =
        workspace::source_files(root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let mut files = Vec::with_capacity(paths.len());
    for rel in &paths {
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        files.push(FileModel::analyze(rel, &src));
    }

    let registry_text = fs::read_to_string(root.join(REGISTRY_PATH))
        .map_err(|e| format!("reading {REGISTRY_PATH}: {e}"))?;
    let registry = rules::parse_registry(&registry_text);

    let consts_text = fs::read_to_string(root.join(FORMAT_CONSTS_PATH))
        .map_err(|e| format!("reading {FORMAT_CONSTS_PATH}: {e}"))?;
    let format_consts = rules::parse_format_consts(&consts_text)?;

    let allow_text = fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
    let allow = Allowlist::parse(&allow_text).map_err(|e| format!("{ALLOWLIST_PATH}: {e}"))?;

    let ctx = Context {
        root,
        files: &files,
        registry: &registry,
        format_consts: &format_consts,
        all_mode: true,
    };
    let diags = rules::run_all(&ctx);
    let (mut kept, suppressed, stale) = allow.apply(diags);

    // Allowlist policy: R1/R2 must be fixed, never grandfathered, and
    // stale entries mean the ratchet slipped — both are failures.
    for e in allow.entries() {
        if e.rule == "R1" || e.rule == "R2" {
            kept.push(Diagnostic {
                rule: "ALLOWLIST",
                path: ALLOWLIST_PATH.to_owned(),
                line: 0,
                key: format!("{}.{}.{}", e.rule, e.path, e.key),
                message: format!(
                    "allowlist entry for {} ({} {}) — {} violations must be fixed, not \
                     grandfathered",
                    e.rule, e.path, e.key, e.rule
                ),
            });
        }
    }
    for e in &stale {
        kept.push(Diagnostic {
            rule: "ALLOWLIST",
            path: ALLOWLIST_PATH.to_owned(),
            line: 0,
            key: format!("stale.{}.{}.{}", e.rule, e.path, e.key),
            message: format!(
                "stale allowlist entry {} {} {} matches nothing — remove it",
                e.rule, e.path, e.key
            ),
        });
    }
    kept.sort_by(|a, b| (a.rule, &a.path, a.line, &a.key).cmp(&(b.rule, &b.path, b.line, &b.key)));

    Ok(Outcome {
        diags: kept,
        allowlisted: suppressed,
        files_scanned: files.len(),
    })
}

/// Result of linting one fixture file.
pub struct FixtureOutcome {
    /// Diagnostics the rules produced for the fixture.
    pub diags: Vec<Diagnostic>,
    /// Rule ids the fixture's `//@expect:` directives demand.
    pub expected: Vec<String>,
}

impl FixtureOutcome {
    /// Rule ids that were expected but did not fire.
    pub fn missing(&self) -> Vec<&str> {
        self.expected
            .iter()
            .filter(|r| !self.diags.iter().any(|d| d.rule == r.as_str()))
            .map(String::as_str)
            .collect()
    }

    /// Whether every expected rule fired.
    pub fn passed(&self) -> bool {
        !self.expected.is_empty() && self.missing().is_empty()
    }
}

/// Lints one fixture file: a `.rs` file carrying `//@path:` (the virtual
/// repo-relative path the rules should see it at) and one or more
/// `//@expect: <RULE>` directives. Fixtures run with an empty registry,
/// empty format-constant manifest, and no allowlist, and with the
/// full-tree-only existence checks off.
pub fn lint_fixture(root: &Path, fixture: &Path) -> Result<FixtureOutcome, String> {
    let src =
        fs::read_to_string(fixture).map_err(|e| format!("reading {}: {e}", fixture.display()))?;
    let mut virtual_path = None;
    let mut expected = Vec::new();
    for line in src.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("//@path:") {
            virtual_path = Some(rest.trim().to_owned());
        } else if let Some(rest) = line.strip_prefix("//@expect:") {
            expected.push(rest.trim().to_owned());
        }
    }
    let Some(virtual_path) = virtual_path else {
        return Err(format!(
            "{}: missing `//@path: crates/…` directive",
            fixture.display()
        ));
    };
    if expected.is_empty() {
        return Err(format!(
            "{}: missing `//@expect: <RULE>` directive",
            fixture.display()
        ));
    }
    let files = vec![FileModel::analyze(&virtual_path, &src)];
    let ctx = Context {
        root,
        files: &files,
        registry: &[],
        format_consts: &[],
        all_mode: false,
    };
    Ok(FixtureOutcome {
        diags: rules::run_all(&ctx),
        expected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The five seeded fixtures each fire their expected rule, and the
    /// harness rejects a fixture whose expectation does not fire.
    #[test]
    fn seeded_fixtures_fire_their_rules() {
        let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let dir = root.join("crates/lint/fixtures");
        let mut checked = 0;
        for entry in fs::read_dir(&dir).expect("fixtures dir") {
            let path = entry.expect("entry").path();
            if path.extension().is_none_or(|e| e != "rs") {
                continue;
            }
            let out = lint_fixture(&root, &path).expect("fixture lints");
            assert!(
                out.passed(),
                "{}: expected {:?}, missing {:?}; got {:#?}",
                path.display(),
                out.expected,
                out.missing(),
                out.diags.iter().map(Diagnostic::human).collect::<Vec<_>>()
            );
            checked += 1;
        }
        assert!(
            checked >= 5,
            "expected one fixture per rule, found {checked}"
        );
    }

    /// The real tree lints clean — the acceptance gate for `--all`.
    #[test]
    fn workspace_lints_clean() {
        let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let out = lint_all(&root).expect("lint runs");
        assert!(
            out.diags.is_empty(),
            "workspace has lint violations:\n{}",
            out.diags
                .iter()
                .map(Diagnostic::human)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(out.files_scanned > 30, "suspiciously few files scanned");
    }

    /// Policy: the allowlist must not carry R1/R2 entries.
    #[test]
    fn allowlist_has_no_r1_r2_entries() {
        let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let text = fs::read_to_string(root.join(rules::ALLOWLIST_PATH)).unwrap_or_default();
        let allow = Allowlist::parse(&text).expect("allowlist parses");
        assert!(
            allow
                .entries()
                .iter()
                .all(|e| e.rule != "R1" && e.rule != "R2"),
            "R1/R2 findings must be fixed, not allowlisted"
        );
    }
}
