//@path: crates/core/src/ssm.rs
//@expect: R4
//! Seeded violation for rule R4: a function named like an eq. (1)
//! bound producer with no `// SOUND:` marker, plus unmarked arithmetic
//! on a `sup`-named value in a helper.

pub fn upper_bound(supports: &[u64]) -> u64 {
    supports.iter().copied().min().unwrap_or(0)
}

pub fn shrink(sup_i: u64) -> u64 {
    sup_i - 1
}
