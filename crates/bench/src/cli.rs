//! A tiny `--key=value` argument parser for the experiment binaries.
//!
//! Every binary accepts the same scaling knobs (`--pages`, `--items`,
//! `--minsup`, `--seed`, `--full`), so paper-scale runs are one flag away
//! while the defaults finish in seconds. Hand-rolled to keep the
//! dependency set to the approved offline crates.

use std::collections::BTreeMap;

/// Parsed command-line options.
#[derive(Clone, Debug, Default)]
pub struct Options {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Options {
    /// Parses `--key=value` and bare `--flag` arguments.
    ///
    /// # Panics
    /// Panics (with a usage hint) on arguments not starting with `--`.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let (out, positionals) = Self::parse_with_positionals(args);
        if let Some(arg) = positionals.first() {
            panic!("unexpected argument {arg:?}: use --key=value or --flag");
        }
        out
    }

    /// Like [`Self::parse`], but collects positional (non-`--`) arguments
    /// instead of rejecting them. Used by callers that take paths
    /// positionally (the `ossm` CLI's `--trace <path>` and `obs diff`).
    pub fn parse_with_positionals(args: impl IntoIterator<Item = String>) -> (Self, Vec<String>) {
        let mut out = Options::default();
        let mut positionals = Vec::new();
        for arg in args {
            let Some(body) = arg.strip_prefix("--") else {
                positionals.push(arg);
                continue;
            };
            match body.split_once('=') {
                Some((k, v)) => {
                    out.values.insert(k.to_owned(), v.to_owned());
                }
                None => out.flags.push(body.to_owned()),
            }
        }
        (out, positionals)
    }

    /// Parses the process's real arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// A typed `--key=value`, or `default` if absent.
    ///
    /// # Panics
    /// Panics if the value does not parse as `T`.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("--{key}={v}: invalid value ({e:?})")),
            None => default,
        }
    }

    /// Whether a bare `--flag` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw string of `--key=value`, if present. For options whose mere
    /// presence matters (e.g. `--trace` with an optional `=format`, which
    /// may parse as either a flag or a value).
    pub fn raw(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Overrides `--key=value` programmatically (e.g. re-running an
    /// experiment with a different `--workload`).
    pub fn set(&mut self, key: &str, value: &str) {
        self.values.insert(key.to_owned(), value.to_owned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn parses_values_and_flags() {
        let o = parse(&["--pages=500", "--minsup=0.01", "--full"]);
        assert_eq!(o.get("pages", 0usize), 500);
        assert!((o.get("minsup", 0.0f64) - 0.01).abs() < 1e-12);
        assert!(o.flag("full"));
        assert!(!o.flag("quick"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let o = parse(&[]);
        assert_eq!(o.get("items", 1000usize), 1000);
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn rejects_positional_arguments() {
        parse(&["positional"]);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn rejects_bad_types() {
        parse(&["--pages=abc"]).get("pages", 0usize);
    }

    #[test]
    fn positional_variant_collects_instead_of_panicking() {
        let (o, pos) = Options::parse_with_positionals(
            ["--trace=folded", "out.folded", "--full", "b.json"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert_eq!(o.raw("trace"), Some("folded"));
        assert!(o.flag("full"));
        assert_eq!(pos, vec!["out.folded".to_owned(), "b.json".to_owned()]);
    }

    #[test]
    fn set_overrides_values() {
        let mut o = parse(&["--workload=regular"]);
        o.set("workload", "skewed");
        assert_eq!(o.raw("workload"), Some("skewed"));
    }
}
