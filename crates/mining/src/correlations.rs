//! Correlation mining (Brin–Motwani–Silverstein [6]) with OSSM pruning.
//!
//! "Beyond market baskets": instead of asking which itemsets are frequent,
//! ask which item *pairs* are statistically dependent — measured here by
//! lift (observed-to-expected co-occurrence ratio) and the 2×2 chi-squared
//! statistic. As in the original work, a support floor keeps the
//! statistics meaningful (cells with near-zero expectation blow chi² up
//! on noise), and that floor is exactly where the OSSM plugs in: a pair
//! whose equation-(1) bound misses the floor can be skipped *before* its
//! contingency table is ever counted.

use std::time::Instant;

use ossm_core::Ossm;
use ossm_data::{Dataset, ItemId, Itemset};

use crate::hashtree::count_hash_tree;
use crate::metrics::{LevelMetrics, MiningMetrics};

/// A dependent item pair with its statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct CorrelatedPair {
    /// The smaller item.
    pub a: ItemId,
    /// The larger item.
    pub b: ItemId,
    /// Co-occurrence count `sup({a, b})`.
    pub support: u64,
    /// `N · sup(ab) / (sup(a) · sup(b))` — 1.0 means independence.
    pub lift: f64,
    /// Chi-squared statistic of the 2×2 contingency table.
    pub chi_squared: f64,
}

/// Result of a correlation-mining run.
#[derive(Clone, Debug)]
pub struct CorrelationOutcome {
    /// Dependent pairs, strongest lift first.
    pub pairs: Vec<CorrelatedPair>,
    /// Candidate bookkeeping (level 2 = contingency tables counted).
    pub metrics: MiningMetrics,
}

/// Correlation miner configuration.
#[derive(Clone, Copy, Debug)]
pub struct CorrelationMiner {
    /// Support floor for pairs (the significance guard).
    pub min_support: u64,
    /// Minimum lift for a pair to be reported.
    pub min_lift: f64,
}

impl CorrelationMiner {
    /// A miner with the given support floor and lift threshold.
    ///
    /// # Panics
    /// Panics if `min_support == 0` or `min_lift` is not positive.
    pub fn new(min_support: u64, min_lift: f64) -> Self {
        assert!(min_support > 0, "support floor must be at least 1");
        assert!(min_lift > 0.0, "lift threshold must be positive");
        CorrelationMiner {
            min_support,
            min_lift,
        }
    }

    /// Mines dependent pairs. With `ossm: Some(_)`, pairs are discharged by
    /// equation (1) before counting; the result is identical either way.
    pub fn mine(&self, dataset: &Dataset, ossm: Option<&Ossm>) -> CorrelationOutcome {
        let start = Instant::now();
        let n = dataset.len() as u64;
        let mut metrics = MiningMetrics::default();
        let singles = dataset.singleton_supports();
        let m = dataset.num_items();

        // Items worth pairing: support ≥ floor (a pair cannot out-support
        // its items).
        let frequent: Vec<u32> = (0..m as u32)
            .filter(|&i| singles[i as usize] >= self.min_support)
            .collect();
        metrics.push_level(LevelMetrics {
            level: 1,
            generated: m as u64,
            counted: m as u64,
            frequent: frequent.len() as u64,
            ..Default::default()
        });

        // Candidate pairs, OSSM-filtered.
        let mut level2 = LevelMetrics {
            level: 2,
            ..Default::default()
        };
        let mut candidates: Vec<Itemset> = Vec::new();
        for (i, &a) in frequent.iter().enumerate() {
            for &b in &frequent[i + 1..] {
                level2.generated += 1;
                let pair = Itemset::new([a, b]);
                if let Some(map) = ossm {
                    if map.upper_bound(&pair) < self.min_support {
                        level2.filtered_out += 1;
                        continue;
                    }
                }
                candidates.push(pair);
            }
        }
        level2.counted = candidates.len() as u64;

        let counts = count_hash_tree(dataset.transactions(), &candidates);
        let mut pairs: Vec<CorrelatedPair> = Vec::new();
        for (pair, sup) in candidates.iter().zip(counts) {
            if sup < self.min_support {
                continue;
            }
            let (a, b) = (pair.items()[0], pair.items()[1]);
            let (sa, sb) = (singles[a.index()], singles[b.index()]);
            let lift = (n as f64 * sup as f64) / (sa as f64 * sb as f64);
            if lift < self.min_lift {
                continue;
            }
            level2.frequent += 1;
            pairs.push(CorrelatedPair {
                a,
                b,
                support: sup,
                lift,
                chi_squared: chi_squared_2x2(n, sa, sb, sup),
            });
        }
        metrics.push_level(level2);
        pairs.sort_by(|x, y| y.lift.partial_cmp(&x.lift).expect("lifts are finite"));
        metrics.elapsed = start.elapsed();
        CorrelationOutcome { pairs, metrics }
    }
}

/// Chi-squared statistic of the 2×2 table for items with supports `sa`,
/// `sb`, co-occurrence `sab`, over `n` transactions. Returns 0 when any
/// expected cell count is zero (degenerate margins).
pub fn chi_squared_2x2(n: u64, sa: u64, sb: u64, sab: u64) -> f64 {
    let n = n as f64;
    let (sa, sb, sab) = (sa as f64, sb as f64, sab as f64);
    // Observed cells: both, a-only, b-only, neither.
    let obs = [sab, sa - sab, sb - sab, n - sa - sb + sab];
    let exp = [
        sa * sb / n,
        sa * (n - sb) / n,
        (n - sa) * sb / n,
        (n - sa) * (n - sb) / n,
    ];
    let mut chi = 0.0;
    for (o, e) in obs.iter().zip(&exp) {
        if *e <= 0.0 {
            return 0.0;
        }
        chi += (o - e).powi(2) / e;
    }
    chi
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_core::{minimize_segments, OssmBuilder};
    use ossm_data::gen::SkewedConfig;
    use ossm_data::PageStore;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    /// Items 0 and 1 always co-occur; item 2 is independent noise.
    fn correlated_dataset() -> Dataset {
        let mut txs = Vec::new();
        for i in 0..100u32 {
            let mut t = if i % 2 == 0 { vec![0u32, 1] } else { vec![3] };
            if i % 3 == 0 {
                t.push(2);
            }
            txs.push(set(&t));
        }
        Dataset::new(4, txs)
    }

    #[test]
    fn finds_the_planted_correlation() {
        let d = correlated_dataset();
        let out = CorrelationMiner::new(10, 1.5).mine(&d, None);
        assert!(!out.pairs.is_empty());
        let top = &out.pairs[0];
        assert_eq!((top.a, top.b), (ItemId(0), ItemId(1)));
        // sup(0)=sup(1)=sup(01)=50, N=100 → lift = 100·50/(50·50) = 2.
        assert!((top.lift - 2.0).abs() < 1e-9);
        assert!(top.chi_squared > 50.0, "perfect dependence has a huge chi²");
        // Independent pair (0, 2) must not appear at lift ≥ 1.5.
        assert!(!out
            .pairs
            .iter()
            .any(|p| (p.a, p.b) == (ItemId(0), ItemId(2))));
    }

    #[test]
    fn chi_squared_formula_sanity() {
        // Perfect independence → 0.
        assert!((chi_squared_2x2(100, 50, 50, 25)).abs() < 1e-9);
        // Perfect dependence on half the data → chi² = N.
        assert!((chi_squared_2x2(100, 50, 50, 50) - 100.0).abs() < 1e-9);
        // Degenerate margins → 0 by convention.
        assert_eq!(chi_squared_2x2(100, 100, 50, 50), 0.0);
        assert_eq!(chi_squared_2x2(100, 0, 50, 0), 0.0);
    }

    #[test]
    fn ossm_pruning_never_changes_the_pairs() {
        let d = SkewedConfig {
            num_transactions: 1500,
            num_items: 40,
            ..SkewedConfig::small()
        }
        .generate();
        let floor = d.absolute_threshold(0.02);
        let miner = CorrelationMiner::new(floor, 1.2);
        let plain = miner.mine(&d, None);

        // Exact OSSM and a built one.
        let exact = minimize_segments(&d).ossm;
        let store = PageStore::with_page_count(d.clone(), 15);
        let (built, _) = OssmBuilder::new(6).build(&store);
        for map in [&exact, &built] {
            let pruned = miner.mine(&d, Some(map));
            assert_eq!(plain.pairs, pruned.pairs);
            assert!(
                pruned.metrics.level(2).expect("level 2").counted
                    <= plain.metrics.level(2).expect("level 2").counted
            );
        }
        // The exact map prunes every sub-floor pair: counted = pairs with
        // sup ≥ floor.
        let exact_run = miner.mine(&d, Some(&exact));
        let l2 = exact_run.metrics.level(2).expect("level 2");
        let truly_frequent = {
            let singles = d.singleton_supports();
            let freq: Vec<u32> = (0..40u32)
                .filter(|&i| singles[i as usize] >= floor)
                .collect();
            let mut c = 0u64;
            for (i, &a) in freq.iter().enumerate() {
                for &b in &freq[i + 1..] {
                    if d.support(&set(&[a, b])) >= floor {
                        c += 1;
                    }
                }
            }
            c
        };
        assert_eq!(l2.counted, truly_frequent);
    }

    #[test]
    fn results_are_sorted_by_lift() {
        let d = correlated_dataset();
        let out = CorrelationMiner::new(5, 0.1).mine(&d, None);
        for w in out.pairs.windows(2) {
            assert!(w[0].lift >= w[1].lift);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_floor_is_rejected() {
        CorrelationMiner::new(0, 1.0);
    }
}
