//! R2 — feature-gate parity and hygiene.
//!
//! The `obs` and `faults` layers (PRs 1–3) keep their zero-cost promise
//! only if every `#[cfg(feature = "…")]` item has a disabled twin: a
//! live implementation gated on the feature must be mirrored by a
//! `#[cfg(not(feature = "…"))]` ZST/no-op in the same file, or default
//! and `--no-default-features` builds drift apart. Two checks:
//!
//! * **parity** — a file whose non-test code positively gates on one of
//!   the watched features must also contain a negative gate for it;
//! * **hygiene** — every feature name referenced by any `cfg`/`cfg_attr`/
//!   `cfg!` must be declared in that crate's `[features]` table. A typo'd
//!   feature name silently evaluates to *disabled*, which is exactly the
//!   regression this rule exists to catch.

use super::Context;
use crate::diag::Diagnostic;
use crate::workspace::{crate_dir_of, declared_features};

/// Features whose gated items need a disabled twin. `enabled` is
/// `ossm-obs`'s internal name for the same gate the rest of the
/// workspace calls `obs`.
const PARITY_FEATURES: &[&str] = &["obs", "faults", "enabled"];

pub fn check(ctx: &Context<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in ctx.files {
        // (a) parity within the file.
        for feature in PARITY_FEATURES {
            let positives: Vec<_> = file
                .gates
                .iter()
                .filter(|g| !g.in_test && !g.negative && g.feature == *feature)
                .collect();
            let has_negative = file
                .gates
                .iter()
                .any(|g| !g.in_test && g.negative && g.feature == *feature);
            if positives.is_empty() || has_negative {
                continue;
            }
            for gate in positives {
                out.push(Diagnostic {
                    rule: "R2",
                    path: file.path.clone(),
                    line: gate.line,
                    key: format!("{feature}.{}", gate.item_name),
                    message: format!(
                        "{} `{}` is gated on feature \"{feature}\" but this file has no \
                         `not(feature = \"{feature}\")` twin — disabled builds lose the item",
                        gate.item_kind, gate.item_name
                    ),
                });
            }
        }
        // (b) referenced features must be declared in the crate manifest.
        let Some(crate_dir) = crate_dir_of(&file.path) else {
            continue;
        };
        let manifest = ctx.root.join(crate_dir).join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let declared = declared_features(&text);
        let mut seen = Vec::new();
        for (feature, line) in &file.features_used {
            if declared.iter().any(|d| d == feature) || seen.contains(feature) {
                continue;
            }
            seen.push(feature.clone());
            out.push(Diagnostic {
                rule: "R2",
                path: file.path.clone(),
                line: *line,
                key: format!("{feature}.undeclared"),
                message: format!(
                    "feature \"{feature}\" is referenced here but not declared in \
                     {crate_dir}/Cargo.toml — the cfg silently evaluates to disabled"
                ),
            });
        }
    }
    out
}
