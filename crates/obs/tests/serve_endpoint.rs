//! Round-trip tests for the live metrics endpoint: start a real
//! [`MetricsServer`] on a loopback port, speak minimal HTTP/1.1 at it,
//! and check both exposition formats. Needs live instrumentation — the
//! disabled build's `start` is tested in `noop_disabled.rs`.
#![cfg(feature = "enabled")]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ossm_obs::{Counter, Histogram, MetricsServer};

static HITS: Counter = Counter::new("test.serve.hits");
static LAT: Histogram = Histogram::new("test.serve.latency");

/// Value of a Prometheus `name value` sample line in `body`. Exact
/// values are unknowable here — tests in this binary run in parallel
/// against one shared registry — so callers compare before/after.
fn sample(body: &str, name: &str) -> u64 {
    let line = body
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .unwrap_or_else(|| panic!("no {name} sample in:\n{body}"));
    line[name.len() + 1..]
        .trim()
        .parse()
        .expect("integer sample")
}

/// One blocking HTTP exchange; returns (status line, body).
fn fetch(server: &MetricsServer, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(conn, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_owned();
    (status, body.to_owned())
}

#[test]
fn prometheus_endpoint_round_trips_and_rates_move_between_scrapes() {
    let server = MetricsServer::start("127.0.0.1:0").expect("bind loopback");
    assert_ne!(server.local_addr().port(), 0, "a real port was bound");

    HITS.add(10);
    LAT.record(100);
    LAT.record(100_000);
    let (status, body) = fetch(&server, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("# ossm-livemetrics v1"), "{body}");
    assert!(body.contains("ossm_up 1"), "{body}");
    assert!(body.contains("ossm_uptime_seconds"), "{body}");
    assert!(body.contains("ossm_build_info{"), "{body}");
    // Names are sanitized (dots -> underscores) and counters expose both
    // the cumulative total and the per-interval rate.
    let first = sample(&body, "ossm_test_serve_hits_total");
    assert!(first >= 10, "{body}");
    assert!(body.contains("ossm_test_serve_hits_per_sec"), "{body}");
    // Histograms surface as summaries with quantile labels.
    assert!(
        body.contains("ossm_test_serve_latency{quantile=\"0.99\"}"),
        "{body}"
    );
    assert!(body.contains("ossm_test_serve_latency_count"), "{body}");
    // The endpoint observes itself: its own scrape counter is live.
    assert!(body.contains("ossm_live_http_requests_total"), "{body}");

    // Second scrape after more traffic: totals move.
    HITS.add(5);
    let (_, body2) = fetch(&server, "/");
    assert!(
        sample(&body2, "ossm_test_serve_hits_total") >= first + 5,
        "{body2}"
    );
    server.shutdown();
}

#[test]
fn json_endpoint_emits_live_header_and_quantiles() {
    let server = MetricsServer::start("127.0.0.1:0").expect("bind loopback");
    HITS.incr();
    LAT.record(2048);
    let (status, body) = fetch(&server, "/metrics.json");
    assert!(status.contains("200"), "{status}");
    let header = body.lines().next().expect("header line");
    assert!(header.contains("\"type\":\"live\""), "{header}");
    assert!(
        header.contains("\"marker\":\"ossm-livemetrics\""),
        "{header}"
    );
    assert!(header.contains("\"uptime_seconds\""), "{header}");
    let hist = body
        .lines()
        .find(|l| l.contains("test.serve.latency"))
        .expect("histogram row");
    for key in ["\"p50\"", "\"p95\"", "\"p99\""] {
        assert!(hist.contains(key), "{hist}");
    }
    server.shutdown();
}

#[test]
fn unknown_paths_get_a_404_and_shutdown_joins_cleanly() {
    let server = MetricsServer::start("127.0.0.1:0").expect("bind loopback");
    let (status, _) = fetch(&server, "/nope");
    assert!(status.contains("404"), "{status}");
    // Both explicit shutdown (above tests) and Drop must not hang.
    drop(server);
}
