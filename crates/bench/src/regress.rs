//! The bench regression gate: compares two `BENCH_obs.json` files
//! (committed baseline vs fresh run) metric by metric.
//!
//! A `BENCH_obs.json` is the line-oriented stream `all-experiments`
//! writes: speedup rows (`"type":"speedup"`) followed by the
//! instrumentation snapshot (`"type":"counter" | "phase" | "histogram"`).
//! This module flattens both files into `name → value` maps and diffs
//! them under per-metric relative thresholds:
//!
//! * **count metrics** (candidate counts, loss, counter values, phase call
//!   counts, …) are deterministic for a seeded workload, so they are gated
//!   *symmetrically*: any relative drift beyond `count_drift` fails —
//!   an unexplained drop in `core.bound.pruned` is as suspicious as a
//!   rise in `c2_counted`.
//! * **timing metrics** (any name ending in `nanos`) are machine-
//!   dependent, so they are reported always but gated only when a
//!   `time_regress` threshold is given (and only against *increases*).
//! * **scheduling metrics** (the `par.*` fork-join telemetry) depend on
//!   the machine's core count, not the computation — reported, never
//!   gated (see [`is_scheduling`]).
//! * **memory metrics** (`gauge.mem.*`) split in two: the static
//!   subsystem gauges are deterministic cost models, so their `.peak`
//!   rows gate at the looser `mem_drift` threshold; the allocator- and
//!   RSS-derived rows (`mem.alloc*`, `mem.rss*`) depend on the allocator
//!   and scheduling, so they are reported but never gated. All memory
//!   rows are exempt from the missing-metric failure — an `obs-alloc`
//!   run produces rows a default-feature run cannot (see [`is_memory`]).
//!
//! A metric present in the baseline but missing from the current run
//! always fails — silently losing instrumentation is itself a regression.
//! New metrics only report (adding instrumentation is how the baseline
//! grows; refresh it with `regress --write-baseline`).
//!
//! Independently of the baseline, every obs metric name in the current
//! run is checked against the [`ossm_obs::REGISTRY`] name registry (the
//! same file lint rule R3 enforces against the source): a name absent
//! from the registry is listed as *unregistered* — report-only, but it
//! means a producer minted a metric name outside the declared contract.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ossm_obs::json::{self, Json};

/// Flattened metrics of one `BENCH_obs.json`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsData {
    /// `metric name → value`, names as produced by [`parse_obs_lines`].
    pub metrics: BTreeMap<String, f64>,
}

/// True for metrics measuring wall-clock time (nanosecond-valued), which
/// vary run to run and are gated separately from deterministic counts.
/// Latency-histogram sums (`histogram.*.latency.sum`) are accumulated
/// nanoseconds too — their naming carries the unit in the metric name
/// rather than the field suffix.
pub fn is_timing(name: &str) -> bool {
    name.ends_with("nanos") || name.ends_with(".latency.sum")
}

/// True for per-interval rates and derived latency quantiles (the
/// `*.per_sec` / `*.p50` / `*.p95` / `*.p99` rows of the live-telemetry
/// layer). Pure wall-clock artifacts: reported, never gated, and exempt
/// from the missing-metric failure (a batch run records no intervals).
pub fn is_rate_or_quantile(name: &str) -> bool {
    name.ends_with(".per_sec")
        || name.ends_with(".p50")
        || name.ends_with(".p95")
        || name.ends_with(".p99")
}

/// True for serving-workload metrics (the `live.*` / `req.*` families):
/// how many batches the live ingest loop ran and how its request
/// latencies distributed depends on wall clock and pacing, not on the
/// computation. Reported, never gated, missing-exempt.
pub fn is_serving(name: &str) -> bool {
    let base = name
        .strip_prefix("counter.")
        .or_else(|| name.strip_prefix("phase."))
        .or_else(|| name.strip_prefix("histogram."))
        .or_else(|| name.strip_prefix("gauge."))
        .unwrap_or(name);
    base.starts_with("live.") || base.starts_with("req.")
}

/// True for scheduling-dependent metrics: the ossm-par fork-join telemetry
/// (`par.jobs`, `par.chunks`, `par.serial`, `par.worker` spans) counts how
/// many maps spawned workers vs ran inline, which depends on the machine's
/// core count and any `OSSM_THREADS` override — *results* are bit-identical
/// across thread counts, but these counters are not. Reported, never gated,
/// and exempt from the missing-metric failure (a one-core run legitimately
/// records no `par.jobs` at all).
pub fn is_scheduling(name: &str) -> bool {
    name.starts_with("counter.par.")
        || name.starts_with("phase.par.")
        || name.starts_with("histogram.par.")
}

/// True for memory metrics (the flattened `gauge.mem.*` rows). Exempt
/// from the missing-metric failure: the allocator-derived rows exist only
/// under the `obs-alloc` feature, so a default-feature run legitimately
/// records none of them.
pub fn is_memory(name: &str) -> bool {
    name.starts_with("gauge.mem.")
}

/// True for the nondeterministic memory rows — allocator byte counts and
/// RSS samples — whose values depend on the allocator, libc, and thread
/// scheduling. Reported, never gated.
fn is_allocator_memory(name: &str) -> bool {
    name.starts_with("gauge.mem.alloc") || name.starts_with("gauge.mem.rss")
}

/// The obs registry name behind a flattened metric key, if any: strips
/// the `counter.` / `phase.` / `histogram.` / `gauge.` type prefix and
/// the `.nanos` / `.calls` / `.count` / `.sum` / `.current` / `.peak`
/// field suffix. Speedup rows (`speedup[...]`) carry workload scopes,
/// not registry names, so they return `None`.
pub fn base_name(name: &str) -> Option<&str> {
    if let Some(rest) = name.strip_prefix("counter.") {
        return Some(rest);
    }
    if let Some(rest) = name.strip_prefix("phase.") {
        return rest.strip_suffix(".nanos").or(rest.strip_suffix(".calls"));
    }
    if let Some(rest) = name.strip_prefix("histogram.") {
        return rest
            .strip_suffix(".count")
            .or(rest.strip_suffix(".sum"))
            .or(rest.strip_suffix(".p50"))
            .or(rest.strip_suffix(".p95"))
            .or(rest.strip_suffix(".p99"));
    }
    if let Some(rest) = name.strip_prefix("gauge.") {
        return rest.strip_suffix(".current").or(rest.strip_suffix(".peak"));
    }
    None
}

/// Whether `base` appears in the newline-separated name `registry`
/// (comments and blanks skipped). An entry ending in `.*` declares a
/// dynamic-name prefix: `mem.alloc.*` admits `mem.alloc` itself and
/// everything beneath it.
pub fn registered(base: &str, registry: &str) -> bool {
    for line in registry.lines() {
        let entry = line.split('#').next().unwrap_or("").trim();
        if entry.is_empty() {
            continue;
        }
        if let Some(prefix) = entry.strip_suffix(".*") {
            if base == prefix
                || base
                    .strip_prefix(prefix)
                    .is_some_and(|r| r.starts_with('.'))
            {
                return true;
            }
        } else if base == entry {
            return true;
        }
    }
    false
}

/// Flattened metric keys of `data` whose obs name is absent from
/// `registry`. Report-only: a hit means a producer minted a metric name
/// outside the declared contract (or the registry needs the new name).
pub fn unregistered_metrics(data: &ObsData, registry: &str) -> Vec<String> {
    data.metrics
        .keys()
        .filter(|name| base_name(name).is_some_and(|base| !registered(base, registry)))
        .cloned()
        .collect()
}

/// Parses the line-oriented `BENCH_obs.json` format into flat metrics.
/// Lines with an unknown `type` are ignored (forward compatibility).
pub fn parse_obs_lines(text: &str) -> Result<ObsData, String> {
    let mut out = ObsData::default();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ty = v.get("type").and_then(Json::as_str).unwrap_or_default();
        let str_of = |key: &str| v.get(key).and_then(Json::as_str).unwrap_or("?").to_owned();
        let num_of = |key: &str| v.get(key).and_then(Json::as_f64);
        match ty {
            "speedup" => {
                let prefix = format!(
                    "speedup[{}/{}/n{}]",
                    str_of("workload"),
                    str_of("strategy"),
                    num_of("n_user").unwrap_or(0.0)
                );
                for key in [
                    "c2_counted",
                    "c2_fraction",
                    "loss",
                    "memory_bytes",
                    "segmentation_nanos",
                    "mining_nanos",
                ] {
                    if let Some(value) = num_of(key) {
                        out.metrics.insert(format!("{prefix}.{key}"), value);
                    }
                }
            }
            "counter" => {
                if let Some(value) = num_of("value") {
                    out.metrics
                        .insert(format!("counter.{}", str_of("name")), value);
                }
            }
            "phase" => {
                let name = str_of("name");
                if let Some(nanos) = num_of("nanos") {
                    out.metrics.insert(format!("phase.{name}.nanos"), nanos);
                }
                if let Some(calls) = num_of("calls") {
                    out.metrics.insert(format!("phase.{name}.calls"), calls);
                }
            }
            "histogram" => {
                let name = str_of("name");
                if let Some(count) = num_of("count") {
                    out.metrics.insert(format!("histogram.{name}.count"), count);
                }
                if let Some(sum) = num_of("sum") {
                    out.metrics.insert(format!("histogram.{name}.sum"), sum);
                }
                for q in ["p50", "p95", "p99"] {
                    if let Some(value) = num_of(q) {
                        out.metrics.insert(format!("histogram.{name}.{q}"), value);
                    }
                }
            }
            "gauge" => {
                let name = str_of("name");
                if let Some(current) = num_of("current") {
                    out.metrics.insert(format!("gauge.{name}.current"), current);
                }
                if let Some(peak) = num_of("peak") {
                    out.metrics.insert(format!("gauge.{name}.peak"), peak);
                }
            }
            _ => {}
        }
    }
    Ok(out)
}

/// Gate thresholds (relative, e.g. `0.05` = 5 %).
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Maximum |relative drift| for deterministic count metrics.
    pub count_drift: f64,
    /// Maximum relative *increase* for timing metrics; `None` leaves
    /// timings report-only (the CI-stable default).
    pub time_regress: Option<f64>,
    /// Maximum |relative drift| for the deterministic memory gauges'
    /// `.peak` rows. Looser than `count_drift`: the gauges are cost
    /// models whose constants shift when data-structure layouts evolve.
    pub mem_drift: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            count_drift: 0.05,
            time_regress: None,
            mem_drift: 0.10,
        }
    }
}

/// One metric's comparison.
#[derive(Clone, Debug)]
pub struct Diff {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
    /// `(cur − base) / base`; infinite when `base == 0 != cur`.
    pub change: f64,
    /// Whether this metric breached its threshold.
    pub failed: bool,
}

/// The full comparison of two obs files.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Metrics present in both files.
    pub diffs: Vec<Diff>,
    /// Metrics only in the baseline (always a failure).
    pub missing: Vec<String>,
    /// Metrics only in the current run (report-only).
    pub added: Vec<String>,
    /// Current-run metrics whose obs name is absent from the name
    /// registry (report-only, see [`unregistered_metrics`]).
    pub unregistered: Vec<String>,
}

/// One key family's slice of a [`Report`] — see [`family`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Metrics present in both files.
    pub compared: usize,
    /// Compared metrics that breached their threshold.
    pub failed: usize,
    /// Metrics only in the baseline.
    pub missing: usize,
    /// Metrics only in the current run.
    pub added: usize,
    /// Current-run metrics absent from the name registry.
    pub unregistered: usize,
}

/// The key family a metric belongs to, for per-family coverage reporting.
///
/// Speedup keys keep their full bracketed scope
/// (`speedup[Dense/Greedy/n6]`), so every workload/strategy/n_user cell
/// the baseline covers shows up as its own row; snapshot keys group by
/// type plus the first dotted name segment (`counter.par`, `phase.data`).
pub fn family(name: &str) -> String {
    if let Some(rest) = name.strip_prefix("speedup[") {
        if let Some(end) = rest.find(']') {
            return format!("speedup[{}]", &rest[..end]);
        }
    }
    let mut parts = name.splitn(3, '.');
    match (parts.next(), parts.next()) {
        (Some(ty), Some(first)) => format!("{ty}.{first}"),
        _ => name.to_owned(),
    }
}

impl Report {
    /// Per-family coverage: how many metrics each key family contributed
    /// to the comparison, and how they fared. Makes gaps visible — a
    /// family whose row is all zeros except `missing` has dropped out of
    /// the current run entirely.
    pub fn coverage(&self) -> BTreeMap<String, Coverage> {
        let mut out: BTreeMap<String, Coverage> = BTreeMap::new();
        for d in &self.diffs {
            let entry = out.entry(family(&d.name)).or_default();
            entry.compared += 1;
            if d.failed {
                entry.failed += 1;
            }
        }
        for name in &self.missing {
            out.entry(family(name)).or_default().missing += 1;
        }
        for name in &self.added {
            out.entry(family(name)).or_default().added += 1;
        }
        for name in &self.unregistered {
            out.entry(family(name)).or_default().unregistered += 1;
        }
        out
    }
    /// True when any gated metric breached its threshold or any baseline
    /// metric disappeared.
    pub fn failed(&self) -> bool {
        !self.missing.is_empty() || self.diffs.iter().any(|d| d.failed)
    }

    /// Renders the markdown report: verdict, failures, biggest movers.
    pub fn to_markdown(&self, thresholds: &Thresholds) -> String {
        let mut out = String::new();
        let failures: Vec<&Diff> = self.diffs.iter().filter(|d| d.failed).collect();
        let _ = writeln!(out, "# Bench regression report\n");
        let _ = writeln!(
            out,
            "Verdict: **{}** — {} metrics compared, {} failed threshold, \
             {} missing, {} new, {} unregistered. Count-drift gate ±{:.1}%; \
             memory-peak gate ±{:.1}%; timing gate {}.\n",
            if self.failed() { "FAIL" } else { "PASS" },
            self.diffs.len(),
            failures.len(),
            self.missing.len(),
            self.added.len(),
            self.unregistered.len(),
            thresholds.count_drift * 100.0,
            thresholds.mem_drift * 100.0,
            match thresholds.time_regress {
                Some(t) => format!("+{:.1}%", t * 100.0),
                None => "off (report-only)".to_owned(),
            },
        );
        if !failures.is_empty() {
            let _ = writeln!(out, "## Failures\n");
            let _ = writeln!(out, "| metric | baseline | current | change |");
            let _ = writeln!(out, "|---|---|---|---|");
            for d in &failures {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} |",
                    d.name,
                    fmt_value(d.base),
                    fmt_value(d.cur),
                    fmt_change(d.change)
                );
            }
            out.push('\n');
        }
        if !self.missing.is_empty() {
            let _ = writeln!(out, "## Missing from the current run\n");
            for name in &self.missing {
                let _ = writeln!(out, "- {name}");
            }
            out.push('\n');
        }
        if !self.added.is_empty() {
            let _ = writeln!(
                out,
                "## New metrics ({}; refresh the baseline to gate them)\n",
                self.added.len()
            );
            for name in self.added.iter().take(20) {
                let _ = writeln!(out, "- {name}");
            }
            if self.added.len() > 20 {
                let _ = writeln!(out, "- … and {} more", self.added.len() - 20);
            }
            out.push('\n');
        }
        if !self.unregistered.is_empty() {
            let _ = writeln!(
                out,
                "## Unregistered metric names ({}; add them to the obs registry)\n",
                self.unregistered.len()
            );
            for name in self.unregistered.iter().take(20) {
                let _ = writeln!(out, "- {name}");
            }
            if self.unregistered.len() > 20 {
                let _ = writeln!(out, "- … and {} more", self.unregistered.len() - 20);
            }
            out.push('\n');
        }
        // The biggest non-failing movers give the "did anything shift?"
        // picture even on a green run.
        let mut movers: Vec<&Diff> = self
            .diffs
            .iter()
            .filter(|d| !d.failed && d.change != 0.0)
            .collect();
        movers.sort_by(|a, b| {
            b.change
                .abs()
                .partial_cmp(&a.change.abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if !movers.is_empty() {
            let _ = writeln!(out, "## Largest movements within thresholds\n");
            let _ = writeln!(out, "| metric | baseline | current | change |");
            let _ = writeln!(out, "|---|---|---|---|");
            for d in movers.iter().take(10) {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} |",
                    d.name,
                    fmt_value(d.base),
                    fmt_value(d.cur),
                    fmt_change(d.change)
                );
            }
            out.push('\n');
        }
        let coverage = self.coverage();
        if !coverage.is_empty() {
            let _ = writeln!(out, "## Coverage by key family\n");
            let _ = writeln!(
                out,
                "| family | compared | failed | missing | new | unregistered |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|---|");
            for (name, c) in &coverage {
                let _ = writeln!(
                    out,
                    "| {name} | {} | {} | {} | {} | {} |",
                    c.compared, c.failed, c.missing, c.added, c.unregistered
                );
            }
        }
        out
    }
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn fmt_change(change: f64) -> String {
    if change.is_infinite() {
        "new-nonzero".to_owned()
    } else {
        format!("{:+.2}%", change * 100.0)
    }
}

/// Compares `current` against `baseline` under `thresholds`.
pub fn compare(baseline: &ObsData, current: &ObsData, thresholds: &Thresholds) -> Report {
    let mut report = Report {
        unregistered: unregistered_metrics(current, ossm_obs::REGISTRY),
        ..Report::default()
    };
    for (name, &base) in &baseline.metrics {
        let Some(&cur) = current.metrics.get(name) else {
            if is_scheduling(name)
                || is_memory(name)
                || is_serving(name)
                || is_rate_or_quantile(name)
            {
                // A different core count can drop a scheduling counter to
                // zero, a default-feature run records none of the
                // obs-alloc memory rows, and a batch run records no
                // serving/interval rows (all omitted from the snapshot);
                // record the diff rather than a hard missing-metric
                // failure.
                report.diffs.push(Diff {
                    name: name.clone(),
                    base,
                    cur: 0.0,
                    change: if base == 0.0 { 0.0 } else { -1.0 },
                    failed: false,
                });
            } else {
                report.missing.push(name.clone());
            }
            continue;
        };
        let change = if base == 0.0 {
            if cur == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (cur - base) / base
        };
        let failed = if is_scheduling(name) || is_serving(name) || is_rate_or_quantile(name) {
            false
        } else if is_memory(name) {
            // Only the deterministic gauges' peaks gate; the allocator /
            // RSS rows and end-of-run currents are report-only.
            !is_allocator_memory(name)
                && name.ends_with(".peak")
                && change.abs() > thresholds.mem_drift
        } else if is_timing(name) {
            thresholds.time_regress.is_some_and(|t| change > t)
        } else {
            change.abs() > thresholds.count_drift
        };
        report.diffs.push(Diff {
            name: name.clone(),
            base,
            cur,
            change,
            failed,
        });
    }
    for name in current.metrics.keys() {
        if !baseline.metrics.contains_key(name) {
            report.added.push(name.clone());
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"type":"speedup","workload":"Regular","strategy":"Greedy","n_user":6,"segmentation_nanos":1000,"mining_nanos":2000,"speedup":1.5,"c2_counted":100,"c2_fraction":0.25,"loss":7,"memory_bytes":4096}"#,
        "\n",
        r#"{"type":"counter","name":"core.bound.evals","value":128}"#,
        "\n",
        r#"{"type":"phase","name":"core.build.segment","nanos":5000,"calls":3}"#,
        "\n",
        r#"{"type":"histogram","name":"mining.bound.slack","count":12,"sum":40,"buckets":[[0,4],[4,8]]}"#,
        "\n",
    );

    #[test]
    fn parses_every_line_type() {
        let d = parse_obs_lines(SAMPLE).unwrap();
        let m = &d.metrics;
        assert_eq!(m.get("speedup[Regular/Greedy/n6].c2_counted"), Some(&100.0));
        assert_eq!(m.get("speedup[Regular/Greedy/n6].loss"), Some(&7.0));
        assert_eq!(
            m.get("speedup[Regular/Greedy/n6].mining_nanos"),
            Some(&2000.0)
        );
        assert_eq!(m.get("counter.core.bound.evals"), Some(&128.0));
        assert_eq!(m.get("phase.core.build.segment.nanos"), Some(&5000.0));
        assert_eq!(m.get("phase.core.build.segment.calls"), Some(&3.0));
        assert_eq!(m.get("histogram.mining.bound.slack.count"), Some(&12.0));
        assert_eq!(m.get("histogram.mining.bound.slack.sum"), Some(&40.0));
    }

    #[test]
    fn identical_files_pass() {
        let d = parse_obs_lines(SAMPLE).unwrap();
        let report = compare(&d, &d, &Thresholds::default());
        assert!(!report.failed());
        assert!(report.missing.is_empty() && report.added.is_empty());
        assert!(report.to_markdown(&Thresholds::default()).contains("PASS"));
    }

    #[test]
    fn count_drift_fails_in_both_directions() {
        let base = parse_obs_lines(SAMPLE).unwrap();
        for value in [100, 160] {
            // 128 ± 25% on core.bound.evals, beyond the 5% gate.
            let cur =
                parse_obs_lines(&SAMPLE.replace(r#""value":128"#, &format!(r#""value":{value}"#)))
                    .unwrap();
            let report = compare(&base, &cur, &Thresholds::default());
            assert!(report.failed(), "value {value} must fail");
            let md = report.to_markdown(&Thresholds::default());
            assert!(md.contains("FAIL") && md.contains("core.bound.evals"));
        }
    }

    #[test]
    fn timings_are_report_only_by_default() {
        let base = parse_obs_lines(SAMPLE).unwrap();
        let cur = parse_obs_lines(&SAMPLE.replace(r#""nanos":5000"#, r#""nanos":500000"#)).unwrap();
        assert!(!compare(&base, &cur, &Thresholds::default()).failed());
        // With an explicit timing gate, a 100x slowdown fails…
        let gated = Thresholds {
            time_regress: Some(0.5),
            ..Thresholds::default()
        };
        assert!(compare(&base, &cur, &gated).failed());
        // …but a speedup never does.
        let faster = parse_obs_lines(&SAMPLE.replace(r#""nanos":5000"#, r#""nanos":50"#)).unwrap();
        assert!(!compare(&base, &faster, &gated).failed());
    }

    #[test]
    fn missing_metrics_fail_and_new_metrics_report() {
        let base = parse_obs_lines(SAMPLE).unwrap();
        let cur = parse_obs_lines(&SAMPLE.replace(
            r#"{"type":"counter","name":"core.bound.evals","value":128}"#,
            r#"{"type":"counter","name":"core.bound.other","value":128}"#,
        ))
        .unwrap();
        let report = compare(&base, &cur, &Thresholds::default());
        assert!(report.failed(), "losing a metric is a regression");
        assert_eq!(report.missing, vec!["counter.core.bound.evals".to_owned()]);
        assert_eq!(report.added, vec!["counter.core.bound.other".to_owned()]);
        // New-only metrics alone must not fail.
        let grown = compare(&cur, &base, &Thresholds::default());
        assert_eq!(grown.missing, vec!["counter.core.bound.other".to_owned()]);
    }

    #[test]
    fn zero_baseline_fails_only_when_current_is_nonzero() {
        let base = parse_obs_lines(&SAMPLE.replace(r#""value":128"#, r#""value":0"#)).unwrap();
        let same = compare(&base, &base, &Thresholds::default());
        assert!(!same.failed(), "0 -> 0 is no drift");
        let cur = parse_obs_lines(&SAMPLE.replace(r#""value":128"#, r#""value":3"#)).unwrap();
        let report = compare(&base, &cur, &Thresholds::default());
        assert!(report.failed(), "0 -> 3 is unbounded drift");
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let err = parse_obs_lines("{\"type\":\"counter\"\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn scheduling_metrics_report_but_never_gate() {
        let with_par = concat!(
            r#"{"type":"counter","name":"par.serial","value":40}"#,
            "\n",
            r#"{"type":"counter","name":"par.jobs","value":12}"#,
            "\n",
            r#"{"type":"counter","name":"core.bound.evals","value":128}"#,
            "\n",
        );
        let base = parse_obs_lines(with_par).unwrap();
        // A one-core run: fewer spawns, more inline maps, no par.jobs line
        // at all. None of that may fail the gate.
        let cur = parse_obs_lines(&with_par.replace(
            r#"{"type":"counter","name":"par.jobs","value":12}"#,
            r#"{"type":"counter","name":"par.serial","value":52}"#,
        ))
        .unwrap();
        let report = compare(&base, &cur, &Thresholds::default());
        assert!(!report.failed(), "scheduling drift must not gate");
        assert!(report.missing.is_empty(), "par.jobs absence is not missing");
        let jobs = report.diffs.iter().find(|d| d.name == "counter.par.jobs");
        assert_eq!(jobs.map(|d| d.cur), Some(0.0), "still visible in diffs");
        // The deterministic counter alongside still gates normally.
        let drifted =
            parse_obs_lines(&with_par.replace(r#""value":128"#, r#""value":300"#)).unwrap();
        assert!(compare(&base, &drifted, &Thresholds::default()).failed());
    }

    #[test]
    fn families_group_by_speedup_scope_or_first_name_segment() {
        assert_eq!(
            family("speedup[Regular+seed2/RC/n6].c2_counted"),
            "speedup[Regular+seed2/RC/n6]"
        );
        assert_eq!(family("counter.par.chunks"), "counter.par");
        assert_eq!(family("phase.core.build.segment.nanos"), "phase.core");
        assert_eq!(
            family("histogram.mining.bound.slack.sum"),
            "histogram.mining"
        );
        assert_eq!(family("oddball"), "oddball");
    }

    #[test]
    fn coverage_counts_every_disposition_per_family() {
        let base = parse_obs_lines(SAMPLE).unwrap();
        // Drop the counter (missing), rename the phase (missing + added),
        // and drift the speedup row's loss past the gate (failed).
        let cur = parse_obs_lines(
            &SAMPLE
                .replace(
                    r#"{"type":"counter","name":"core.bound.evals","value":128}"#,
                    "",
                )
                .replace("core.build.segment", "data.page.scan")
                .replace(r#""loss":7"#, r#""loss":70"#),
        )
        .unwrap();
        let report = compare(&base, &cur, &Thresholds::default());
        let cov = report.coverage();
        assert_eq!(
            cov.get("counter.core"),
            Some(&Coverage {
                missing: 1,
                ..Coverage::default()
            })
        );
        assert_eq!(
            cov.get("phase.core"),
            Some(&Coverage {
                missing: 2,
                ..Coverage::default()
            })
        );
        assert_eq!(
            cov.get("phase.data"),
            Some(&Coverage {
                added: 2,
                // "data.page.scan" is not a registered obs name.
                unregistered: 2,
                ..Coverage::default()
            })
        );
        let speedup = cov.get("speedup[Regular/Greedy/n6]").expect("family");
        assert_eq!(speedup.compared, 6);
        assert_eq!(speedup.failed, 1, "only loss drifted");
        let md = report.to_markdown(&Thresholds::default());
        assert!(md.contains("## Coverage by key family"));
        assert!(md.contains("| counter.core | 0 | 0 | 1 | 0 | 0 |"), "{md}");
        // The renamed phase target is not a registered obs name, so the
        // coverage row flags it (both its .nanos and .calls keys).
        assert!(md.contains("| phase.data | 0 | 0 | 0 | 2 | 2 |"), "{md}");
    }

    const GAUGE_SAMPLE: &str = concat!(
        r#"{"type":"gauge","name":"mem.core.ossm","current":4096,"peak":4096}"#,
        "\n",
        r#"{"type":"gauge","name":"mem.alloc.data.page","current":0,"peak":90000}"#,
        "\n",
        r#"{"type":"gauge","name":"mem.rss","current":1000000,"peak":2000000}"#,
        "\n",
    );

    #[test]
    fn gauge_lines_flatten_to_current_and_peak() {
        let d = parse_obs_lines(GAUGE_SAMPLE).unwrap();
        assert_eq!(d.metrics.get("gauge.mem.core.ossm.current"), Some(&4096.0));
        assert_eq!(d.metrics.get("gauge.mem.core.ossm.peak"), Some(&4096.0));
        assert_eq!(
            d.metrics.get("gauge.mem.alloc.data.page.peak"),
            Some(&90000.0)
        );
        assert_eq!(d.metrics.get("gauge.mem.rss.peak"), Some(&2000000.0));
    }

    #[test]
    fn static_memory_peaks_gate_at_mem_drift_but_currents_do_not() {
        let base = parse_obs_lines(GAUGE_SAMPLE).unwrap();
        // 5% peak drift: inside the 10% memory gate.
        let five = parse_obs_lines(&GAUGE_SAMPLE.replace(
            r#""current":4096,"peak":4096"#,
            r#""current":4096,"peak":4301"#,
        ))
        .unwrap();
        assert!(!compare(&base, &five, &Thresholds::default()).failed());
        // 50% peak drift on a deterministic gauge: fails.
        let fifty = parse_obs_lines(&GAUGE_SAMPLE.replace(
            r#""current":4096,"peak":4096"#,
            r#""current":4096,"peak":6144"#,
        ))
        .unwrap();
        let report = compare(&base, &fifty, &Thresholds::default());
        assert!(report.failed());
        assert!(report
            .diffs
            .iter()
            .any(|d| d.name == "gauge.mem.core.ossm.peak" && d.failed));
        // The same drift on the current value alone is report-only.
        let cur_only = parse_obs_lines(&GAUGE_SAMPLE.replace(
            r#""current":4096,"peak":4096"#,
            r#""current":6144,"peak":4096"#,
        ))
        .unwrap();
        assert!(!compare(&base, &cur_only, &Thresholds::default()).failed());
    }

    #[test]
    fn allocator_memory_rows_never_gate_and_may_go_missing() {
        let base = parse_obs_lines(GAUGE_SAMPLE).unwrap();
        // A 10x RSS/alloc swing is machine noise, not a regression.
        let noisy = parse_obs_lines(
            &GAUGE_SAMPLE
                .replace(r#""peak":90000"#, r#""peak":900000"#)
                .replace(r#""peak":2000000"#, r#""peak":20000000"#),
        )
        .unwrap();
        assert!(!compare(&base, &noisy, &Thresholds::default()).failed());
        // A default-feature run records no memory rows at all: exempt
        // from the missing-metric failure, but still visible as diffs.
        let none = ObsData::default();
        let report = compare(&base, &none, &Thresholds::default());
        assert!(!report.failed(), "memory rows are missing-exempt");
        assert!(report.missing.is_empty());
        assert_eq!(report.diffs.len(), 6);
    }

    #[test]
    fn registry_lookup_handles_exact_names_and_wildcards() {
        let registry = "# comment\nmem.core.ossm\nmem.alloc.*\n";
        assert!(registered("mem.core.ossm", registry));
        assert!(registered("mem.alloc", registry), "prefix itself matches");
        assert!(registered("mem.alloc.data.page", registry));
        assert!(!registered("mem.alloc2", registry), "no partial segments");
        assert!(!registered("mem.data.pages", registry));
    }

    #[test]
    fn unregistered_names_are_flagged_per_flattened_key() {
        let data = parse_obs_lines(concat!(
            r#"{"type":"counter","name":"core.bound.evals","value":1}"#,
            "\n",
            r#"{"type":"counter","name":"made.up.name","value":1}"#,
            "\n",
            r#"{"type":"gauge","name":"mem.alloc.core.seg","current":1,"peak":2}"#,
            "\n",
            r#"{"type":"speedup","workload":"W","strategy":"S","n_user":2,"loss":3}"#,
            "\n",
        ))
        .unwrap();
        assert_eq!(
            unregistered_metrics(&data, ossm_obs::REGISTRY),
            vec!["counter.made.up.name".to_owned()],
            "registered, wildcard, and speedup keys all pass"
        );
    }

    #[test]
    fn base_name_strips_type_prefixes_and_field_suffixes() {
        assert_eq!(
            base_name("counter.core.bound.evals"),
            Some("core.bound.evals")
        );
        assert_eq!(base_name("phase.core.build.nanos"), Some("core.build"));
        assert_eq!(base_name("phase.core.build.calls"), Some("core.build"));
        assert_eq!(
            base_name("histogram.mining.bound.slack.sum"),
            Some("mining.bound.slack")
        );
        assert_eq!(base_name("gauge.mem.rss.peak"), Some("mem.rss"));
        assert_eq!(base_name("speedup[W/S/n2].loss"), None);
    }

    #[test]
    fn timing_classifier_matches_the_naming_convention() {
        assert!(is_timing("phase.core.build.segment.nanos"));
        assert!(is_timing("speedup[Regular/Greedy/n6].mining_nanos"));
        assert!(is_timing("histogram.req.insert.latency.sum"));
        assert!(!is_timing("phase.core.build.segment.calls"));
        assert!(!is_timing("counter.core.bound.evals"));
    }

    #[test]
    fn rate_and_quantile_classifier_matches_derived_rows() {
        assert!(is_rate_or_quantile("counter.live.ingest.batches.per_sec"));
        assert!(is_rate_or_quantile("histogram.req.ub.latency.p50"));
        assert!(is_rate_or_quantile("histogram.req.ub.latency.p95"));
        assert!(is_rate_or_quantile("histogram.req.ub.latency.p99"));
        assert!(!is_rate_or_quantile("histogram.req.ub.latency.count"));
        assert!(!is_rate_or_quantile("counter.core.bound.evals"));
    }

    #[test]
    fn serving_classifier_matches_live_and_req_families() {
        assert!(is_serving("counter.live.ingest.batches"));
        assert!(is_serving("counter.live.http.requests"));
        assert!(is_serving("histogram.req.insert.latency.count"));
        assert!(is_serving("histogram.req.ub.latency.sum"));
        assert!(!is_serving("counter.core.bound.evals"));
        assert!(!is_serving("gauge.mem.core.ossm.peak"));
    }

    #[test]
    fn histogram_quantile_fields_flatten_and_strip() {
        let d = parse_obs_lines(concat!(
            r#"{"type":"histogram","name":"req.ub.latency","count":10,"sum":5000,"p50":400,"p95":900,"p99":1000,"buckets":[[256,10]]}"#,
            "\n",
        ))
        .unwrap();
        assert_eq!(d.metrics.get("histogram.req.ub.latency.p50"), Some(&400.0));
        assert_eq!(d.metrics.get("histogram.req.ub.latency.p99"), Some(&1000.0));
        assert_eq!(
            base_name("histogram.req.ub.latency.p95"),
            Some("req.ub.latency")
        );
    }

    #[test]
    fn serving_and_quantile_rows_report_but_never_gate_or_go_missing() {
        let live = concat!(
            r#"{"type":"counter","name":"live.ingest.batches","value":100}"#,
            "\n",
            r#"{"type":"histogram","name":"req.ub.latency","count":800,"sum":640000,"p50":700,"p95":1700,"p99":2000,"buckets":[[512,800]]}"#,
            "\n",
            r#"{"type":"counter","name":"core.bound.evals","value":128}"#,
            "\n",
        );
        let base = parse_obs_lines(live).unwrap();
        // A 5x swing in serving volume and quantiles is wall-clock noise.
        let noisy = parse_obs_lines(
            &live
                .replace(r#""value":100"#, r#""value":500"#)
                .replace(
                    r#""count":800,"sum":640000"#,
                    r#""count":4000,"sum":3200000"#,
                )
                .replace(r#""p50":700"#, r#""p50":3500"#),
        )
        .unwrap();
        assert!(
            !compare(&base, &noisy, &Thresholds::default()).failed(),
            "serving drift must not gate"
        );
        // A batch run records no serving rows at all: missing-exempt.
        let batch =
            parse_obs_lines(r#"{"type":"counter","name":"core.bound.evals","value":128}"#).unwrap();
        let report = compare(&base, &batch, &Thresholds::default());
        assert!(!report.failed(), "serving rows are missing-exempt");
        assert!(report.missing.is_empty(), "{:?}", report.missing);
        // The deterministic counter alongside still gates normally.
        let drifted = parse_obs_lines(&live.replace(r#""value":128"#, r#""value":300"#)).unwrap();
        assert!(compare(&base, &drifted, &Thresholds::default()).failed());
    }
}
