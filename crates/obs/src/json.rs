//! Minimal JSON parser.
//!
//! This build environment has no crates.io access, so `ossm-obs` renders
//! JSON by hand (see `report.rs`) and — with this module — parses it back
//! for the trace-exporter golden tests, the `ossm-bench` regression gate,
//! and `ossm obs diff`. It is a plain recursive-descent parser over the
//! full JSON grammar; numbers are held as `f64`, which is exact for the
//! integer counters and row fields the tooling reads (all < 2^53).
//!
//! Compiled in both feature configurations: parsing snapshots is useful
//! even in builds whose own instrumentation is compiled out.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as `f64`.
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order (keys may repeat; lookups take the first).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value of a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The members of an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Deepest permitted container nesting. The parser is recursive-descent,
/// so unbounded nesting in a hostile document would overflow the stack;
/// everything this workspace emits nests a handful of levels.
const MAX_DEPTH: usize = 512;

/// Parses one complete JSON document. Trailing garbage is an error, as is
/// container nesting deeper than [`MAX_DEPTH`].
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    /// Bumps the container depth; an `Err` aborts the whole parse, so the
    /// counter never needs unwinding on failure paths.
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // renderers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte-level continuation handling is safe).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Number(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"rows":[{"n":1},{"n":2}],"ok":true}"#).unwrap();
        let rows = v.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("n").and_then(Json::as_f64), Some(2.0));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn handles_unicode_passthrough() {
        let v = parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"x",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn whitespace_is_insignificant() {
        let v = parse(" {\n\t\"a\" :\r [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[_]>::len), Some(2));
    }

    #[test]
    fn deep_nesting_is_capped_not_a_stack_overflow() {
        // Just inside the cap parses fine…
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        // …one level past it is a clean error, for arrays and objects both.
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&over).unwrap_err().contains("nesting"));
        let objs = format!(
            "{}1{}",
            "{\"k\":".repeat(MAX_DEPTH + 1),
            "}".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&objs).unwrap_err().contains("nesting"));
        // A wide-but-shallow document is unaffected by the cap.
        let wide = format!("[{}1]", "1,".repeat(10_000));
        assert_eq!(
            parse(&wide).unwrap().as_array().map(<[_]>::len),
            Some(10_001)
        );
    }

    #[test]
    fn escape_sequences_cover_the_full_set() {
        let v = parse(r#""\"\\\/\b\f\n\r\tAé""#).unwrap();
        assert_eq!(v.as_str(), Some("\"\\/\u{8}\u{c}\n\r\tAé"));
        // Lone surrogates map to U+FFFD rather than failing the document.
        assert_eq!(parse(r#""\ud800""#).unwrap().as_str(), Some("\u{fffd}"));
        // Bad or truncated escapes are errors.
        assert!(parse(r#""\q""#).is_err());
        assert!(parse(r#""\u00""#).is_err());
        assert!(parse(r#""\u00zz""#).is_err());
        assert!(parse(r#""\"#).is_err());
    }

    #[test]
    fn huge_numbers_saturate_like_f64() {
        // Counters are < 2^53 and exact; anything bigger degrades the way
        // f64 does — documented, not hidden.
        assert_eq!(
            parse("9007199254740992").unwrap().as_f64(),
            Some(2f64.powi(53))
        );
        assert_eq!(parse("1e308").unwrap().as_f64(), Some(1e308));
        assert_eq!(parse("1e309").unwrap().as_f64(), Some(f64::INFINITY));
        assert_eq!(parse("-1e309").unwrap().as_f64(), Some(f64::NEG_INFINITY));
        assert_eq!(parse("1e-400").unwrap().as_f64(), Some(0.0));
        // A long digit string still parses (rounded to nearest f64).
        let long = "9".repeat(400);
        assert_eq!(parse(&long).unwrap().as_f64(), Some(f64::INFINITY));
    }

    #[test]
    fn trailing_garbage_is_rejected_everywhere() {
        for bad in [
            "{} {}",
            "[1] 2",
            "null true",
            "\"a\"\"b\"",
            "1,",
            "{\"a\":1}x",
            "[1]]",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(
                err.contains("trailing") || err.contains("unexpected"),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn roundtrips_reporter_output() {
        // The hand-rolled renderer in report.rs and this parser must agree.
        let line = r#"{"type":"counter","name":"core.bound.evals","value":128}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("counter"));
        assert_eq!(v.get("value").and_then(Json::as_f64), Some(128.0));
    }
}
