//! Frequency-counting back-ends and the shared result type.
//!
//! Counting candidate supports against the transaction collection is "one
//! of the key operations in data mining algorithms" — the operation the
//! OSSM exists to reduce. Two back-ends are provided:
//!
//! * [`count_linear`] — for each transaction, test every candidate by a
//!   sorted-subset merge. Simple and exactly proportional to the number of
//!   candidates, which makes the OSSM's candidate reduction visible in
//!   wall-clock time the way the paper's C implementation showed it.
//! * the hash tree of [`crate::hashtree`] — the classical Apriori counting
//!   structure, exposed through the same interface.
//!
//! [`FrequentPatterns`] is the result type shared by all miners, so the
//! cross-miner agreement tests can compare outputs structurally.

use std::collections::BTreeMap;

use ossm_data::Itemset;

/// Minimum transactions per parallel counting chunk: below this the merge
/// overhead exceeds the counting work, so the scan stays on one thread.
pub(crate) const MIN_TX_CHUNK: usize = 256;

/// Bytes of candidate itemsets resident in the current counting level —
/// the memory half of the speed-vs-space tradeoff among the back-ends,
/// which the paper's counting-cost model ignores.
static MEM_CANDIDATES: ossm_obs::Gauge = ossm_obs::Gauge::new("mem.mining.candidates");

/// Cost model for a candidate list: per-itemset struct overhead plus
/// 4 bytes per item id. Deterministic for a given list, independent of
/// allocator or thread count.
pub(crate) fn candidate_bytes(candidates: &[Itemset]) -> u64 {
    candidates
        .iter()
        .map(|c| (std::mem::size_of::<Itemset>() + 4 * c.len()) as u64)
        .sum()
}

/// Which counting back-end a level-wise miner uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CountingBackend {
    /// Per-transaction linear scan over the candidate list.
    #[default]
    LinearScan,
    /// The classical Apriori hash tree.
    HashTree,
    /// Packed per-item transaction bitmaps, AND + popcount per candidate.
    Bitmap,
}

impl std::str::FromStr for CountingBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "linear" => Ok(CountingBackend::LinearScan),
            "hashtree" => Ok(CountingBackend::HashTree),
            "bitmap" => Ok(CountingBackend::Bitmap),
            other => Err(format!(
                "unknown counting backend {other:?} (expected linear, hashtree, or bitmap)"
            )),
        }
    }
}

/// Counts the support of each candidate by a linear scan.
///
/// All candidates are typically of equal size `k`, but this back-end does
/// not require it. Transactions are chunked across worker threads; the
/// per-chunk count vectors merge by element-wise sum, which is associative,
/// so the result is identical at any thread count.
pub fn count_linear(transactions: &[Itemset], candidates: &[Itemset]) -> Vec<u64> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let partials = ossm_par::map_chunks(transactions.len(), MIN_TX_CHUNK, |r| {
        count_linear_range(&transactions[r], candidates)
    });
    if partials.is_empty() {
        return vec![0u64; candidates.len()];
    }
    ossm_par::sum_counts(partials)
}

/// The serial linear scan over one transaction chunk.
fn count_linear_range(transactions: &[Itemset], candidates: &[Itemset]) -> Vec<u64> {
    let mut counts = vec![0u64; candidates.len()];
    for t in transactions {
        for (i, c) in candidates.iter().enumerate() {
            if c.is_subset_of(t) {
                counts[i] += 1;
            }
        }
    }
    counts
}

/// Counts candidate supports with the configured back-end.
pub fn count_with(
    backend: CountingBackend,
    transactions: &[Itemset],
    candidates: &[Itemset],
) -> Vec<u64> {
    MEM_CANDIDATES.set(candidate_bytes(candidates));
    match backend {
        CountingBackend::LinearScan => {
            let _mem = ossm_obs::alloc_scope("mining.candidates");
            count_linear(transactions, candidates)
        }
        CountingBackend::HashTree => {
            let _mem = ossm_obs::alloc_scope("mining.hashtree");
            crate::hashtree::count_hash_tree(transactions, candidates)
        }
        CountingBackend::Bitmap => {
            let _mem = ossm_obs::alloc_scope("mining.bitmap");
            crate::bitmap::count_bitmap(transactions, candidates)
        }
    }
}

/// All frequent patterns of a mining run, with their exact supports.
///
/// Ordered map so iteration, equality, and debugging output are
/// deterministic across miners.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrequentPatterns {
    patterns: BTreeMap<Itemset, u64>,
}

impl FrequentPatterns {
    /// An empty result.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a frequent pattern with its support.
    ///
    /// # Panics
    /// Panics if the pattern was already recorded with a different support
    /// (two code paths disagreeing on a support is always a bug).
    pub fn insert(&mut self, pattern: Itemset, support: u64) {
        if let Some(&prev) = self.patterns.get(&pattern) {
            assert_eq!(prev, support, "conflicting supports recorded for {pattern}");
        }
        self.patterns.insert(pattern, support);
    }

    /// Number of frequent patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether no pattern is frequent.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The support of `pattern`, if frequent.
    pub fn support_of(&self, pattern: &Itemset) -> Option<u64> {
        self.patterns.get(pattern).copied()
    }

    /// Whether `pattern` is among the frequent patterns.
    pub fn contains(&self, pattern: &Itemset) -> bool {
        self.patterns.contains_key(pattern)
    }

    /// Iterates `(pattern, support)` in itemset order.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, u64)> {
        self.patterns.iter().map(|(p, &s)| (p, s))
    }

    /// The frequent patterns of size `k`.
    pub fn of_len(&self, k: usize) -> Vec<&Itemset> {
        self.patterns.keys().filter(|p| p.len() == k).collect()
    }

    /// The size of the longest frequent pattern (0 if none).
    pub fn max_len(&self) -> usize {
        self.patterns.keys().map(Itemset::len).max().unwrap_or(0)
    }

    /// Checks the downward-closure invariant: every non-empty proper subset
    /// of a frequent pattern is frequent with support ≥ the superset's.
    /// Returns the first violating (subset, superset) pair, if any.
    pub fn closure_violation(&self) -> Option<(Itemset, Itemset)> {
        for (p, &sup) in &self.patterns {
            if p.len() < 2 {
                continue;
            }
            for sub in p.proper_subsets() {
                match self.patterns.get(&sub) {
                    Some(&sub_sup) if sub_sup >= sup => {}
                    _ => return Some((sub, p.clone())),
                }
            }
        }
        None
    }
}

impl FromIterator<(Itemset, u64)> for FrequentPatterns {
    fn from_iter<I: IntoIterator<Item = (Itemset, u64)>>(iter: I) -> Self {
        let mut out = FrequentPatterns::new();
        for (p, s) in iter {
            out.insert(p, s);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn count_linear_matches_manual_counts() {
        let txs = vec![set(&[0, 1, 2]), set(&[0, 2]), set(&[1]), set(&[0, 1])];
        let cands = vec![set(&[0]), set(&[0, 1]), set(&[0, 1, 2]), set(&[3])];
        assert_eq!(count_linear(&txs, &cands), vec![3, 2, 1, 0]);
        assert_eq!(count_linear(&[], &cands), vec![0, 0, 0, 0]);
        assert_eq!(count_linear(&txs, &[]), Vec::<u64>::new());
    }

    #[test]
    fn frequent_patterns_basic_ops() {
        let mut fp = FrequentPatterns::new();
        fp.insert(set(&[1]), 5);
        fp.insert(set(&[2]), 4);
        fp.insert(set(&[1, 2]), 3);
        assert_eq!(fp.len(), 3);
        assert_eq!(fp.support_of(&set(&[1, 2])), Some(3));
        assert_eq!(fp.support_of(&set(&[9])), None);
        assert_eq!(fp.max_len(), 2);
        assert_eq!(fp.of_len(1).len(), 2);
        assert!(fp.closure_violation().is_none());
    }

    #[test]
    fn closure_violation_detects_missing_subset() {
        let mut fp = FrequentPatterns::new();
        fp.insert(set(&[1, 2]), 3);
        let (sub, sup) = fp.closure_violation().expect("subset {1} missing");
        assert_eq!(sup, set(&[1, 2]));
        assert!(sub == set(&[1]) || sub == set(&[2]));
    }

    #[test]
    fn closure_violation_detects_support_inversion() {
        let mut fp = FrequentPatterns::new();
        fp.insert(set(&[1]), 2);
        fp.insert(set(&[2]), 5);
        fp.insert(set(&[1, 2]), 3); // support exceeds subset {1}'s
        assert!(fp.closure_violation().is_some());
    }

    #[test]
    #[should_panic(expected = "conflicting supports")]
    fn insert_rejects_conflicting_support() {
        let mut fp = FrequentPatterns::new();
        fp.insert(set(&[1]), 5);
        fp.insert(set(&[1]), 6);
    }

    #[test]
    fn iteration_is_ordered() {
        let fp: FrequentPatterns = [(set(&[2]), 1), (set(&[0]), 2), (set(&[0, 2]), 1)]
            .into_iter()
            .collect();
        let keys: Vec<&Itemset> = fp.iter().map(|(p, _)| p).collect();
        assert_eq!(keys, vec![&set(&[0]), &set(&[0, 2]), &set(&[2])]);
    }
}
