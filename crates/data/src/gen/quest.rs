//! IBM Quest-style synthetic transaction generator.
//!
//! The paper's "regular-synthetic" data set is produced by "the program
//! developed at IBM Almaden Research Center" [3] — the Agrawal–Srikant
//! generator behind the classic `T10.I4.D100K`-style workloads. That binary
//! is not redistributable, so we reimplement the published process:
//!
//! 1. Draw `num_patterns` *potentially large itemsets*. Their sizes are
//!    Poisson-distributed around `avg_pattern_len`; each pattern reuses an
//!    exponentially-distributed fraction of the previous pattern's items
//!    (cross-pattern correlation) and fills the rest uniformly.
//! 2. Each pattern gets a weight drawn from an exponential distribution
//!    (normalized), and a *corruption level* drawn from N(0.5, 0.1): when a
//!    pattern is inserted into a transaction, items are dropped with that
//!    probability, modelling partial purchases.
//! 3. Each transaction draws a Poisson size around `avg_transaction_len`
//!    and is filled with weighted-random (possibly corrupted) patterns; an
//!    overflowing pattern is kept anyway in half the cases and deferred to
//!    the next transaction otherwise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::dist::{exponential, normal, poisson, CumulativeTable};
use crate::item::Itemset;
use crate::transaction::Dataset;

/// Parameters of the Quest-style generator, with the defaults the paper's
/// experiments imply (`m = 1000` items; `T10.I4`-style basket shape).
#[derive(Clone, Debug)]
pub struct QuestConfig {
    /// Number of transactions to generate (`D`).
    pub num_transactions: usize,
    /// Size of the item domain (`N` in Quest notation, `m` in the paper).
    pub num_items: usize,
    /// Average transaction length (`|T|`), e.g. 10.
    pub avg_transaction_len: f64,
    /// Average potentially-large-itemset length (`|I|`), e.g. 4.
    pub avg_pattern_len: f64,
    /// Number of potentially large itemsets (`|L|`), e.g. 2000.
    pub num_patterns: usize,
    /// Mean fraction of a pattern inherited from its predecessor.
    pub correlation: f64,
    /// Mean of the per-pattern corruption level.
    pub corruption_mean: f64,
    /// Standard deviation of the per-pattern corruption level.
    pub corruption_sd: f64,
    /// RNG seed; the same seed always yields the same dataset.
    pub seed: u64,
}

impl Default for QuestConfig {
    fn default() -> Self {
        QuestConfig {
            num_transactions: 10_000,
            num_items: 1000,
            avg_transaction_len: 10.0,
            avg_pattern_len: 4.0,
            num_patterns: 2000,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_sd: 0.1,
            seed: 0x0551_2002,
        }
    }
}

impl QuestConfig {
    /// A small configuration for unit tests and examples (fast to generate).
    pub fn small() -> Self {
        QuestConfig {
            num_transactions: 1000,
            num_items: 100,
            num_patterns: 200,
            ..QuestConfig::default()
        }
    }

    /// Generates the dataset described by this configuration.
    pub fn generate(&self) -> Dataset {
        generate(self)
    }
}

/// A potentially large itemset with its sampling weight and corruption level.
struct Pattern {
    items: Vec<u32>,
    corruption: f64,
}

fn draw_patterns(cfg: &QuestConfig, rng: &mut StdRng) -> (Vec<Pattern>, Vec<f64>) {
    let mut patterns: Vec<Pattern> = Vec::with_capacity(cfg.num_patterns);
    let mut weights = Vec::with_capacity(cfg.num_patterns);
    for i in 0..cfg.num_patterns {
        // Size ≥ 1, Poisson around the configured mean.
        let len = poisson(rng, (cfg.avg_pattern_len - 1.0).max(0.0)) as usize + 1;
        let len = len.min(cfg.num_items);
        let mut items: Vec<u32> = Vec::with_capacity(len);
        if i > 0 {
            // Inherit an exponentially-distributed fraction from the
            // previous pattern (Quest's cross-pattern correlation).
            let prev = &patterns[i - 1].items;
            let frac = exponential(rng, cfg.correlation).min(1.0);
            let inherit = ((prev.len() as f64) * frac).round() as usize;
            let inherit = inherit.min(prev.len()).min(len);
            // Take a random prefix-free subset of the previous pattern.
            let mut pool = prev.clone();
            for k in 0..inherit {
                let j = rng.gen_range(k..pool.len());
                pool.swap(k, j);
            }
            items.extend_from_slice(&pool[..inherit]);
        }
        while items.len() < len {
            let candidate = rng.gen_range(0..cfg.num_items as u32);
            if !items.contains(&candidate) {
                items.push(candidate);
            }
        }
        let corruption = normal(rng, cfg.corruption_mean, cfg.corruption_sd).clamp(0.0, 1.0);
        patterns.push(Pattern { items, corruption });
        weights.push(exponential(rng, 1.0));
    }
    (patterns, weights)
}

/// Runs the generator. Prefer [`QuestConfig::generate`].
pub fn generate(cfg: &QuestConfig) -> Dataset {
    assert!(cfg.num_items > 0, "item domain must be non-empty");
    assert!(cfg.num_patterns > 0, "need at least one pattern");
    assert!(
        cfg.avg_transaction_len >= 1.0,
        "transactions must average at least one item"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (patterns, weights) = draw_patterns(cfg, &mut rng);
    let table = CumulativeTable::new(&weights);

    let mut transactions = Vec::with_capacity(cfg.num_transactions);
    // A pattern that overflowed the previous transaction and was deferred.
    let mut carry: Option<Vec<u32>> = None;
    while transactions.len() < cfg.num_transactions {
        let target = (poisson(&mut rng, cfg.avg_transaction_len - 1.0) + 1) as usize;
        let mut items: Vec<u32> = Vec::with_capacity(target + 4);
        if let Some(c) = carry.take() {
            items.extend(c);
        }
        while items.len() < target {
            let pat = &patterns[table.sample(&mut rng)];
            // Corrupt: drop items with the pattern's corruption probability.
            let mut picked: Vec<u32> = pat
                .items
                .iter()
                .copied()
                .filter(|_| rng.gen::<f64>() >= pat.corruption)
                .collect();
            if picked.is_empty() {
                // Ensure progress: keep one random item of the pattern.
                picked.push(pat.items[rng.gen_range(0..pat.items.len())]);
            }
            if items.len() + picked.len() > target && !items.is_empty() && rng.gen::<bool>() {
                // Overflow: defer the pattern to the next transaction half
                // the time, as in the published process.
                carry = Some(picked);
                break;
            }
            items.extend(picked);
        }
        transactions.push(Itemset::new(items));
    }
    Dataset::new(cfg.num_items, transactions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = QuestConfig {
            num_transactions: 200,
            ..QuestConfig::small()
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = QuestConfig { seed: 99, ..cfg };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn shape_matches_configuration() {
        let cfg = QuestConfig::small();
        let d = cfg.generate();
        assert_eq!(d.len(), cfg.num_transactions);
        assert_eq!(d.num_items(), cfg.num_items);
        let avg: f64 =
            d.transactions().iter().map(Itemset::len).sum::<usize>() as f64 / d.len() as f64;
        assert!(
            (avg - cfg.avg_transaction_len).abs() < 2.5,
            "average basket size {avg} far from configured {}",
            cfg.avg_transaction_len
        );
        assert!(d.transactions().iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn data_is_correlated_not_uniform() {
        // Quest data has "potentially large itemsets": some pairs co-occur
        // far more often than independence predicts. Check that the maximal
        // pair support exceeds the independence estimate by a wide margin.
        let d = QuestConfig {
            num_transactions: 2000,
            ..QuestConfig::small()
        }
        .generate();
        let singles = d.singleton_supports();
        let n = d.len() as f64;
        let mut best_ratio = 0.0f64;
        // Scan pairs among the 20 most frequent items only (enough to find
        // one pattern pair, cheap to run).
        let mut top: Vec<usize> = (0..d.num_items()).collect();
        top.sort_by_key(|&i| std::cmp::Reverse(singles[i]));
        top.truncate(20);
        for (ai, &a) in top.iter().enumerate() {
            for &b in &top[ai + 1..] {
                let pair = Itemset::new([a as u32, b as u32]);
                let obs = d.support(&pair) as f64 / n;
                let exp = (singles[a] as f64 / n) * (singles[b] as f64 / n);
                if exp > 0.0 {
                    best_ratio = best_ratio.max(obs / exp);
                }
            }
        }
        assert!(
            best_ratio > 2.0,
            "expected correlated pairs, best lift {best_ratio}"
        );
    }
}
