//! Disk-backed page storage with a buffer pool and I/O accounting.
//!
//! The paper's cost model is page-oriented: transactions live in 4 KB disk
//! pages, segmentation operates on per-page aggregates, and the reported
//! runtimes "include all CPU and I/O costs". This module provides the
//! matching substrate:
//!
//! * [`DiskStoreWriter`] packs a stream of transactions into fixed-size
//!   pages of a data file and appends a sparse per-page aggregate index,
//!   so a later segmentation pass can run **without touching the data
//!   pages at all** — exactly the "higher granularity level" premise of
//!   the page version of segment minimization (Section 4.3);
//! * [`DiskStore`] reads pages back through a small LRU [`BufferPool`],
//!   counting physical page reads and pool hits, which lets experiments
//!   report I/O work the way the paper's time-sharing measurements folded
//!   it into runtime.
//!
//! File layout (little-endian):
//!
//! ```text
//! header  : magic "OSSMPAGE", version u32, m u32, page_bytes u32,
//!           num_pages u64, index_offset u64
//! pages   : num_pages × page_bytes, each: num_tx u32,
//!           then per transaction: len u32, len × item u32; zero padding
//! index   : per page: num_tx u32, num_entries u32,
//!           then num_entries × (item u32, count u32)
//! ```

use std::collections::HashMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::item::{ItemId, Itemset};
use crate::page::transaction_bytes;

/// Physical page reads (buffer-pool misses), all [`DiskStore`]s combined.
static PAGE_READS: ossm_obs::Counter = ossm_obs::Counter::new("data.disk.page_reads");
/// Page requests served by a buffer pool, all [`DiskStore`]s combined.
static POOL_HITS: ossm_obs::Counter = ossm_obs::Counter::new("data.disk.pool_hits");

const MAGIC: &[u8; 8] = b"OSSMPAGE";
const VERSION: u32 = 1;
const HEADER_BYTES: u64 = 8 + 4 + 4 + 4 + 8 + 8;

/// Sparse per-page aggregate: transaction count plus (item, support) pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageSummary {
    /// Number of transactions on the page.
    pub transactions: u32,
    /// `(item, support-on-page)` pairs, ascending by item.
    pub supports: Vec<(u32, u32)>,
}

impl PageSummary {
    /// Densifies into a full support vector over `m` items.
    pub fn dense(&self, m: usize) -> Vec<u64> {
        let mut v = vec![0u64; m];
        for &(item, count) in &self.supports {
            v[item as usize] = u64::from(count);
        }
        v
    }
}

/// Writes transactions into a paged data file.
pub struct DiskStoreWriter {
    file: io::BufWriter<std::fs::File>,
    m: u32,
    page_bytes: u32,
    /// Current page under construction.
    current: Vec<Itemset>,
    current_bytes: usize,
    summaries: Vec<PageSummary>,
}

impl DiskStoreWriter {
    /// Creates the file at `path` for a domain of `m` items and the given
    /// page size (4096 matches the paper).
    ///
    /// # Panics
    /// Panics if `page_bytes` cannot hold even an empty transaction.
    pub fn create(path: &Path, m: usize, page_bytes: usize) -> io::Result<Self> {
        assert!(
            page_bytes >= 16,
            "page size too small to hold any transaction"
        );
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        // Header placeholder; finalize() rewrites it with real counts.
        file.write_all(&[0u8; HEADER_BYTES as usize])?;
        Ok(DiskStoreWriter {
            file,
            m: m as u32,
            page_bytes: page_bytes as u32,
            current: Vec::new(),
            current_bytes: 4, // num_tx header
            summaries: Vec::new(),
        })
    }

    /// Appends one transaction, starting a new page when the current page
    /// is full. A transaction larger than a page gets a page of its own.
    ///
    /// # Panics
    /// Panics if the transaction references items outside the domain.
    pub fn append(&mut self, t: &Itemset) -> io::Result<()> {
        if let Some(max) = t.items().last() {
            assert!((max.0) < self.m, "item {max} outside domain 0..{}", self.m);
        }
        let cost = transaction_bytes(t);
        if !self.current.is_empty() && self.current_bytes + cost > self.page_bytes as usize {
            self.flush_page()?;
        }
        self.current_bytes += cost;
        self.current.push(t.clone());
        Ok(())
    }

    fn flush_page(&mut self) -> io::Result<()> {
        let mut buf = Vec::with_capacity(self.page_bytes as usize);
        buf.extend_from_slice(&(self.current.len() as u32).to_le_bytes());
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for t in &self.current {
            buf.extend_from_slice(&(t.len() as u32).to_le_bytes());
            for item in t.items() {
                buf.extend_from_slice(&item.0.to_le_bytes());
                *counts.entry(item.0).or_insert(0) += 1;
            }
        }
        // An oversized single transaction stretches its page; regular pages
        // are padded to the fixed size so offsets stay computable. Oversize
        // pages are rejected instead (callers pick page_bytes ≥ max tx).
        assert!(
            buf.len() <= self.page_bytes as usize,
            "transaction of {} bytes exceeds the {}-byte page",
            buf.len(),
            self.page_bytes
        );
        buf.resize(self.page_bytes as usize, 0);
        self.file.write_all(&buf)?;
        let mut supports: Vec<(u32, u32)> = counts.into_iter().collect();
        supports.sort_unstable();
        self.summaries.push(PageSummary {
            transactions: self.current.len() as u32,
            supports,
        });
        self.current.clear();
        self.current_bytes = 4;
        Ok(())
    }

    /// Flushes the final page, writes the aggregate index and the real
    /// header, and closes the file.
    pub fn finalize(mut self) -> io::Result<()> {
        if !self.current.is_empty() {
            self.flush_page()?;
        }
        let num_pages = self.summaries.len() as u64;
        let index_offset = HEADER_BYTES + num_pages * u64::from(self.page_bytes);
        for s in &self.summaries {
            self.file.write_all(&s.transactions.to_le_bytes())?;
            self.file
                .write_all(&(s.supports.len() as u32).to_le_bytes())?;
            for &(item, count) in &s.supports {
                self.file.write_all(&item.to_le_bytes())?;
                self.file.write_all(&count.to_le_bytes())?;
            }
        }
        let mut file = self.file.into_inner()?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        file.write_all(&self.m.to_le_bytes())?;
        file.write_all(&self.page_bytes.to_le_bytes())?;
        file.write_all(&num_pages.to_le_bytes())?;
        file.write_all(&index_offset.to_le_bytes())?;
        file.sync_all()
    }
}

/// Physical-I/O counters of a [`DiskStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages fetched from disk (buffer-pool misses).
    pub page_reads: u64,
    /// Page requests satisfied by the buffer pool.
    pub pool_hits: u64,
}

/// A fixed-capacity LRU buffer pool of decoded pages.
struct BufferPool {
    capacity: usize,
    /// page id → (decoded transactions, LRU stamp).
    frames: HashMap<u64, (Vec<Itemset>, u64)>,
    clock: u64,
    stats: IoStats,
}

impl BufferPool {
    fn new(capacity: usize) -> Self {
        BufferPool {
            capacity: capacity.max(1),
            frames: HashMap::new(),
            clock: 0,
            stats: IoStats::default(),
        }
    }

    fn get_or_load(
        &mut self,
        page: u64,
        load: impl FnOnce() -> io::Result<Vec<Itemset>>,
    ) -> io::Result<&[Itemset]> {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.frames.get_mut(&page) {
            entry.1 = clock;
            self.stats.pool_hits += 1;
            POOL_HITS.incr();
        } else {
            self.stats.page_reads += 1;
            PAGE_READS.incr();
            let decoded = load()?;
            if self.frames.len() >= self.capacity {
                // Evict the least-recently used frame.
                let victim = *self
                    .frames
                    .iter()
                    .min_by_key(|(_, (_, stamp))| *stamp)
                    .map(|(k, _)| k)
                    .expect("pool is non-empty");
                self.frames.remove(&victim);
            }
            self.frames.insert(page, (decoded, clock));
        }
        Ok(self
            .frames
            .get(&page)
            .map(|(txs, _)| txs.as_slice())
            .expect("just inserted"))
    }
}

/// A read handle on a paged data file.
pub struct DiskStore {
    file: std::fs::File,
    m: usize,
    page_bytes: u32,
    summaries: Vec<PageSummary>,
    pool: BufferPool,
}

impl DiskStore {
    /// Opens a store written by [`DiskStoreWriter`], with a buffer pool of
    /// `pool_pages` frames.
    pub fn open(path: &Path, pool_pages: usize) -> io::Result<Self> {
        let mut file = std::fs::File::open(path)?;
        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(bad("not an OSSM page file"));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("fixed size"));
        if version != VERSION {
            return Err(bad(format!("unsupported page-file version {version}")));
        }
        let m = u32::from_le_bytes(header[12..16].try_into().expect("fixed size")) as usize;
        let page_bytes = u32::from_le_bytes(header[16..20].try_into().expect("fixed size"));
        let num_pages = u64::from_le_bytes(header[20..28].try_into().expect("fixed size"));
        let index_offset = u64::from_le_bytes(header[28..36].try_into().expect("fixed size"));
        // Load the aggregate index (summaries only — no data pages).
        file.seek(SeekFrom::Start(index_offset))?;
        let mut reader = io::BufReader::new(&mut file);
        let mut summaries = Vec::with_capacity(num_pages.min(1 << 20) as usize);
        for _ in 0..num_pages {
            let transactions = read_u32(&mut reader)?;
            let entries = read_u32(&mut reader)? as usize;
            let mut supports = Vec::with_capacity(entries);
            for _ in 0..entries {
                let item = read_u32(&mut reader)?;
                let count = read_u32(&mut reader)?;
                if item as usize >= m {
                    return Err(bad(format!("index references item {item} outside 0..{m}")));
                }
                supports.push((item, count));
            }
            summaries.push(PageSummary {
                transactions,
                supports,
            });
        }
        Ok(DiskStore {
            file,
            m,
            page_bytes,
            summaries,
            pool: BufferPool::new(pool_pages),
        })
    }

    /// Size of the item domain.
    pub fn num_items(&self) -> usize {
        self.m
    }

    /// Number of pages.
    pub fn num_pages(&self) -> usize {
        self.summaries.len()
    }

    /// Total transactions across all pages (from the index).
    pub fn num_transactions(&self) -> u64 {
        self.summaries
            .iter()
            .map(|s| u64::from(s.transactions))
            .sum()
    }

    /// The per-page aggregate index — everything segmentation needs,
    /// loaded without a single data-page read.
    pub fn summaries(&self) -> &[PageSummary] {
        &self.summaries
    }

    /// Dense per-page aggregates for the segmentation algorithms.
    pub fn page_aggregate_vectors(&self) -> Vec<(Vec<u64>, u64)> {
        self.summaries
            .iter()
            .map(|s| (s.dense(self.m), u64::from(s.transactions)))
            .collect()
    }

    /// Physical-I/O counters so far.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats
    }

    /// Reads page `p` through the buffer pool.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    pub fn read_page(&mut self, p: usize) -> io::Result<Vec<Itemset>> {
        assert!(p < self.summaries.len(), "page {p} out of range");
        let offset = HEADER_BYTES + p as u64 * u64::from(self.page_bytes);
        let page_bytes = self.page_bytes as usize;
        let m = self.m;
        let file = &mut self.file;
        let txs = self.pool.get_or_load(p as u64, || {
            let mut span = ossm_obs::detail_span("data.disk.read_page");
            span.attach("page", p as u64);
            let mut buf = vec![0u8; page_bytes];
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf)?;
            decode_page(&buf, m)
        })?;
        Ok(txs.to_vec())
    }

    /// Streams every transaction through `visit`, page by page. Returns
    /// the number of pages read for the pass.
    pub fn scan(&mut self, mut visit: impl FnMut(&Itemset)) -> io::Result<u64> {
        let mut scan_span = ossm_obs::span("data.disk.scan");
        scan_span.watch(&PAGE_READS);
        scan_span.watch(&POOL_HITS);
        let pages = self.num_pages();
        for p in 0..pages {
            for t in self.read_page(p)? {
                visit(&t);
            }
        }
        Ok(pages as u64)
    }

    /// Materializes the whole store as an in-memory [`crate::Dataset`].
    pub fn to_dataset(&mut self) -> io::Result<crate::Dataset> {
        let mut transactions = Vec::with_capacity(self.num_transactions() as usize);
        self.scan(|t| transactions.push(t.clone()))?;
        Ok(crate::Dataset::new(self.m, transactions))
    }
}

fn decode_page(buf: &[u8], m: usize) -> io::Result<Vec<Itemset>> {
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> io::Result<u32> {
        let end = *pos + 4;
        if end > buf.len() {
            return Err(bad("page truncated"));
        }
        let v = u32::from_le_bytes(buf[*pos..end].try_into().expect("fixed size"));
        *pos = end;
        Ok(v)
    };
    let n = take_u32(&mut pos)?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let len = take_u32(&mut pos)? as usize;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            let id = take_u32(&mut pos)?;
            if id as usize >= m {
                return Err(bad(format!("page references item {id} outside 0..{m}")));
            }
            items.push(ItemId(id));
        }
        out.push(Itemset::from_sorted(items));
    }
    Ok(out)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes an entire dataset to a paged file (convenience wrapper).
pub fn write_paged(path: &Path, dataset: &crate::Dataset, page_bytes: usize) -> io::Result<()> {
    let mut w = DiskStoreWriter::create(path, dataset.num_items(), page_bytes)?;
    for t in dataset.transactions() {
        w.append(t)?;
    }
    w.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::QuestConfig;
    use crate::page::PageStore;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ossm-disk-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample_dataset() -> crate::Dataset {
        QuestConfig {
            num_transactions: 500,
            num_items: 50,
            ..QuestConfig::small()
        }
        .generate()
    }

    #[test]
    fn roundtrip_preserves_every_transaction() {
        let d = sample_dataset();
        let path = tmp("roundtrip.pages");
        write_paged(&path, &d, 4096).expect("write");
        let mut store = DiskStore::open(&path, 4).expect("open");
        assert_eq!(store.num_items(), 50);
        assert_eq!(store.num_transactions(), 500);
        assert_eq!(store.to_dataset().expect("read"), d);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn index_matches_in_memory_page_aggregates() {
        let d = sample_dataset();
        let path = tmp("index.pages");
        write_paged(&path, &d, 1024).expect("write");
        let store = DiskStore::open(&path, 2).expect("open");
        // The same packing in memory must agree page by page.
        let mem = PageStore::pack(d, 1024);
        assert_eq!(store.num_pages(), mem.num_pages());
        for (summary, page) in store.summaries().iter().zip(mem.pages()) {
            assert_eq!(summary.transactions as usize, page.len());
            assert_eq!(summary.dense(50), page.supports());
        }
        // Reading the index costs zero data-page I/O.
        assert_eq!(store.io_stats(), IoStats::default());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn buffer_pool_counts_hits_and_misses() {
        let d = sample_dataset();
        let path = tmp("pool.pages");
        write_paged(&path, &d, 1024).expect("write");
        let mut store = DiskStore::open(&path, 2).expect("open");
        store.read_page(0).expect("read");
        store.read_page(0).expect("read");
        assert_eq!(
            store.io_stats(),
            IoStats {
                page_reads: 1,
                pool_hits: 1
            }
        );
        // Touch enough pages to evict page 0 (capacity 2).
        store.read_page(1).expect("read");
        store.read_page(2).expect("read");
        store.read_page(0).expect("read");
        assert_eq!(
            store.io_stats().page_reads,
            4,
            "page 0 was evicted and re-read"
        );
    }

    #[test]
    fn full_scans_cost_one_read_per_page_when_pool_is_small() {
        let d = sample_dataset();
        let path = tmp("scan.pages");
        write_paged(&path, &d, 1024).expect("write");
        let mut store = DiskStore::open(&path, 1).expect("open");
        let p = store.num_pages() as u64;
        let mut seen = 0u64;
        store.scan(|_| seen += 1).expect("scan");
        store.scan(|_| ()).expect("scan");
        assert_eq!(seen, 500);
        assert_eq!(
            store.io_stats().page_reads,
            2 * p,
            "tiny pool → every pass hits disk"
        );
        // A pool bigger than the file caches the second pass entirely.
        let mut cached = DiskStore::open(&path, p as usize + 1).expect("open");
        cached.scan(|_| ()).expect("scan");
        cached.scan(|_| ()).expect("scan");
        assert_eq!(cached.io_stats().page_reads, p);
        assert_eq!(cached.io_stats().pool_hits, p);
    }

    #[test]
    fn rejects_corrupt_files() {
        let path = tmp("corrupt.pages");
        std::fs::write(&path, b"garbage that is long enough to be a header maybe").expect("write");
        assert!(DiskStore::open(&path, 1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversized_transaction_is_rejected() {
        let path = tmp("oversize.pages");
        let mut w = DiskStoreWriter::create(&path, 100, 16).expect("create");
        let t = Itemset::new(0..50u32);
        let _ = w.append(&t);
        let _ = w.finalize(); // the flush panics
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let path = tmp("empty.pages");
        write_paged(&path, &crate::Dataset::empty(10), 4096).expect("write");
        let mut store = DiskStore::open(&path, 1).expect("open");
        assert_eq!(store.num_pages(), 0);
        assert_eq!(store.to_dataset().expect("read"), crate::Dataset::empty(10));
        std::fs::remove_file(&path).ok();
    }
}
