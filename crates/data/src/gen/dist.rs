//! Small sampling helpers on top of `rand`'s uniform primitives.
//!
//! The IBM Quest generation process needs Poisson, exponential, and normal
//! variates. We implement the three classical textbook samplers here rather
//! than pulling in a distributions crate; the means involved are small
//! (average basket size ≈ 10), where Knuth's Poisson method is both exact
//! and fast.

use rand::Rng;

/// Poisson sample by Knuth's method. Suitable for small means (O(mean) time).
///
/// # Panics
/// Panics if `mean` is negative or not finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean >= 0.0,
        "poisson mean must be finite and non-negative"
    );
    if mean == 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// Exponential sample with the given mean, by inversion.
///
/// # Panics
/// Panics if `mean` is not positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "exponential mean must be positive"
    );
    // 1 - gen::<f64>() is in (0, 1], so ln() is finite.
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

/// Normal sample by the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

/// Samples an index in `0..weights.len()` proportionally to `weights`.
///
/// # Panics
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must sum to a positive finite value"
    );
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1 // floating-point slack: fall back to the last index
}

/// A cumulative-weight table for repeated weighted sampling in O(log n).
#[derive(Clone, Debug)]
pub struct CumulativeTable {
    cumulative: Vec<f64>,
}

impl CumulativeTable {
    /// Builds the table. Zero-weight entries are never drawn.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be finite and non-negative"
            );
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must sum to a positive value");
        CumulativeTable { cumulative }
    }

    /// Draws one index proportionally to the weights.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("table is non-empty");
        let target = rng.gen::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean = 7.5;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, mean)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed - mean).abs() < 0.1, "observed {observed}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 2.0)).sum();
        let observed = sum / n as f64;
        assert!((observed - 2.0).abs() < 0.1, "observed {observed}");
        assert!((0..1000).all(|_| exponential(&mut rng, 1.0) >= 0.0));
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 0.5, 0.1)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "observed mean {mean}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(
            (var.sqrt() - 0.1).abs() < 0.01,
            "observed sd {}",
            var.sqrt()
        );
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "observed ratio {ratio}");
    }

    #[test]
    fn cumulative_table_matches_linear_sampler() {
        let mut rng = StdRng::seed_from_u64(6);
        let weights = [2.0, 1.0, 0.0, 1.0];
        let table = CumulativeTable::new(&weights);
        let mut counts = [0u32; 4];
        for _ in 0..20_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0);
        assert!((counts[0] as f64 / 20_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn cumulative_table_rejects_all_zero() {
        CumulativeTable::new(&[0.0, 0.0]);
    }
}
