//! The accuracy-loss quantity of equation (2) (Section 5.1 of the paper).
//!
//! For a set `S = {S_1, …, S_k}` of segments,
//!
//! ```text
//! loss(S) = Σ_{pairs {x,y}} [ ub({x,y}, merged(S)) − ub({x,y}, S kept apart) ]
//!         = Σ_{x<y} min(W_x, W_y)  −  Σ_s Σ_{x<y} min(u_s[x], u_s[y])
//! ```
//!
//! where `W = Σ_s u_s`. Writing `f(w) = Σ_{x<y} min(w_x, w_y)`, the loss is
//! `f(W) − Σ_s f(u_s)` — so everything reduces to evaluating `f`.
//!
//! The paper evaluates `f` by the obvious O(m²) pair loop, which makes `m²`
//! the dominant factor in Greedy's and RC's complexity (Section 5.3). This
//! module also provides an O(m log m) evaluation: sort `w` ascending; the
//! element at sorted position `i` is the minimum of exactly `m − 1 − i`
//! pairs, so `f(w) = Σ_i sorted(w)[i] · (m − 1 − i)`. The two are verified
//! equal by unit and property tests, and compared in the `loss` ablation
//! bench.
//!
//! The *bubble list* optimization (Section 5.3) restricts the pair sum to a
//! chosen subset of items; [`LossCalculator`] carries that scope.

use crate::segmentation::Aggregate;

/// `f(w) = Σ_{x<y} min(w_x, w_y)` by the paper's O(m²) pair loop.
pub fn pair_min_sum_naive(w: &[u64]) -> u64 {
    let mut total = 0u64;
    for x in 0..w.len() {
        for y in (x + 1)..w.len() {
            total += w[x].min(w[y]);
        }
    }
    total
}

/// `f(w)` in O(m log m) via sorting (see module docs for the identity).
pub fn pair_min_sum(w: &[u64]) -> u64 {
    let mut sorted = w.to_vec();
    sorted.sort_unstable();
    let m = sorted.len();
    sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| v * (m - 1 - i) as u64)
        .sum()
}

/// Evaluates `f` and merge losses, optionally restricted to a bubble list.
#[derive(Clone, Debug, Default)]
pub struct LossCalculator {
    /// `None` = all items; `Some(items)` = only pairs within these item ids.
    scope: Option<Vec<u32>>,
    /// Use the O(m²) evaluation instead of the sorted one (for the
    /// ablation bench and cross-validation).
    naive: bool,
}

impl LossCalculator {
    /// A calculator summing over all item pairs (no bubble list).
    pub fn all_items() -> Self {
        LossCalculator {
            scope: None,
            naive: false,
        }
    }

    /// A calculator restricted to the given item ids (the bubble list).
    pub fn scoped(items: Vec<u32>) -> Self {
        LossCalculator {
            scope: Some(items),
            naive: false,
        }
    }

    /// Switches to the paper's O(m²) evaluation. Same results, slower; kept
    /// for the ablation bench.
    pub fn with_naive_evaluation(mut self) -> Self {
        self.naive = true;
        self
    }

    /// Number of items the pair sum ranges over.
    pub fn scope_len(&self, m: usize) -> usize {
        self.scope.as_ref().map_or(m, Vec::len)
    }

    /// Extracts the scoped support values from a full support vector.
    fn scoped_values(&self, supports: &[u64]) -> Vec<u64> {
        match &self.scope {
            None => supports.to_vec(),
            Some(items) => items.iter().map(|&i| supports[i as usize]).collect(),
        }
    }

    /// `f(w)` over the calculator's scope.
    pub fn pair_min_sum(&self, supports: &[u64]) -> u64 {
        let w = self.scoped_values(supports);
        if self.naive {
            pair_min_sum_naive(&w)
        } else {
            pair_min_sum(&w)
        }
    }

    /// Equation (2) for a pair of segments:
    /// `loss({a, b}) = f(a + b) − f(a) − f(b)`. Always ≥ 0 (Lemma 2), and 0
    /// when the two segments share a configuration (Lemma 1).
    pub fn merge_loss(&self, a: &Aggregate, b: &Aggregate) -> u64 {
        let fa = self.pair_min_sum(a.supports());
        let fb = self.pair_min_sum(b.supports());
        let sum: Vec<u64> = a
            .supports()
            .iter()
            .zip(b.supports())
            .map(|(x, y)| x + y)
            .collect();
        let fsum = self.pair_min_sum(&sum);
        fsum - fa - fb
    }

    /// Equation (2) for an arbitrary set of segments:
    /// `loss(S) = f(Σ_s u_s) − Σ_s f(u_s)`.
    pub fn set_loss<'a, I>(&self, segments: I) -> u64
    where
        I: IntoIterator<Item = &'a Aggregate>,
    {
        let mut total_f = 0u64;
        let mut sum: Option<Vec<u64>> = None;
        for seg in segments {
            total_f += self.pair_min_sum(seg.supports());
            match &mut sum {
                None => sum = Some(seg.supports().to_vec()),
                Some(acc) => {
                    for (a, b) in acc.iter_mut().zip(seg.supports()) {
                        *a += b;
                    }
                }
            }
        }
        match sum {
            None => 0,
            Some(total) => self.pair_min_sum(&total) - total_f,
        }
    }

    /// Every pairwise merge loss among `inputs`, as `(loss, a, b)` triples
    /// ordered by `(a, b)` — the O(p²·m) matrix Greedy's initialization
    /// consumes.
    ///
    /// Rows are chunked across worker threads (row `a` covers the pairs
    /// `(a, b)` for all `b > a`); per-chunk results concatenate in row
    /// order, so the output is identical at any thread count.
    pub fn pairwise_merge_losses(&self, inputs: &[Aggregate]) -> Vec<(u64, usize, usize)> {
        /// Rows per chunk floor: early rows are the longest, so small
        /// chunks would leave the tail workers idle on trivial rows.
        const MIN_ROWS: usize = 4;
        let n = inputs.len();
        ossm_par::map_chunks(n, MIN_ROWS, |r| {
            let mut out = Vec::new();
            for a in r {
                for b in (a + 1)..n {
                    out.push((self.merge_loss(&inputs[a], &inputs[b]), a, b));
                }
            }
            out
        })
        .concat()
    }

    /// Total loss of a segmentation relative to its inputs: the sum of
    /// [`Self::set_loss`] over every group. This is the objective the
    /// constrained segmentation problem minimizes.
    pub fn segmentation_loss(
        &self,
        inputs: &[Aggregate],
        segmentation: &crate::segmentation::Segmentation,
    ) -> u64 {
        segmentation
            .groups()
            .iter()
            .map(|g| self.set_loss(g.iter().map(|&i| &inputs[i])))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(counts: &[u64]) -> Aggregate {
        Aggregate::new(counts.to_vec(), counts.iter().sum())
    }

    #[test]
    fn pair_min_sum_small_cases() {
        assert_eq!(pair_min_sum_naive(&[]), 0);
        assert_eq!(pair_min_sum_naive(&[7]), 0);
        assert_eq!(pair_min_sum_naive(&[3, 5]), 3);
        assert_eq!(pair_min_sum_naive(&[3, 5, 1]), 1 + 1 + 3);
        for w in [
            &[][..],
            &[7][..],
            &[3, 5][..],
            &[3, 5, 1][..],
            &[4, 4, 4][..],
        ] {
            assert_eq!(pair_min_sum(w), pair_min_sum_naive(w), "w = {w:?}");
        }
    }

    #[test]
    fn fast_equals_naive_on_random_vectors() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let len = rng.gen_range(0..30);
            let w: Vec<u64> = (0..len).map(|_| rng.gen_range(0..100)).collect();
            assert_eq!(pair_min_sum(&w), pair_min_sum_naive(&w), "w = {w:?}");
        }
    }

    #[test]
    fn merge_loss_matches_papers_swap_analysis() {
        // Section 4.2: segments (x ≥ y) with (3,1) and (y ≥ x) with (1,3):
        // merged min = min(4,4) = 4; separate = min(3,1) + min(1,3) = 2.
        let calc = LossCalculator::all_items();
        assert_eq!(calc.merge_loss(&agg(&[3, 1]), &agg(&[1, 3])), 2);
    }

    #[test]
    fn lemma_2a_same_configuration_zero_loss() {
        let calc = LossCalculator::all_items();
        assert_eq!(calc.merge_loss(&agg(&[5, 3, 1]), &agg(&[8, 6, 2])), 0);
        assert_eq!(
            calc.set_loss([&agg(&[5, 3, 1]), &agg(&[8, 6, 2]), &agg(&[2, 1, 0])]),
            0
        );
    }

    #[test]
    fn lemma_2b_strictly_differing_configurations_positive_loss() {
        let calc = LossCalculator::all_items();
        assert!(calc.merge_loss(&agg(&[5, 1]), &agg(&[1, 5])) > 0);
        assert!(calc.set_loss([&agg(&[5, 3, 1]), &agg(&[1, 3, 5])]) > 0);
    }

    #[test]
    fn lemma_2c_loss_is_monotone_in_the_set() {
        let calc = LossCalculator::all_items();
        let a = agg(&[5, 1, 2]);
        let b = agg(&[1, 5, 0]);
        let c = agg(&[2, 2, 9]);
        let two = calc.set_loss([&a, &b]);
        let three = calc.set_loss([&a, &b, &c]);
        assert!(two <= three, "loss must not decrease when the set grows");
    }

    #[test]
    fn set_loss_of_pair_equals_merge_loss() {
        let calc = LossCalculator::all_items();
        let a = agg(&[9, 4, 0, 2]);
        let b = agg(&[1, 6, 3, 3]);
        assert_eq!(calc.set_loss([&a, &b]), calc.merge_loss(&a, &b));
        assert_eq!(calc.set_loss([&a]), 0, "single segment loses nothing");
        assert_eq!(calc.set_loss(std::iter::empty()), 0);
    }

    #[test]
    fn scoped_calculator_restricts_the_pair_sum() {
        // Items 0 and 2 disagree in ranking; item 1 is the only bubble item
        // → scoped loss must be 0 (no pair inside the scope).
        let a = agg(&[5, 2, 1]);
        let b = agg(&[1, 2, 5]);
        let all = LossCalculator::all_items();
        let bubble = LossCalculator::scoped(vec![1]);
        assert!(all.merge_loss(&a, &b) > 0);
        assert_eq!(bubble.merge_loss(&a, &b), 0);
        // Scope {0, 2} sees exactly the disagreeing pair.
        let pair_scope = LossCalculator::scoped(vec![0, 2]);
        assert_eq!(pair_scope.merge_loss(&a, &b), 4); // min(6,6) − min(5,1) − min(1,5) = 4
    }

    #[test]
    fn naive_mode_gives_identical_losses() {
        let a = agg(&[9, 4, 0, 2, 7]);
        let b = agg(&[1, 6, 3, 3, 2]);
        let fast = LossCalculator::all_items();
        let naive = LossCalculator::all_items().with_naive_evaluation();
        assert_eq!(fast.merge_loss(&a, &b), naive.merge_loss(&a, &b));
    }

    #[test]
    fn segmentation_loss_sums_groups() {
        use crate::segmentation::Segmentation;
        let inputs = vec![agg(&[5, 1]), agg(&[1, 5]), agg(&[4, 1])];
        let calc = LossCalculator::all_items();
        // Group {0,1}: f([6,6]) − f([5,1]) − f([1,5]) = 6 − 1 − 1 = 4; group {2} loses 0.
        let seg = Segmentation::from_groups(vec![vec![0, 1], vec![2]], 3);
        assert_eq!(calc.segmentation_loss(&inputs, &seg), 4);
        // Identity loses nothing.
        assert_eq!(
            calc.segmentation_loss(&inputs, &Segmentation::identity(3)),
            0
        );
        // Grouping the two same-configuration segments loses nothing.
        let good = Segmentation::from_groups(vec![vec![0, 2], vec![1]], 3);
        assert_eq!(calc.segmentation_loss(&inputs, &good), 0);
    }
}
