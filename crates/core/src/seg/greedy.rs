//! The Greedy segmentation algorithm (Figure 2 of the paper).
//!
//! Maintains a priority queue of all pairwise merge losses; each iteration
//! pops the globally minimal pair, merges it, and inserts the losses of the
//! new segment against every survivor. Because the merged segment may have
//! a *different configuration* than either parent (Example 3 of the paper),
//! the fresh losses genuinely must be recomputed.
//!
//! Instead of Figure 2's step 5 ("remove all pairs in the priority queue
//! involving S_i or S_j") — a linear scan of the heap — we use lazy
//! deletion: every segment gets a fresh id when created, and entries whose
//! segments have since died are skipped at pop time. The complexities
//! match the paper's analysis: O(p²) loss computations and O(p² log p)
//! heap traffic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::loss::LossCalculator;
use crate::segmentation::{Aggregate, Segmentation};

use super::{trivial, validate, SegmentationAlgorithm};

/// Pair merges performed by Greedy.
static MERGES: ossm_obs::Counter = ossm_obs::Counter::new("core.seg.greedy.merges");
/// Equation-(2) merge-loss evaluations (initial pairs + recomputations).
static LOSS_EVALS: ossm_obs::Counter = ossm_obs::Counter::new("core.seg.greedy.loss_evals");
/// Entries pushed into the priority queue.
static HEAP_PUSHES: ossm_obs::Counter = ossm_obs::Counter::new("core.seg.greedy.heap_pushes");
/// Lazily-deleted (stale) entries skipped at pop time.
static STALE_POPS: ossm_obs::Counter = ossm_obs::Counter::new("core.seg.greedy.stale_pops");

/// Greedy minimal-loss-pair segmentation.
#[derive(Clone, Debug)]
pub struct Greedy {
    calc: LossCalculator,
}

impl Greedy {
    /// Creates the algorithm with a loss calculator (full or bubble-scoped).
    pub fn new(calc: LossCalculator) -> Self {
        Greedy { calc }
    }
}

impl Default for Greedy {
    fn default() -> Self {
        Greedy::new(LossCalculator::all_items())
    }
}

impl SegmentationAlgorithm for Greedy {
    fn name(&self) -> String {
        "Greedy".to_owned()
    }

    fn segment(&self, inputs: &[Aggregate], n_user: usize) -> Segmentation {
        validate(inputs, n_user);
        if let Some(t) = trivial(inputs, n_user) {
            return t;
        }
        let _seg_span = ossm_obs::span("core.seg.greedy");
        // Slab of segments by id; `None` = merged away. Ids only grow, so a
        // heap entry is stale iff either of its ids is dead.
        let mut slab: Vec<Option<(Aggregate, Vec<usize>)>> = inputs
            .iter()
            .enumerate()
            .map(|(i, a)| Some((a.clone(), vec![i])))
            .collect();
        let mut alive = slab.len();

        // Step 1: all initial pairwise losses. Min-heap via Reverse; ties
        // resolve to the smallest (a, b) ids for determinism.
        let mut heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
        {
            let mut s = ossm_obs::detail_span("core.seg.greedy.init_losses");
            s.watch(&LOSS_EVALS);
            // The full pairwise matrix, computed row-chunked in parallel and
            // returned in (a, b) order; pushes stay on this thread so the
            // heap's insertion order is independent of the thread count.
            let pairs = self.calc.pairwise_merge_losses(inputs);
            LOSS_EVALS.add(pairs.len() as u64);
            HEAP_PUSHES.add(pairs.len() as u64);
            for (loss, a, b) in pairs {
                heap.push(Reverse((loss, a, b)));
            }
        }

        // Step 2: repeatedly merge the globally closest pair.
        while alive > n_user {
            let mut round = ossm_obs::detail_span("core.seg.greedy.round");
            round.watch(&LOSS_EVALS);
            round.watch(&STALE_POPS);
            let Reverse((_, a, b)) = heap.pop().expect("heap cannot drain before n_user");
            if slab[a].is_none() || slab[b].is_none() {
                STALE_POPS.incr();
                continue; // lazy deletion: a stale pair
            }
            // Steps 4–5: merge S_a and S_b into a fresh segment.
            let (agg_a, mut grp_a) = slab[a].take().expect("checked alive");
            let (agg_b, mut grp_b) = slab[b].take().expect("checked alive");
            let mut merged = agg_a;
            merged.merge_in(&agg_b);
            grp_a.append(&mut grp_b);
            let new_id = slab.len();
            alive -= 1; // two died, one born
            MERGES.incr();
            // Step 6: losses of the new segment against all survivors.
            if alive > n_user {
                // (No point pushing pairs we will never pop once the target
                // count is reached.)
                for (id, entry) in slab.iter().enumerate() {
                    if let Some((agg, _)) = entry {
                        let loss = self.calc.merge_loss(&merged, agg);
                        LOSS_EVALS.incr();
                        heap.push(Reverse((loss, id, new_id)));
                        HEAP_PUSHES.incr();
                    }
                }
            }
            slab.push(Some((merged, grp_a)));
        }

        let groups: Vec<Vec<usize>> = slab.into_iter().flatten().map(|(_, g)| g).collect();
        Segmentation::from_groups(groups, inputs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::testutil;

    #[test]
    fn satisfies_the_algorithm_contract() {
        testutil::check_contract(&Greedy::default());
    }

    #[test]
    fn finds_the_lossless_two_way_split() {
        assert_eq!(testutil::two_config_loss(&Greedy::default()), 0);
    }

    #[test]
    fn merges_cheapest_pair_first() {
        // Segments: two nearly identical configs (cheap merge) and one
        // opposite config (expensive). With n_user = 2 Greedy must merge
        // the cheap pair and leave the expensive segment alone.
        let inputs = vec![
            Aggregate::new(vec![10, 5, 1], 10),
            Aggregate::new(vec![9, 5, 1], 9),
            Aggregate::new(vec![1, 5, 10], 10),
        ];
        let seg = Greedy::default().segment(&inputs, 2);
        let mut groups: Vec<Vec<usize>> = seg.groups().to_vec();
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort();
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn greedy_never_loses_more_than_rc_on_structured_inputs() {
        use crate::loss::LossCalculator;
        use crate::seg::rc::RandomClosest;
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        // Random inputs drawn from 3 latent configurations.
        let protos: [&[u64]; 3] = [&[30, 20, 10, 5], &[5, 10, 20, 30], &[20, 30, 5, 10]];
        let inputs: Vec<Aggregate> = (0..12)
            .map(|_| {
                let proto = protos[rng.gen_range(0..3)];
                let scale = rng.gen_range(1..4u64);
                Aggregate::new(proto.iter().map(|&v| v * scale).collect(), 30 * scale)
            })
            .collect();
        let calc = LossCalculator::all_items();
        let g_loss = calc.segmentation_loss(&inputs, &Greedy::default().segment(&inputs, 3));
        assert_eq!(
            g_loss, 0,
            "three latent configurations should split losslessly"
        );
        let rc_loss =
            calc.segmentation_loss(&inputs, &RandomClosest::default().segment(&inputs, 3));
        assert!(g_loss <= rc_loss);
    }
}
