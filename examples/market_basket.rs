//! Market-basket analysis on seasonal data — the OSSM's favourite case.
//!
//! A supermarket's transaction log spans summer to winter: half the items
//! sell mostly in one season. "Unlike many algorithms which cannot handle
//! skewed data, the strength of the OSSM is to exploit the variability"
//! (Section 8 of the paper). This example uses the Figure 7 recipe to pick
//! a strategy, then shows the skew translating into pruning power.
//!
//! Run with: `cargo run -p ossm --release --example market_basket`

use ossm::prelude::*;

fn main() {
    // A year of seasonal shopping: items 0,2,4,… sell in "summer" (the
    // first half of the log), items 1,3,5,… in "winter".
    let dataset = SkewedConfig {
        num_transactions: 30_000,
        num_items: 400,
        season_boost: 10.0,
        ..SkewedConfig::default()
    }
    .generate();
    let min_support = dataset.absolute_threshold(0.01);
    let store = PageStore::pack_default(dataset);
    println!(
        "supermarket log: {} baskets over {} products in {} pages",
        store.dataset().len(),
        store.num_items(),
        store.num_pages()
    );

    // Ask the paper's recipe which segmentation algorithm fits: plenty of
    // memory for segments, and we know the data is seasonal.
    let profile = ApplicationProfile {
        large_n_user: true,
        skewed_data: true,
        segmentation_cost_an_issue: true,
        very_large_p: false,
    };
    let recommendation = recommend(profile);
    println!("Figure 7 recipe says: use {recommendation}");
    let strategy = Strategy::from_recommendation(recommendation, 200);

    let (ossm, report) = OssmBuilder::new(120).strategy(strategy).build(&store);
    println!(
        "built {} OSSM: {} segments in {:?}",
        report.algorithm, report.num_segments, report.segmentation_time
    );

    // Mine with and without. On seasonal data even Random segmentation
    // prunes hard, because cross-season item pairs almost never co-occur.
    let apriori = Apriori::new().with_backend(CountingBackend::HashTree);
    let without = apriori.mine(store.dataset(), min_support);
    let with = apriori.mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm));
    assert_eq!(without.patterns, with.patterns);
    println!(
        "candidate 2-itemsets: {} -> {}",
        without.metrics.candidate_2_itemsets_counted(),
        with.metrics.candidate_2_itemsets_counted()
    );
    println!(
        "mining time: {:?} -> {:?}",
        without.metrics.elapsed, with.metrics.elapsed
    );

    // Show a few of the strongest product pairs.
    let mut pairs: Vec<(&Itemset, u64)> =
        with.patterns.iter().filter(|(p, _)| p.len() == 2).collect();
    pairs.sort_by_key(|&(_, s)| std::cmp::Reverse(s));
    println!("top co-purchased pairs:");
    for (pair, support) in pairs.into_iter().take(5) {
        println!("  products {pair}: {support} baskets");
    }
}
