//! Scoped allocation attribution.
//!
//! The `ossm-alloc` crate's counting `#[global_allocator]` (opt-in via
//! the CLI's `obs-alloc` feature) reports every heap allocation and
//! deallocation here via [`on_alloc`]/[`on_dealloc`]. Bytes are charged
//! to the *allocation scope* the current thread has open — an RAII tag
//! pushed with [`alloc_scope`] around a subsystem's work (`"data.page"`,
//! `"mining.candidates"`, `"core.seg"`, …) — so `--stats` can answer
//! "who holds the memory", not just "how much is held".
//!
//! The hooks are lock-free and allocation-free: scope names live in a
//! fixed table of [`OnceLock`] slots, counts in plain atomics. A
//! deallocation is charged to the scope open on the *freeing* thread,
//! which can differ from the allocating scope; per-scope currents are
//! therefore signed internally and clamped at zero in snapshots, while
//! peaks — the budget-relevant number — are unaffected.
//!
//! When the counting allocator is not installed the hooks are never
//! called and [`snapshot_into`] injects nothing, so default builds are
//! byte-identical. Peak RSS (`VmHWM`/`VmRSS` from `/proc/self/status`)
//! rides along as `mem.rss` whenever allocation tracking is live.

#[cfg(feature = "enabled")]
mod imp {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
    use std::sync::OnceLock;

    use crate::snapshot::{GaugeSnapshot, Snapshot};

    /// Maximum number of distinct allocation scopes; later scopes fall
    /// back to the unattributed global pool.
    pub const MAX_SCOPES: usize = 32;

    // `const` locals are the array-repeat idiom for non-Copy elements
    // (same as `Histogram::new` in live.rs).
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY_NAME: OnceLock<&'static str> = OnceLock::new();
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_I64: AtomicI64 = AtomicI64::new(0);
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO_U64: AtomicU64 = AtomicU64::new(0);

    static SCOPE_NAMES: [OnceLock<&'static str>; MAX_SCOPES] = [EMPTY_NAME; MAX_SCOPES];
    static SCOPE_CUR: [AtomicI64; MAX_SCOPES] = [ZERO_I64; MAX_SCOPES];
    static SCOPE_PEAK: [AtomicU64; MAX_SCOPES] = [ZERO_U64; MAX_SCOPES];
    static GLOBAL_CUR: AtomicI64 = AtomicI64::new(0);
    static GLOBAL_PEAK: AtomicU64 = AtomicU64::new(0);
    /// Set by the first hook call: proof the counting allocator is
    /// installed, and the switch that turns the `mem.*` snapshot rows on.
    static HOOKED: AtomicBool = AtomicBool::new(false);

    thread_local! {
        /// Index of the scope open on this thread; `usize::MAX` = none.
        static CURRENT_SCOPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }

    /// Interns `name` into the scope table, returning its slot (or
    /// `usize::MAX` when the table is full — bytes then stay global).
    fn intern(name: &'static str) -> usize {
        for (i, slot) in SCOPE_NAMES.iter().enumerate() {
            match slot.get() {
                Some(&n) if n == name => return i,
                Some(_) => continue,
                None => {
                    if slot.set(name).is_ok() || slot.get() == Some(&name) {
                        return i;
                    }
                }
            }
        }
        usize::MAX
    }

    /// Opens an allocation scope: until the returned guard drops, heap
    /// bytes allocated (and freed) on this thread are charged to `name`.
    /// Scopes nest; the innermost wins.
    pub fn alloc_scope(name: &'static str) -> AllocScope {
        let idx = intern(name);
        let prev = CURRENT_SCOPE.with(|s| s.replace(idx));
        AllocScope { prev }
    }

    /// RAII guard restoring the previously open allocation scope.
    #[must_use = "the scope closes when the guard drops"]
    pub struct AllocScope {
        prev: usize,
    }

    impl Drop for AllocScope {
        fn drop(&mut self) {
            CURRENT_SCOPE.with(|s| s.set(self.prev));
        }
    }

    /// Charges an allocation of `size` bytes. Called by `ossm-alloc`'s
    /// `GlobalAlloc` wrapper; must not allocate.
    #[inline]
    pub fn on_alloc(size: usize) {
        HOOKED.store(true, Ordering::Relaxed);
        let size = size as i64;
        let now = GLOBAL_CUR.fetch_add(size, Ordering::Relaxed) + size;
        if now > 0 {
            GLOBAL_PEAK.fetch_max(now as u64, Ordering::Relaxed);
        }
        // `try_with`: hooks can fire during thread-local teardown.
        let idx = CURRENT_SCOPE.try_with(Cell::get).unwrap_or(usize::MAX);
        if idx < MAX_SCOPES {
            let now = SCOPE_CUR[idx].fetch_add(size, Ordering::Relaxed) + size;
            if now > 0 {
                SCOPE_PEAK[idx].fetch_max(now as u64, Ordering::Relaxed);
            }
        }
    }

    /// Releases an allocation of `size` bytes. Must not allocate.
    #[inline]
    pub fn on_dealloc(size: usize) {
        let size = size as i64;
        GLOBAL_CUR.fetch_sub(size, Ordering::Relaxed);
        let idx = CURRENT_SCOPE.try_with(Cell::get).unwrap_or(usize::MAX);
        if idx < MAX_SCOPES {
            SCOPE_CUR[idx].fetch_sub(size, Ordering::Relaxed);
        }
    }

    /// True once the counting allocator has reported at least one
    /// allocation — i.e. the `obs-alloc` feature is live in this process.
    pub fn tracking_active() -> bool {
        HOOKED.load(Ordering::Relaxed)
    }

    /// `(VmRSS, VmHWM)` in bytes from `/proc/self/status`, when the
    /// platform exposes it.
    pub fn rss_bytes() -> Option<(u64, u64)> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let mut rss = None;
        let mut hwm = None;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmRSS:") {
                rss = parse_kb(rest);
            } else if let Some(rest) = line.strip_prefix("VmHWM:") {
                hwm = parse_kb(rest);
            }
        }
        Some((rss?, hwm?))
    }

    fn parse_kb(rest: &str) -> Option<u64> {
        rest.trim()
            .strip_suffix("kB")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(|kb| kb * 1024)
    }

    /// Injects `mem.alloc`, `mem.alloc.<scope>`, and `mem.rss` gauge rows
    /// into `snap` — only when allocation tracking is live, so default
    /// builds see no new rows.
    pub(crate) fn snapshot_into(snap: &mut Snapshot) {
        if !tracking_active() {
            return;
        }
        snap.gauges.insert(
            "mem.alloc".to_string(),
            GaugeSnapshot {
                current: GLOBAL_CUR.load(Ordering::Relaxed).max(0) as u64,
                peak: GLOBAL_PEAK.load(Ordering::Relaxed),
            },
        );
        for (i, slot) in SCOPE_NAMES.iter().enumerate() {
            let Some(&name) = slot.get() else { break };
            let s = GaugeSnapshot {
                current: SCOPE_CUR[i].load(Ordering::Relaxed).max(0) as u64,
                peak: SCOPE_PEAK[i].load(Ordering::Relaxed),
            };
            if s.current > 0 || s.peak > 0 {
                snap.gauges.insert(format!("mem.alloc.{name}"), s);
            }
        }
        if let Some((rss, hwm)) = rss_bytes() {
            snap.gauges.insert(
                "mem.rss".to_string(),
                GaugeSnapshot {
                    current: rss,
                    peak: hwm,
                },
            );
        }
    }

    /// Re-arms every peak at the current level, so a measured run's
    /// peaks reflect only that run. Currents are left alone — they track
    /// live bytes, which a reset cannot un-allocate.
    pub(crate) fn reset_peaks() {
        let now = GLOBAL_CUR.load(Ordering::Relaxed).max(0) as u64;
        GLOBAL_PEAK.store(now, Ordering::Relaxed);
        for (cur, peak) in SCOPE_CUR.iter().zip(&SCOPE_PEAK) {
            let now = cur.load(Ordering::Relaxed).max(0) as u64;
            peak.store(now, Ordering::Relaxed);
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    /// Disabled stand-in: the table never exists.
    pub const MAX_SCOPES: usize = 0;

    /// Returns an inert guard (instrumentation disabled).
    #[inline(always)]
    pub fn alloc_scope(_name: &'static str) -> AllocScope {
        AllocScope
    }

    /// Disabled stand-in for the live `AllocScope` (drop does nothing).
    #[must_use = "the scope closes when the guard drops"]
    pub struct AllocScope;

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn on_alloc(_size: usize) {}

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn on_dealloc(_size: usize) {}

    /// Always false (instrumentation disabled).
    #[inline(always)]
    pub fn tracking_active() -> bool {
        false
    }

    /// Always `None` (instrumentation disabled).
    #[inline(always)]
    pub fn rss_bytes() -> Option<(u64, u64)> {
        None
    }
}

pub use imp::{
    alloc_scope, on_alloc, on_dealloc, rss_bytes, tracking_active, AllocScope, MAX_SCOPES,
};

#[cfg(feature = "enabled")]
pub(crate) use imp::{reset_peaks, snapshot_into};
