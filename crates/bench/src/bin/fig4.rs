//! Reproduces Figure 4 of the paper: Apriori speedup (a) and fraction of
//! candidate 2-itemsets still requiring counting (b), as a function of the
//! number of segments, for the Greedy, RC, and Random algorithms.
//!
//! Usage: `cargo run -p ossm-bench --release --bin fig4 -- [--pages=200]
//! [--items=1000] [--minsup=0.01] [--seed=1]
//! [--trace[=chrome|folded] [PATH]]`

use ossm_bench::experiments::fig4;
use ossm_bench::traceio;

fn main() {
    traceio::main_with_trace(|opts| {
        print!("{}", fig4(opts));
        0
    });
}
