//! Cross-backend and cross-thread-count consistency of candidate counting.
//!
//! The parallel decomposition in `ossm-par` promises bit-identical results
//! at any thread count, and the three counting back-ends (linear scan,
//! hash tree, bitmap) plus the vertical tidset index all implement the
//! same support function. This suite pins both claims against a naive
//! serial oracle on seeded data, including the awkward inputs: empty
//! transactions, empty candidates, singleton items, and candidate items
//! outside the build domain.

use std::sync::Mutex;

use ossm_data::{Dataset, ItemId, Itemset};
use ossm_mining::support::{count_with, CountingBackend};
use ossm_mining::vertical::{intersect, VerticalIndex};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Serializes tests that set the global ossm-par thread override.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

const BACKENDS: [CountingBackend; 3] = [
    CountingBackend::LinearScan,
    CountingBackend::HashTree,
    CountingBackend::Bitmap,
];

fn set(ids: &[u32]) -> Itemset {
    Itemset::new(ids.iter().copied())
}

/// Seeded transactions over `m` items, including deliberate empties.
fn random_transactions(rng: &mut StdRng, n: usize, m: u32) -> Vec<Itemset> {
    (0..n)
        .map(|t| {
            if t % 97 == 0 {
                // Sprinkle empty transactions through the stream.
                Itemset::empty()
            } else {
                let len = rng.gen_range(1..8usize);
                Itemset::new((0..len).map(|_| rng.gen_range(0..m)))
            }
        })
        .collect()
}

/// Seeded candidates of sizes 1..=3 over `0..domain`.
fn random_candidates(rng: &mut StdRng, n: usize, domain: u32) -> Vec<Itemset> {
    (0..n)
        .map(|_| {
            let len = rng.gen_range(1..4usize);
            Itemset::new((0..len).map(|_| rng.gen_range(0..domain)))
        })
        .collect()
}

/// The trusted oracle: a naive subset scan with no chunking, no trees, no
/// bit tricks.
fn oracle(transactions: &[Itemset], candidates: &[Itemset]) -> Vec<u64> {
    candidates
        .iter()
        .map(|c| transactions.iter().filter(|t| c.is_subset_of(t)).count() as u64)
        .collect()
}

/// Candidate support from the vertical tidset index, by successive sorted
/// intersection. Only valid for candidates inside the dataset's domain.
fn vertical_support(index: &VerticalIndex, candidate: &Itemset) -> u64 {
    let mut items = candidate.items().iter();
    let Some(first) = items.next() else {
        return index.num_transactions();
    };
    let mut tids = index.tidset(*first).to_vec();
    for item in items {
        tids = intersect(&tids, index.tidset(*item));
    }
    tids.len() as u64
}

#[test]
fn every_backend_is_thread_count_invariant() {
    let _guard = THREADS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut rng = StdRng::seed_from_u64(0x0551);
    // Enough transactions for several 256-transaction chunks and enough
    // candidates for several 64-candidate bitmap chunks.
    let txs = random_transactions(&mut rng, 1500, 40);
    let cands = random_candidates(&mut rng, 220, 40);
    let expected = oracle(&txs, &cands);
    for backend in BACKENDS {
        for threads in [1usize, 2, 8] {
            ossm_par::set_threads(Some(threads));
            assert_eq!(
                count_with(backend, &txs, &cands),
                expected,
                "{backend:?} at {threads} threads"
            );
        }
    }
    ossm_par::set_threads(None);
}

#[test]
fn bitmap_agrees_with_linear_hashtree_and_vertical() {
    let mut rng = StdRng::seed_from_u64(0xB17_0002);
    let m = 32u32;
    let txs = random_transactions(&mut rng, 700, m);
    // In-domain candidates only: the vertical index cannot answer for
    // items it never saw.
    let cands = random_candidates(&mut rng, 180, m);
    let expected = oracle(&txs, &cands);
    for backend in BACKENDS {
        assert_eq!(count_with(backend, &txs, &cands), expected, "{backend:?}");
    }
    let index = VerticalIndex::build(&Dataset::new(m as usize, txs));
    let vertical: Vec<u64> = cands.iter().map(|c| vertical_support(&index, c)).collect();
    assert_eq!(vertical, expected, "vertical tidset oracle");
}

#[test]
fn out_of_domain_candidate_items_count_zero_everywhere() {
    let mut rng = StdRng::seed_from_u64(0xD0_0D);
    let m = 20u32;
    let txs = random_transactions(&mut rng, 400, m);
    // Candidates drawn from a wider domain than the data, so some contain
    // items no transaction (and no bitmap row) has.
    let cands = random_candidates(&mut rng, 120, m + 5);
    let expected = oracle(&txs, &cands);
    for backend in BACKENDS {
        assert_eq!(count_with(backend, &txs, &cands), expected, "{backend:?}");
    }
}

#[test]
fn edge_cases_agree_across_backends() {
    let all_empty: Vec<Itemset> = vec![Itemset::empty(); 300];
    let singletons: Vec<Itemset> = (0..10).map(|i| Itemset::singleton(ItemId(i))).collect();
    let cases: [(&str, Vec<Itemset>, Vec<Itemset>); 4] = [
        ("no transactions", Vec::new(), singletons.clone()),
        ("all transactions empty", all_empty, singletons.clone()),
        (
            "empty candidate counts every transaction",
            vec![set(&[0, 1]), Itemset::empty(), set(&[2])],
            vec![Itemset::empty(), set(&[0]), set(&[0, 1])],
        ),
        (
            "singleton transactions, singleton candidates",
            (0..500)
                .map(|t| Itemset::singleton(ItemId(t % 7)))
                .collect(),
            singletons,
        ),
    ];
    for (name, txs, cands) in &cases {
        let expected = oracle(txs, cands);
        for backend in BACKENDS {
            assert_eq!(
                count_with(backend, txs, cands),
                expected,
                "{name}: {backend:?}"
            );
        }
        assert_eq!(
            count_with(CountingBackend::Bitmap, txs, &[]),
            Vec::<u64>::new(),
            "{name}: empty candidate list"
        );
    }
}
