//! Attribute and `cfg` analysis over a lexed file.
//!
//! Builds the per-file facts every rule consumes:
//!
//! * which tokens are **test code** (`#[test]` functions, `#[cfg(test)]`
//!   items, `#[cfg(all(test, …))]` items) — rules skip those regions;
//! * which items are **feature-gated** (`#[cfg(feature = "…")]` /
//!   `#[cfg(not(feature = "…"))]`), with the gated item's kind and name —
//!   rule R2's parity input;
//! * every **feature name referenced** by any `cfg`/`cfg_attr` attribute
//!   or `cfg!` macro — rule R2 checks each against the crate manifest;
//! * the **enclosing function** of every token — rules key allowlist
//!   entries on function names instead of brittle line numbers.
//!
//! Item extents are recovered without a grammar: an attributed item runs
//! to the first `;` at bracket depth zero, or to the close of its first
//! top-level brace block (plus a directly trailing `;`, as in
//! `static X: T = S { … };`).

use crate::lexer::{lex, Tok, TokKind};

/// One feature-gated item (`#[cfg(feature = "x")] fn y …`).
#[derive(Clone, Debug)]
pub struct Gate {
    /// The feature name inside the gate.
    pub feature: String,
    /// Whether the gate is `not(feature = …)`.
    pub negative: bool,
    /// Item keyword (`fn`, `mod`, `struct`, `impl`, `use`, …).
    pub item_kind: String,
    /// First identifier after the keyword (best-effort item name).
    pub item_name: String,
    /// Line of the gating attribute.
    pub line: u32,
    /// Whether the gated item sits inside test code.
    pub in_test: bool,
}

/// Lexed file plus the region facts rules need.
pub struct FileModel {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// `in_test[i]` — token `i` is inside test-only code.
    pub in_test: Vec<bool>,
    /// Every feature-gated item.
    pub gates: Vec<Gate>,
    /// Every feature name referenced in a `cfg`, `cfg_attr`, or `cfg!`,
    /// with the referencing line.
    pub features_used: Vec<(String, u32)>,
    /// `enclosing_fn[i]` — name of the innermost `fn` containing token `i`.
    pub enclosing_fn: Vec<Option<String>>,
}

impl FileModel {
    /// Lexes and analyzes one file.
    pub fn analyze(path: &str, src: &str) -> FileModel {
        let toks = lex(src);
        let mut model = FileModel {
            path: path.to_owned(),
            in_test: vec![false; toks.len()],
            gates: Vec::new(),
            features_used: Vec::new(),
            enclosing_fn: vec![None; toks.len()],
            toks,
        };
        model.scan_attributes();
        model.scan_cfg_macros();
        model.scan_enclosing_fns();
        model
    }

    /// Allowlist/diagnostic key for the token at `i`: the enclosing
    /// function name, or `<file>` at file scope.
    pub fn key_at(&self, i: usize, suffix: &str) -> String {
        match &self.enclosing_fn[i] {
            Some(f) => format!("{f}.{suffix}"),
            None => format!("<file>.{suffix}"),
        }
    }

    fn scan_attributes(&mut self) {
        let mut test_ranges: Vec<(usize, usize)> = Vec::new();
        let mut gates: Vec<(Gate, usize, usize)> = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            if !self.toks[i].is_punct("#") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            let inner = j < self.toks.len() && self.toks[j].is_punct("!");
            if inner {
                j += 1;
            }
            if j >= self.toks.len() || !self.toks[j].is_punct("[") {
                i += 1;
                continue;
            }
            let (attr_end, attr) = self.attr_extent(j);
            let facts = classify_attr(&attr);
            for ((feature, _negative), line) in &facts.features {
                self.features_used.push((feature.clone(), *line));
            }
            if !inner && (facts.is_test || (facts.gating && !facts.features.is_empty())) {
                if let Some((item_start, item_end, kind, name)) = self.item_extent(attr_end + 1) {
                    if facts.is_test {
                        test_ranges.push((item_start, item_end));
                    } else {
                        for ((feature, negative), line) in &facts.features {
                            gates.push((
                                Gate {
                                    feature: feature.clone(),
                                    negative: *negative,
                                    item_kind: kind.clone(),
                                    item_name: name.clone(),
                                    line: *line,
                                    in_test: false, // filled below
                                },
                                item_start,
                                item_end,
                            ));
                        }
                    }
                }
            }
            // Resume right after the attribute so nested attributes inside
            // the item body are still visited.
            i = attr_end + 1;
        }
        let last = self.in_test.len().saturating_sub(1);
        for (start, end) in &test_ranges {
            for t in &mut self.in_test[*start..=(*end).min(last)] {
                *t = true;
            }
        }
        for (mut gate, start, _end) in gates {
            gate.in_test = self.in_test.get(start).copied().unwrap_or(false);
            self.gates.push(gate);
        }
    }

    /// From the `[` at `open`, returns (index of matching `]`, attr tokens).
    fn attr_extent(&self, open: usize) -> (usize, Vec<Tok>) {
        let mut depth = 0usize;
        let mut k = open;
        while k < self.toks.len() {
            if self.toks[k].is_punct("[") {
                depth += 1;
            } else if self.toks[k].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    return (k, self.toks[open + 1..k].to_vec());
                }
            }
            k += 1;
        }
        (self.toks.len() - 1, self.toks[open + 1..].to_vec())
    }

    /// Finds the item starting at or after `from` (skipping comments and
    /// further attributes): (start, end, kind keyword, name).
    fn item_extent(&self, from: usize) -> Option<(usize, usize, String, String)> {
        const KINDS: &[&str] = &[
            "fn",
            "mod",
            "struct",
            "enum",
            "union",
            "trait",
            "impl",
            "use",
            "static",
            "const",
            "type",
            "macro_rules",
        ];
        let mut k = from;
        // Skip comments and stacked attributes.
        while k < self.toks.len() {
            if self.toks[k].is_comment() {
                k += 1;
            } else if self.toks[k].is_punct("#")
                && self.toks.get(k + 1).is_some_and(|t| t.is_punct("["))
            {
                let (end, _) = self.attr_extent(k + 1);
                k = end + 1;
            } else {
                break;
            }
        }
        if k >= self.toks.len() {
            return None;
        }
        let start = k;
        // Kind and name.
        let mut kind = String::new();
        let mut name = String::new();
        let mut probe = k;
        while probe < self.toks.len() && probe < k + 12 {
            let t = &self.toks[probe];
            if t.kind == TokKind::Ident && KINDS.contains(&t.text.as_str()) {
                kind = t.text.clone();
                let mut np = probe + 1;
                while np < self.toks.len() {
                    if self.toks[np].kind == TokKind::Ident {
                        name = self.toks[np].text.clone();
                        break;
                    }
                    if self.toks[np].is_punct(";") || self.toks[np].is_punct("{") {
                        break;
                    }
                    np += 1;
                }
                break;
            }
            probe += 1;
        }
        // Extent: first `;` at depth 0, or the first top-level brace block.
        let mut depth = 0i64;
        while k < self.toks.len() {
            let t = &self.toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth == 0 && t.text == "}" {
                            // Block item; include a directly trailing `;`.
                            let end = if self.toks.get(k + 1).is_some_and(|n| n.is_punct(";")) {
                                k + 1
                            } else {
                                k
                            };
                            return Some((start, end, kind, name));
                        }
                    }
                    ";" if depth == 0 => return Some((start, k, kind, name)),
                    _ => {}
                }
            }
            k += 1;
        }
        Some((start, self.toks.len() - 1, kind, name))
    }

    /// Records features referenced via the `cfg!(…)` macro.
    fn scan_cfg_macros(&mut self) {
        let mut i = 0;
        while i + 3 < self.toks.len() {
            if self.toks[i].is_ident("cfg")
                && self.toks[i + 1].is_punct("!")
                && self.toks[i + 2].is_punct("(")
            {
                let mut k = i + 3;
                let mut depth = 1usize;
                while k < self.toks.len() && depth > 0 {
                    if self.toks[k].is_punct("(") {
                        depth += 1;
                    } else if self.toks[k].is_punct(")") {
                        depth -= 1;
                    } else if self.toks[k].is_ident("feature")
                        && self.toks.get(k + 1).is_some_and(|t| t.is_punct("="))
                        && self.toks.get(k + 2).is_some_and(|t| t.kind == TokKind::Str)
                    {
                        self.features_used
                            .push((self.toks[k + 2].text.clone(), self.toks[k + 2].line));
                    }
                    k += 1;
                }
                i = k;
            } else {
                i += 1;
            }
        }
    }

    /// Fills `enclosing_fn`: outer functions first, nested ones override
    /// their subrange (they appear later in the scan).
    fn scan_enclosing_fns(&mut self) {
        let mut assignments: Vec<(usize, usize, String)> = Vec::new();
        for i in 0..self.toks.len() {
            if !self.toks[i].is_ident("fn") {
                continue;
            }
            let Some(name_tok) = self.toks[i + 1..].iter().find(|t| !t.is_comment()) else {
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                continue; // `fn` inside a type like `fn(u8) -> u8`
            }
            let name = name_tok.text.clone();
            // Body: first `{` at signature level before any terminating `;`.
            let mut k = i + 1;
            let mut depth = 0i64;
            let mut body_open = None;
            while k < self.toks.len() {
                let t = &self.toks[k];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => {
                            body_open = Some(k);
                            break;
                        }
                        ";" if depth == 0 => break, // bodyless decl
                        _ => {}
                    }
                }
                k += 1;
            }
            let Some(open) = body_open else { continue };
            let mut depth = 0i64;
            let mut close = self.toks.len() - 1;
            for (idx, t) in self.toks.iter().enumerate().skip(open) {
                if t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        close = idx;
                        break;
                    }
                }
            }
            assignments.push((i, close, name));
        }
        for (start, end, name) in assignments {
            for slot in &mut self.enclosing_fn[start..=end] {
                *slot = Some(name.clone());
            }
        }
    }
}

/// What one attribute contributes.
struct AttrFacts {
    /// `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`.
    is_test: bool,
    /// Whether the attribute conditionally compiles its item (`cfg`, not
    /// `cfg_attr` — the latter only toggles other attributes).
    gating: bool,
    /// `((feature, negative), line)` for every `feature = "…"` inside.
    features: Vec<((String, bool), u32)>,
}

fn classify_attr(attr: &[Tok]) -> AttrFacts {
    let first = attr.iter().find(|t| t.kind == TokKind::Ident);
    let head = first.map_or("", |t| t.text.as_str());
    let mut facts = AttrFacts {
        is_test: head == "test",
        gating: head == "cfg",
        features: Vec::new(),
    };
    if head != "cfg" && head != "cfg_attr" {
        return facts;
    }
    // Walk the predicate, tracking the paren depths at which `not(`
    // groups opened so polarity is known at every token.
    let mut depth = 0usize;
    let mut not_stack: Vec<usize> = Vec::new();
    let mut k = 0;
    while k < attr.len() {
        let t = &attr[k];
        if t.is_punct("(") {
            depth += 1;
            if k > 0 && attr[k - 1].is_ident("not") {
                not_stack.push(depth);
            }
        } else if t.is_punct(")") {
            if not_stack.last() == Some(&depth) {
                not_stack.pop();
            }
            depth = depth.saturating_sub(1);
        } else if t.is_ident("test") && not_stack.is_empty() && head == "cfg" {
            facts.is_test = true;
        } else if t.is_ident("feature")
            && attr.get(k + 1).is_some_and(|n| n.is_punct("="))
            && attr.get(k + 2).is_some_and(|n| n.kind == TokKind::Str)
        {
            facts.features.push((
                (attr[k + 2].text.clone(), !not_stack.is_empty()),
                attr[k + 2].line,
            ));
            k += 2;
        }
        k += 1;
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::analyze("test.rs", src)
    }

    fn ident_in_test(m: &FileModel, name: &str) -> bool {
        m.toks
            .iter()
            .enumerate()
            .any(|(i, t)| t.is_ident(name) && m.in_test[i])
    }

    #[test]
    fn cfg_test_mod_marks_its_whole_extent() {
        let m = model(
            "fn live() { helper(); }\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { probe(); }\n}\n\
             fn after() { tail(); }",
        );
        assert!(!ident_in_test(&m, "helper"));
        assert!(ident_in_test(&m, "probe"));
        assert!(!ident_in_test(&m, "tail"));
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let m = model("#[cfg(all(test, feature = \"obs\"))]\nmod t { fn x() { inner(); } }");
        assert!(ident_in_test(&m, "inner"));
    }

    #[test]
    fn not_test_is_not_test() {
        let m = model("#[cfg(not(test))]\nfn live() { body(); }");
        assert!(!ident_in_test(&m, "body"));
    }

    #[test]
    fn feature_gates_capture_polarity_and_name() {
        let m = model(
            "#[cfg(feature = \"obs\")]\nmod live { }\n\
             #[cfg(not(feature = \"obs\"))]\nmod noop { }",
        );
        assert_eq!(m.gates.len(), 2);
        assert!(!m.gates[0].negative);
        assert_eq!(m.gates[0].item_name, "live");
        assert!(m.gates[1].negative);
        assert_eq!(m.gates[1].item_name, "noop");
    }

    #[test]
    fn gates_inside_test_mods_are_flagged_as_test() {
        let m =
            model("#[cfg(test)]\nmod tests {\n  #[cfg(feature = \"faults\")]\n  mod faults { }\n}");
        let gate = m
            .gates
            .iter()
            .find(|g| g.feature == "faults")
            .expect("gate");
        assert!(gate.in_test);
    }

    #[test]
    fn cfg_macro_features_are_recorded() {
        let m = model("fn f() -> bool { cfg!(feature = \"enabled\") }");
        assert!(m.features_used.iter().any(|(f, _)| f == "enabled"));
    }

    #[test]
    fn enclosing_fn_tracks_nesting() {
        let m = model("fn outer() { fn inner() { deep(); } shallow(); }");
        let deep = m
            .toks
            .iter()
            .position(|t| t.is_ident("deep"))
            .expect("deep");
        let shallow = m
            .toks
            .iter()
            .position(|t| t.is_ident("shallow"))
            .expect("shallow");
        assert_eq!(m.enclosing_fn[deep].as_deref(), Some("inner"));
        assert_eq!(m.enclosing_fn[shallow].as_deref(), Some("outer"));
    }

    #[test]
    fn static_initializer_with_braces_ends_at_semicolon() {
        let m = model("#[cfg(test)]\nstatic X: Foo = Foo { a: 1 };\nfn live() { body(); }");
        assert!(!ident_in_test(&m, "body"));
    }
}
