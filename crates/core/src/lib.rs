//! # ossm-core — the Optimized Segment Support Map
//!
//! Reproduction of the core contribution of *Leung, Ng, Mannila: "OSSM: A
//! Segmentation Approach to Optimize Frequency Counting" (ICDE 2002)*.
//!
//! The OSSM partitions a transaction collection into `n` segments and keeps
//! per-segment singleton supports; equation (1) then upper-bounds the
//! support of any itemset, letting miners prune candidates before counting.
//! This crate implements:
//!
//! * the map itself and its bound — [`ssm::Ossm`];
//! * segment configurations and the lossless-merge theory of Section 4 —
//!   [`config`], [`minimize`] (Theorem 1, Corollary 1);
//! * the accuracy-loss quantity of equation (2), in both the paper's O(m²)
//!   form and an O(m log m) sorted form — [`loss`];
//! * the constrained-segmentation heuristics Greedy, RC, Random, and the
//!   Random-RC / Random-Greedy hybrids — [`seg`];
//! * the bubble list — [`bubble`]; the Figure 7 recipe — [`recipe`];
//! * a high-level builder tying everything together — [`builder`].
//!
//! ```
//! use ossm_core::{builder::{OssmBuilder, Strategy}};
//! use ossm_data::{gen::QuestConfig, Itemset, PageStore};
//!
//! let store = PageStore::with_page_count(QuestConfig::small().generate(), 40);
//! let (ossm, _report) = OssmBuilder::new(12).strategy(Strategy::Rc).build(&store);
//! let candidate = Itemset::new([3, 17]);
//! // The bound never undercounts…
//! assert!(ossm.upper_bound(&candidate) >= store.dataset().support(&candidate));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bubble;
pub mod builder;
pub mod config;
pub mod durable;
pub mod generalized;
pub mod incremental;
pub mod loss;
pub mod minimize;
pub mod persist;
pub mod recipe;
pub mod recover;
pub mod seg;
pub mod segmentation;
pub mod ssm;
pub mod variability;

pub use bubble::BubbleList;
pub use builder::{BuildReport, OssmBuilder, Strategy};
pub use config::Configuration;
pub use durable::{DurableIncrementalOssm, RecoveryReport};
pub use generalized::GeneralizedOssm;
pub use incremental::IncrementalOssm;
pub use loss::LossCalculator;
pub use minimize::{minimize_segments, theorem1_bound, SegmentMinimization};
pub use recipe::{recommend, ApplicationProfile, RecommendedStrategy};
pub use seg::SegmentationAlgorithm;
pub use segmentation::{Aggregate, Segmentation};
pub use ssm::Ossm;
