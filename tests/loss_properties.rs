//! Property tests for the equation-(2) loss quantity (Lemma 2) and the
//! O(m log m) evaluation's equivalence to the paper's O(m²) pair loop.

mod testkit;

use rand::rngs::StdRng;
use rand::Rng;
use testkit::case_rng;

use ossm_core::loss::{pair_min_sum, pair_min_sum_naive};
use ossm_core::{Aggregate, LossCalculator, Segmentation};

const CASES: u64 = 128;

fn random_aggregate(rng: &mut StdRng, m: usize) -> Aggregate {
    let v: Vec<u64> = (0..m).map(|_| rng.gen_range(0u64..500)).collect();
    let n = v.iter().copied().max().unwrap_or(0);
    Aggregate::new(v, n)
}

/// 2–5 aggregates over a common random item count `1..=12`.
fn random_aggregates(rng: &mut StdRng) -> Vec<Aggregate> {
    let m = rng.gen_range(1usize..=12);
    let k = rng.gen_range(2usize..6);
    (0..k).map(|_| random_aggregate(rng, m)).collect()
}

#[test]
fn sorted_pair_min_sum_equals_naive() {
    for case in 0..CASES {
        let mut rng = case_rng(0x1051, case);
        let len = rng.gen_range(0usize..40);
        let w: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..10_000)).collect();
        assert_eq!(pair_min_sum(&w), pair_min_sum_naive(&w), "case {case}");
    }
}

#[test]
fn fast_and_naive_losses_agree() {
    for case in 0..CASES {
        let segs = random_aggregates(&mut case_rng(0x1052, case));
        let fast = LossCalculator::all_items();
        let naive = LossCalculator::all_items().with_naive_evaluation();
        assert_eq!(
            fast.merge_loss(&segs[0], &segs[1]),
            naive.merge_loss(&segs[0], &segs[1]),
            "case {case}"
        );
        assert_eq!(
            fast.set_loss(segs.iter()),
            naive.set_loss(segs.iter()),
            "case {case}"
        );
    }
}

#[test]
fn loss_is_nonnegative_and_zero_for_identical_configs() {
    for case in 0..CASES {
        let segs = random_aggregates(&mut case_rng(0x1053, case));
        let calc = LossCalculator::all_items();
        // Lemma 2(a/b): loss ≥ 0 always (we can't easily synthesize equal
        // configurations here, so test the scaled-copy case below
        // deterministically); merge_loss of a segment with a scaled copy
        // of itself is 0 (same configuration).
        assert!(calc.set_loss(segs.iter()) < u64::MAX);
        let a = &segs[0];
        let doubled = Aggregate::new(
            a.supports().iter().map(|&v| v * 2).collect(),
            a.transactions() * 2,
        );
        assert_eq!(
            calc.merge_loss(a, &doubled),
            0,
            "case {case}: same configuration must cost 0"
        );
    }
}

#[test]
fn loss_is_monotone_under_set_growth() {
    for case in 0..CASES {
        // Lemma 2(c): S ⊆ S' ⇒ loss(S) ≤ loss(S').
        let segs = random_aggregates(&mut case_rng(0x1054, case));
        let calc = LossCalculator::all_items();
        for k in 2..=segs.len() {
            let smaller = calc.set_loss(segs[..k - 1].iter());
            let larger = calc.set_loss(segs[..k].iter());
            assert!(
                smaller <= larger,
                "case {case}: loss shrank when adding segment {}",
                k - 1
            );
        }
    }
}

#[test]
fn scoped_loss_never_exceeds_full_loss() {
    for case in 0..CASES {
        let segs = random_aggregates(&mut case_rng(0x1055, case));
        let m = segs[0].num_items();
        let full = LossCalculator::all_items();
        // Every-other-item bubble list.
        let scope: Vec<u32> = (0..m as u32).step_by(2).collect();
        if scope.is_empty() {
            continue;
        }
        let scoped = LossCalculator::scoped(scope);
        assert!(
            scoped.merge_loss(&segs[0], &segs[1]) <= full.merge_loss(&segs[0], &segs[1]),
            "case {case}"
        );
        assert!(
            scoped.set_loss(segs.iter()) <= full.set_loss(segs.iter()),
            "case {case}"
        );
    }
}

#[test]
fn segmentation_loss_decomposes_over_groups() {
    for case in 0..CASES {
        let segs = random_aggregates(&mut case_rng(0x1056, case));
        let calc = LossCalculator::all_items();
        let n = segs.len();
        // Split into two groups: first half, second half.
        let cut = n / 2;
        if cut == 0 || cut == n {
            continue;
        }
        let seg = Segmentation::from_groups(vec![(0..cut).collect(), (cut..n).collect()], n);
        let total = calc.segmentation_loss(&segs, &seg);
        let by_hand = calc.set_loss(segs[..cut].iter()) + calc.set_loss(segs[cut..].iter());
        assert_eq!(total, by_hand, "case {case}");
        // The identity segmentation always costs zero.
        assert_eq!(
            calc.segmentation_loss(&segs, &Segmentation::identity(n)),
            0,
            "case {case}"
        );
    }
}

#[test]
fn loss_equals_sum_of_pairwise_bound_slack() {
    for case in 0..CASES {
        // Direct check of equation (2): loss(S) is exactly the total
        // increase, over all item pairs, of the merged bound vs the
        // separated bound.
        use ossm_core::Ossm;
        use ossm_data::Itemset;
        let segs = random_aggregates(&mut case_rng(0x1057, case));
        let calc = LossCalculator::all_items();
        let m = segs[0].num_items();
        let separate = Ossm::from_aggregates(segs.clone());
        let merged_agg = segs[1..]
            .iter()
            .fold(segs[0].clone(), |acc, s| acc.merged(s));
        let merged = Ossm::from_aggregates(vec![merged_agg]);
        let mut expected = 0u64;
        for x in 0..m as u32 {
            for y in (x + 1)..m as u32 {
                let pair = Itemset::new([x, y]);
                expected += merged.upper_bound(&pair) - separate.upper_bound(&pair);
            }
        }
        assert_eq!(calc.set_loss(segs.iter()), expected, "case {case}");
    }
}

/// Deterministic: strictly opposite configurations must cost a positive
/// loss (Lemma 2(b)).
#[test]
fn opposite_configurations_cost() {
    let calc = LossCalculator::all_items();
    let a = Aggregate::new(vec![10, 5, 1], 10);
    let b = Aggregate::new(vec![1, 5, 10], 10);
    assert!(calc.merge_loss(&a, &b) > 0);
}
