//! R4 — bound-soundness annotations.
//!
//! Eq. (1), `ub(X) = Σ_i min_{a∈X} sup_i({a})`, is monotone in every
//! segment support: any code path that *widens* a support can only raise
//! bounds (pruning stays correct), while a path that shrinks one can
//! silently under-count — the one bug class this codebase must never
//! ship (cf. the derivable-bounds discipline of Calders & Goethals).
//! Correctness therefore rests on a per-function monotonicity argument,
//! and this rule makes that argument a checked artifact: every function
//! on a recovery/merge path that produces or transforms upper-bound
//! inputs must carry a `// SOUND:` (or `/// … SOUND: …`) comment naming
//! the argument, and arithmetic on `ub`/`sup*` values in *unmarked*
//! functions in those files is flagged.

use super::Context;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::regions::FileModel;

/// Files containing eq. (1) recovery/merge paths.
pub const R4_FILES: &[&str] = &[
    "crates/core/src/ssm.rs",
    "crates/core/src/segmentation.rs",
    "crates/core/src/recover.rs",
    "crates/core/src/incremental.rs",
    "crates/core/src/durable.rs",
    "crates/data/src/repair.rs",
];

/// A function whose name contains one of these produces or transforms
/// bound inputs and must be marked.
const BOUND_FN_PATTERNS: &[&str] = &[
    "upper_bound",
    "merge",
    "widen",
    "recover",
    "aggregate",
    "absorb",
    "replay",
];

const ARITH_OPS: &[&str] = &["+", "+=", "-", "-=", "*", "*="];

struct FnInfo {
    name: String,
    fn_tok: usize,
    body_close: usize,
    marked: bool,
}

pub fn check(ctx: &Context<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in ctx
        .files
        .iter()
        .filter(|f| R4_FILES.contains(&f.path.as_str()))
    {
        let fns = collect_fns(file);
        for f in &fns {
            let is_bound_fn = BOUND_FN_PATTERNS.iter().any(|p| f.name.contains(p));
            if is_bound_fn && !f.marked {
                out.push(Diagnostic {
                    rule: "R4",
                    path: file.path.clone(),
                    line: file.toks[f.fn_tok].line,
                    key: f.name.clone(),
                    message: format!(
                        "`{}` produces/transforms eq. (1) bound inputs but has no `// SOUND:` \
                         comment naming its monotonicity argument",
                        f.name
                    ),
                });
            }
            if !f.marked {
                if let Some(line) = unmarked_bound_arith(file, f) {
                    out.push(Diagnostic {
                        rule: "R4",
                        path: file.path.clone(),
                        line,
                        key: format!("{}.arith", f.name),
                        message: format!(
                            "arithmetic on `ub`/`sup*` values in `{}`, which carries no \
                             `// SOUND:` marker — document why the transform keeps bounds sound",
                            f.name
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Finds every non-test `fn` with its marker status. A function is
/// *marked* when a comment containing `SOUND:` appears either in the
/// comment run between the previous item boundary and the `fn` keyword
/// (doc comments included) or anywhere inside its body.
fn collect_fns(file: &FileModel) -> Vec<FnInfo> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") || file.in_test[i] {
            continue;
        }
        let Some(name_tok) = toks[i + 1..].iter().find(|t| !t.is_comment()) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        // Body extent (bodyless trait fns are skipped: nothing to check).
        let Some((open, close)) = body_extent(file, i) else {
            continue;
        };
        // Leading comments: walk back to the previous `;`, `{`, or `}`.
        let mut marked = false;
        let mut k = i;
        while k > 0 {
            k -= 1;
            let p = &toks[k];
            if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") {
                break;
            }
            if p.is_comment() && p.text.contains("SOUND:") {
                marked = true;
            }
        }
        if !marked {
            marked = toks[open..=close]
                .iter()
                .any(|t| t.is_comment() && t.text.contains("SOUND:"));
        }
        out.push(FnInfo {
            name: name_tok.text.clone(),
            fn_tok: i,
            body_close: close,
            marked,
        });
    }
    out
}

fn body_extent(file: &FileModel, fn_tok: usize) -> Option<(usize, usize)> {
    let toks = &file.toks;
    let mut depth = 0i64;
    let mut k = fn_tok + 1;
    let mut open = None;
    while k < toks.len() {
        let t = &toks[k];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    open = Some(k);
                    break;
                }
                ";" if depth == 0 => return None,
                _ => {}
            }
        }
        k += 1;
    }
    let open = open?;
    let mut depth = 0i64;
    for (idx, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some((open, idx));
            }
        }
    }
    Some((open, toks.len() - 1))
}

/// First line inside `f`'s body where an arithmetic operator touches an
/// identifier named `ub*` or `sup*` (walking back over `]`/`)` groups and
/// field chains to find the operand's identifiers).
fn unmarked_bound_arith(file: &FileModel, f: &FnInfo) -> Option<u32> {
    let toks = &file.toks;
    let body = f.fn_tok..=f.body_close;
    for i in body {
        let t = &toks[i];
        if t.kind != TokKind::Punct || !ARITH_OPS.contains(&t.text.as_str()) {
            continue;
        }
        // Left operand: walk back over closing groups and field chains.
        if operand_idents_backward(file, i)
            .iter()
            .any(|id| is_bound_ident(id))
        {
            return Some(t.line);
        }
        // Right operand (only in clearly binary position).
        let prev_is_operand = i > 0
            && (matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Num)
                || toks[i - 1].is_punct(")")
                || toks[i - 1].is_punct("]"));
        if prev_is_operand {
            if let Some(next) = toks.get(i + 1) {
                if next.kind == TokKind::Ident && is_bound_ident(&next.text) {
                    return Some(t.line);
                }
            }
        }
    }
    None
}

fn is_bound_ident(id: &str) -> bool {
    id == "ub" || id.starts_with("ub_") || id.starts_with("sup")
}

/// Identifiers making up the operand that *ends* just before token `i`:
/// `recovery.widened_pages`, `supports[s][item.index()]`, `sup_i`.
fn operand_idents_backward(file: &FileModel, i: usize) -> Vec<String> {
    let toks = &file.toks;
    let mut ids = Vec::new();
    let mut k = i;
    loop {
        if k == 0 {
            break;
        }
        k -= 1;
        let t = &toks[k];
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => continue,
            TokKind::Punct if t.text == "]" || t.text == ")" => {
                // Skip the balanced group.
                let closer = t.text.clone();
                let opener = if closer == "]" { "[" } else { "(" };
                let mut depth = 1usize;
                while k > 0 && depth > 0 {
                    k -= 1;
                    if toks[k].is_punct(&closer) {
                        depth += 1;
                    } else if toks[k].is_punct(opener) {
                        depth -= 1;
                    }
                }
            }
            TokKind::Punct if t.text == "." => continue,
            TokKind::Ident => {
                ids.push(t.text.clone());
                // Continue through a field/index chain (`a.b[c].d`).
                if k == 0 || !(toks[k - 1].is_punct(".") || toks[k - 1].is_punct("]")) {
                    break;
                }
            }
            _ => break,
        }
    }
    ids
}
