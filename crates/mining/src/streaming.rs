//! Disk-resident Apriori: one buffered page pass per level, with physical
//! I/O accounting.
//!
//! The paper measures "all CPU and I/O costs". Level-wise miners read the
//! whole collection once per level; the OSSM cuts I/O two ways:
//!
//! 1. a level whose every candidate is discharged by equation (1) makes
//!    **no pass at all** (and ends the run if nothing survives);
//! 2. level 1 needs no pass either — the OSSM's singleton supports are
//!    exact by construction, so `L1` is read straight out of the map.
//!
//! [`StreamingApriori::mine`] reports both the patterns and the pass/page
//! counts, so the disk-oriented experiments can show the I/O effect the
//! in-memory miners cannot.

use std::io;

use ossm_core::Ossm;
use ossm_data::disk::DiskStore;
use ossm_data::{ItemId, Itemset};

use crate::apriori::generate_candidates;
use crate::hashtree::HashTree;
use crate::metrics::{LevelMetrics, MiningMetrics};
use crate::support::FrequentPatterns;

/// Result of a disk-resident mining run.
#[derive(Clone, Debug)]
pub struct StreamingOutcome {
    /// All frequent patterns with exact supports.
    pub patterns: FrequentPatterns,
    /// Candidate bookkeeping.
    pub metrics: MiningMetrics,
    /// Full passes over the page file.
    pub passes: u64,
    /// Physical page reads (buffer-pool misses) during the run.
    pub page_reads: u64,
}

/// Apriori over a [`DiskStore`], with an optional OSSM.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamingApriori;

impl StreamingApriori {
    /// Creates the miner.
    pub fn new() -> Self {
        StreamingApriori
    }

    /// Mines all frequent itemsets from the page file.
    ///
    /// With `ossm: Some(_)`, candidates are filtered by equation (1)
    /// before each counting pass and the level-1 pass is skipped entirely
    /// (see module docs). The OSSM must describe exactly this store's
    /// data; this is asserted via the transaction count.
    ///
    /// # Panics
    /// Panics if `min_support == 0` or if the OSSM's transaction count
    /// disagrees with the store's.
    pub fn mine(
        &self,
        store: &mut DiskStore,
        min_support: u64,
        ossm: Option<&Ossm>,
    ) -> io::Result<StreamingOutcome> {
        assert!(min_support > 0, "support threshold must be at least 1");
        if let Some(map) = ossm {
            assert_eq!(
                map.num_transactions(),
                store.num_transactions(),
                "the OSSM does not describe this store"
            );
        }
        let start_reads = store.io_stats().page_reads;
        let m = store.num_items();
        let mut patterns = FrequentPatterns::new();
        let mut metrics = MiningMetrics::default();
        let mut passes = 0u64;

        // Level 1.
        let mut level1 = LevelMetrics {
            level: 1,
            generated: m as u64,
            ..Default::default()
        };
        let singles: Vec<u64> = match ossm {
            Some(map) => {
                // The map's singleton supports are exact: zero I/O.
                (0..m as u32)
                    .map(|i| map.singleton_support(ItemId(i)))
                    .collect()
            }
            None => {
                // One pass to count singletons. (The page index would also
                // do, but a miner without the OSSM is our I/O baseline, so
                // it pays the pass the paper's Apriori paid.)
                passes += 1;
                let mut counts = vec![0u64; m];
                store.scan(|t| {
                    for item in t.items() {
                        counts[item.index()] += 1;
                    }
                })?;
                counts
            }
        };
        level1.counted = if ossm.is_some() { 0 } else { m as u64 };
        let mut frequent: Vec<Itemset> = Vec::new();
        for i in 0..m as u32 {
            if singles[i as usize] >= min_support {
                let s = Itemset::singleton(ItemId(i));
                patterns.insert(s.clone(), singles[i as usize]);
                frequent.push(s);
            }
        }
        level1.frequent = frequent.len() as u64;
        metrics.push_level(level1);

        // Levels ≥ 2: generate, filter, and only then pay a pass.
        let mut k = 2;
        while !frequent.is_empty() {
            let generated = generate_candidates(&frequent);
            if generated.is_empty() {
                break;
            }
            let mut level = LevelMetrics {
                level: k,
                generated: generated.len() as u64,
                ..Default::default()
            };
            let candidates: Vec<Itemset> = match ossm {
                Some(map) => generated
                    .into_iter()
                    .filter(|c| {
                        // Each ub(X) probe is one served query: time it so
                        // the live req.ub.latency quantiles reflect the
                        // paper's time-for-memory trade under load.
                        let _timer = ossm_core::durable::REQ_UB_LATENCY.time();
                        map.upper_bound(c) >= min_support
                    })
                    .collect(),
                None => generated,
            };
            level.filtered_out = level.generated - candidates.len() as u64;
            level.counted = candidates.len() as u64;
            if candidates.is_empty() {
                // Every candidate discharged: no pass, and the run is over
                // (no candidate can seed level k+1 either).
                metrics.push_level(level);
                break;
            }
            passes += 1;
            let tree = HashTree::build(&candidates);
            let mut counts = vec![0u64; candidates.len()];
            let pages = store.num_pages();
            let mut batch: Vec<Itemset> = Vec::new();
            for p in 0..pages {
                batch.clear();
                batch.extend(store.read_page(p)?);
                tree.count(&batch, &mut counts);
            }
            let mut next = Vec::new();
            for (c, sup) in candidates.into_iter().zip(counts) {
                if sup >= min_support {
                    patterns.insert(c.clone(), sup);
                    next.push(c);
                }
            }
            level.frequent = next.len() as u64;
            metrics.push_level(level);
            frequent = next;
            k += 1;
        }

        Ok(StreamingOutcome {
            patterns,
            metrics,
            passes,
            page_reads: store.io_stats().page_reads - start_reads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use ossm_core::{OssmBuilder, Strategy};
    use ossm_data::disk::write_paged;
    use ossm_data::gen::QuestConfig;
    use ossm_data::{Dataset, PageStore};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ossm-streaming-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn workload() -> Dataset {
        QuestConfig {
            num_transactions: 600,
            num_items: 40,
            ..QuestConfig::small()
        }
        .generate()
    }

    #[test]
    fn matches_in_memory_apriori() {
        let d = workload();
        let path = tmp("match.pages");
        write_paged(&path, &d, 1024).expect("write");
        let mut store = DiskStore::open(&path, 4).expect("open");
        let disk = StreamingApriori::new()
            .mine(&mut store, 12, None)
            .expect("mine");
        let mem = Apriori::new().mine(&d, 12);
        assert_eq!(disk.patterns, mem.patterns);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ossm_skips_the_level_1_pass_and_preserves_results() {
        let d = workload();
        let path = tmp("skip.pages");
        write_paged(&path, &d, 1024).expect("write");
        let pages = PageStore::pack(d.clone(), 1024);
        let (ossm, _) = OssmBuilder::new(8).strategy(Strategy::Greedy).build(&pages);

        let mut store = DiskStore::open(&path, 4).expect("open");
        let plain = StreamingApriori::new()
            .mine(&mut store, 12, None)
            .expect("mine");
        let mut store = DiskStore::open(&path, 4).expect("open");
        let filtered = StreamingApriori::new()
            .mine(&mut store, 12, Some(&ossm))
            .expect("mine");

        assert_eq!(plain.patterns, filtered.patterns);
        assert!(filtered.passes < plain.passes, "L1 pass must disappear");
        assert!(filtered.page_reads < plain.page_reads);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fully_pruned_level_costs_no_pass() {
        // Two items that never co-occur: with the exact OSSM, level 2 is
        // fully discharged and the only I/O is... none at all (L1 comes
        // from the map).
        let d = Dataset::new(
            2,
            vec![
                Itemset::new([0u32]),
                Itemset::new([0u32]),
                Itemset::new([1u32]),
                Itemset::new([1u32]),
            ],
        );
        let path = tmp("pruned.pages");
        write_paged(&path, &d, 4096).expect("write");
        let min = ossm_core::minimize_segments(&d);
        let mut store = DiskStore::open(&path, 2).expect("open");
        let out = StreamingApriori::new()
            .mine(&mut store, 2, Some(&min.ossm))
            .expect("mine");
        assert_eq!(out.passes, 0);
        assert_eq!(out.page_reads, 0);
        assert_eq!(out.patterns.len(), 2, "both singletons frequent");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn passes_count_one_per_counted_level() {
        let d = workload();
        let path = tmp("passes.pages");
        write_paged(&path, &d, 1024).expect("write");
        let mut store = DiskStore::open(&path, 4).expect("open");
        let out = StreamingApriori::new()
            .mine(&mut store, 12, None)
            .expect("mine");
        let counted_levels = out
            .metrics
            .levels
            .iter()
            .filter(|l| l.level >= 2 && l.counted > 0)
            .count() as u64;
        assert_eq!(
            out.passes,
            1 + counted_levels,
            "L1 pass + one per counted level"
        );
        assert_eq!(out.page_reads, out.passes * store.num_pages() as u64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "does not describe")]
    fn mismatched_ossm_is_rejected() {
        let d = workload();
        let path = tmp("mismatch.pages");
        write_paged(&path, &d, 1024).expect("write");
        let other = QuestConfig {
            num_transactions: 100,
            num_items: 40,
            ..QuestConfig::small()
        }
        .generate();
        let pages = PageStore::with_page_count(other, 4);
        let (ossm, _) = OssmBuilder::new(2).build(&pages);
        let mut store = DiskStore::open(&path, 4).expect("open");
        let _ = StreamingApriori::new().mine(&mut store, 12, Some(&ossm));
    }
}
