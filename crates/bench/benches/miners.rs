//! End-to-end miner comparison on one workload: Apriori (with/without the
//! OSSM), DHP (with/without), DepthProject (with/without), Partition, and
//! FP-growth. The with/without pairs are the wall-clock form of the
//! paper's headline result.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ossm_bench::workloads::Workload;
use ossm_core::{OssmBuilder, Strategy};
use ossm_mining::{Apriori, CountingBackend, DepthProject, Dhp, FpGrowth, OssmFilter, Partition};

fn bench_miners(c: &mut Criterion) {
    let store = Workload::regular(30, 300).store();
    let dataset = store.dataset();
    let min_support = dataset.absolute_threshold(0.01);
    let (ossm, _) = OssmBuilder::new(15)
        .strategy(Strategy::Greedy)
        .build(&store);

    let mut group = c.benchmark_group("miners_30_pages");
    group.sample_size(10);

    let apriori = Apriori::new().with_backend(CountingBackend::HashTree);
    group.bench_function("apriori", |b| {
        b.iter(|| black_box(apriori.mine(black_box(dataset), min_support)));
    });
    group.bench_function("apriori_ossm", |b| {
        b.iter(|| {
            black_box(apriori.mine_filtered(
                black_box(dataset),
                min_support,
                &OssmFilter::new(&ossm),
            ))
        });
    });

    let dhp = Dhp::default();
    group.bench_function("dhp", |b| {
        b.iter(|| black_box(dhp.mine(black_box(dataset), min_support)));
    });
    group.bench_function("dhp_ossm", |b| {
        b.iter(|| {
            black_box(dhp.mine_filtered(black_box(dataset), min_support, &OssmFilter::new(&ossm)))
        });
    });

    let depth = DepthProject::new();
    group.bench_function("depthproject", |b| {
        b.iter(|| black_box(depth.mine(black_box(dataset), min_support)));
    });
    group.bench_function("depthproject_ossm", |b| {
        b.iter(|| {
            black_box(depth.mine_filtered(black_box(dataset), min_support, &OssmFilter::new(&ossm)))
        });
    });

    group.bench_function("partition_4", |b| {
        b.iter(|| black_box(Partition::new(4).mine(black_box(dataset), min_support)));
    });
    group.bench_function("fpgrowth", |b| {
        b.iter(|| black_box(FpGrowth::new().mine(black_box(dataset), min_support)));
    });
    group.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);
