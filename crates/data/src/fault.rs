//! Deterministic fault injection for the storage layer.
//!
//! Recovery code that is never exercised is recovery code that does not
//! work. This module lets tests *plan* storage failures — write errors,
//! torn writes cut at an exact byte offset, bit flips on read, short
//! reads — and have them fire deterministically at the `nth` I/O
//! operation carrying a given tag. The disk store, the WAL, and the
//! snapshot writer all route their physical I/O through the tagged
//! helpers here, so a test can tear the third WAL append or flip a bit
//! in the second page read without touching file bytes by hand.
//!
//! # Zero cost when disabled
//!
//! The whole machinery is gated on the `faults` cargo feature, mirroring
//! the `obs` pattern: without the feature every type is a stub,
//! [`FaultPlan::arm`] is a no-op, and the tagged I/O helpers compile down
//! to plain `write_all`/`read_exact` calls. Production builds carry no
//! mutex, no registry, and no branch on the hot path.
//!
//! # Usage
//!
//! ```
//! use ossm_data::fault::FaultPlan;
//!
//! let mut plan = FaultPlan::new();
//! plan.tear_write("data.wal.append", 3, 5); // 3rd append stops after 5 bytes
//! let guard = plan.arm();
//! // ... drive the system; with the `faults` feature the 3rd tagged
//! // append writes 5 bytes and then reports an I/O error ...
//! drop(guard); // disarms
//! ```
//!
//! Only one plan can be armed at a time (arming replaces any previous
//! plan); tests that inject faults serialize themselves.

use std::io::{self, Read, Write};

/// What a planned fault does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The tagged write fails outright; nothing reaches the file.
    WriteError,
    /// The tagged write persists only the first `keep` bytes, then
    /// reports an error — a crash mid-write (torn write).
    TornWrite {
        /// Bytes that make it to the file before the "crash".
        keep: usize,
    },
    /// The tagged read fails outright.
    ReadError,
    /// The tagged read returns fewer bytes than requested
    /// (`ErrorKind::UnexpectedEof`), as a crashed writer's tail would.
    ShortRead,
    /// The tagged read succeeds but one bit of the returned buffer is
    /// flipped — silent media corruption, which checksums must catch.
    BitFlip {
        /// Byte offset within the read buffer (clamped to its length).
        offset: usize,
        /// XOR mask applied to that byte.
        mask: u8,
    },
}

/// Outcome of consulting the armed plan before a tagged write.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(not(feature = "faults"), allow(dead_code))] // stubs return only `None`
enum WriteFault {
    None,
    Error,
    Torn(usize),
}

#[cfg(feature = "faults")]
mod live {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Mutex;

    struct Planned {
        tag: String,
        nth: u64,
        kind: FaultKind,
    }

    struct Active {
        planned: Vec<Planned>,
        counters: HashMap<String, u64>,
        fired: u64,
    }

    static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);

    fn lock() -> std::sync::MutexGuard<'static, Option<Active>> {
        match ACTIVE.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A deterministic schedule of storage faults.
    #[derive(Default)]
    pub struct FaultPlan {
        planned: Vec<Planned>,
    }

    impl FaultPlan {
        /// An empty plan (no faults).
        pub fn new() -> Self {
            FaultPlan::default()
        }

        /// Schedules `kind` to fire at the `nth` (1-based) I/O operation
        /// tagged `tag`. Each scheduled fault fires at most once.
        pub fn schedule(&mut self, tag: &str, nth: u64, kind: FaultKind) -> &mut Self {
            self.planned.push(Planned {
                tag: tag.to_owned(),
                nth,
                kind,
            });
            self
        }

        /// Arms the plan globally; the returned guard disarms on drop.
        pub fn arm(self) -> FaultGuard {
            *lock() = Some(Active {
                planned: self.planned,
                counters: HashMap::new(),
                fired: 0,
            });
            FaultGuard { _priv: () }
        }
    }

    /// RAII handle for an armed [`FaultPlan`].
    pub struct FaultGuard {
        _priv: (),
    }

    impl FaultGuard {
        /// How many planned faults have fired since arming.
        pub fn fired(&self) -> u64 {
            lock().as_ref().map_or(0, |a| a.fired)
        }
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *lock() = None;
        }
    }

    /// Consults the armed plan for the next write tagged `tag`.
    pub(super) fn next_write_fault(tag: &str) -> WriteFault {
        let mut guard = lock();
        let Some(active) = guard.as_mut() else {
            return WriteFault::None;
        };
        let count = bump(active, tag);
        match take(active, tag, count) {
            Some(FaultKind::WriteError) => WriteFault::Error,
            Some(FaultKind::TornWrite { keep }) => WriteFault::Torn(keep),
            Some(_) | None => WriteFault::None,
        }
    }

    /// Consults the armed plan for the next read tagged `tag`; mutates
    /// `buf` in place for bit flips.
    pub(super) fn next_read_fault(tag: &str, buf: &mut [u8]) -> io::Result<()> {
        let mut guard = lock();
        let Some(active) = guard.as_mut() else {
            return Ok(());
        };
        let count = bump(active, tag);
        match take(active, tag, count) {
            Some(FaultKind::ReadError) => Err(injected(format!("injected read error ({tag})"))),
            Some(FaultKind::ShortRead) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("injected short read ({tag})"),
            )),
            Some(FaultKind::BitFlip { offset, mask }) => {
                if let Some(byte) = buf.get_mut(offset.min(buf.len().saturating_sub(1))) {
                    *byte ^= mask;
                }
                Ok(())
            }
            Some(_) | None => Ok(()),
        }
    }

    fn bump(active: &mut Active, tag: &str) -> u64 {
        let c = active.counters.entry(tag.to_owned()).or_insert(0);
        *c += 1;
        *c
    }

    fn take(active: &mut Active, tag: &str, count: u64) -> Option<FaultKind> {
        let idx = active
            .planned
            .iter()
            .position(|p| p.tag == tag && p.nth == count)?;
        active.fired += 1;
        Some(active.planned.swap_remove(idx).kind)
    }
}

#[cfg(not(feature = "faults"))]
mod live {
    use super::*;

    /// A deterministic schedule of storage faults (inert: the `faults`
    /// feature is disabled, so arming this plan injects nothing).
    #[derive(Default)]
    pub struct FaultPlan;

    impl FaultPlan {
        /// An empty plan (no faults).
        #[inline(always)]
        pub fn new() -> Self {
            FaultPlan
        }

        /// No-op: the `faults` feature is disabled.
        #[inline(always)]
        pub fn schedule(&mut self, _tag: &str, _nth: u64, _kind: FaultKind) -> &mut Self {
            self
        }

        /// No-op arm; the guard is a zero-sized token.
        #[inline(always)]
        pub fn arm(self) -> FaultGuard {
            FaultGuard { _priv: () }
        }
    }

    /// RAII handle for an armed [`FaultPlan`] (inert stub).
    pub struct FaultGuard {
        _priv: (),
    }

    impl FaultGuard {
        /// Always 0: nothing can fire without the `faults` feature.
        #[inline(always)]
        pub fn fired(&self) -> u64 {
            0
        }
    }

    #[inline(always)]
    pub(super) fn next_write_fault(_tag: &str) -> WriteFault {
        WriteFault::None
    }

    #[inline(always)]
    pub(super) fn next_read_fault(_tag: &str, _buf: &mut [u8]) -> io::Result<()> {
        Ok(())
    }
}

pub use live::{FaultGuard, FaultPlan};

impl FaultPlan {
    /// Schedules the `nth` write tagged `tag` to fail without persisting.
    pub fn fail_write(&mut self, tag: &str, nth: u64) -> &mut Self {
        self.schedule(tag, nth, FaultKind::WriteError)
    }

    /// Schedules the `nth` write tagged `tag` to persist only `keep`
    /// bytes, then error — a torn write.
    pub fn tear_write(&mut self, tag: &str, nth: u64, keep: usize) -> &mut Self {
        self.schedule(tag, nth, FaultKind::TornWrite { keep })
    }

    /// Schedules the `nth` read tagged `tag` to fail.
    pub fn fail_read(&mut self, tag: &str, nth: u64) -> &mut Self {
        self.schedule(tag, nth, FaultKind::ReadError)
    }

    /// Schedules the `nth` read tagged `tag` to come up short.
    pub fn short_read(&mut self, tag: &str, nth: u64) -> &mut Self {
        self.schedule(tag, nth, FaultKind::ShortRead)
    }

    /// Schedules a bit flip in the buffer of the `nth` read tagged `tag`.
    pub fn flip_on_read(&mut self, tag: &str, nth: u64, offset: usize, mask: u8) -> &mut Self {
        self.schedule(tag, nth, FaultKind::BitFlip { offset, mask })
    }
}

fn injected(msg: String) -> io::Error {
    io::Error::other(msg)
}

/// Stamps an injected fault into the flight recorder and — when
/// `OSSM_FLIGHTREC` names a path — dumps the ring, so the postmortem
/// shows what the process was doing when the fault fired.
fn fault_event(tag: &str, bytes: u64) {
    ossm_obs::recorder::record_event(tag, ossm_obs::recorder::EventKind::Fault, bytes);
    ossm_obs::recorder::dump_on_fault();
}

/// `write_all` with a fault-injection point: the armed plan may fail the
/// write or tear it after a planned number of bytes. Storage code calls
/// this for every physical write it wants recoverable-from.
pub fn write_all_tagged<W: Write>(w: &mut W, tag: &str, buf: &[u8]) -> io::Result<()> {
    match live::next_write_fault(tag) {
        WriteFault::None => w.write_all(buf),
        WriteFault::Error => {
            fault_event(tag, buf.len() as u64);
            Err(injected(format!("injected write error ({tag})")))
        }
        WriteFault::Torn(keep) => {
            w.write_all(&buf[..keep.min(buf.len())])?;
            w.flush()?;
            fault_event(tag, keep as u64);
            Err(injected(format!(
                "injected torn write ({tag}): {keep} of {} bytes persisted",
                buf.len()
            )))
        }
    }
}

/// `read_exact` with a fault-injection point: the armed plan may fail the
/// read, report a short read, or flip a bit in the returned buffer.
pub fn read_exact_tagged<R: Read>(r: &mut R, tag: &str, buf: &mut [u8]) -> io::Result<()> {
    r.read_exact(buf)?;
    let out = live::next_read_fault(tag, buf);
    if out.is_err() {
        fault_event(tag, buf.len() as u64);
    }
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    // The armed plan is process-global; fault tests share one lock.
    pub(crate) fn serialize_tests() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[cfg(feature = "faults")]
    mod enabled {
        use super::*;

        #[test]
        fn torn_write_persists_a_prefix_then_errors() {
            let _lock = serialize_tests();
            let mut plan = FaultPlan::new();
            plan.tear_write("t.page", 2, 3);
            let guard = plan.arm();
            let mut sink = Vec::new();
            write_all_tagged(&mut sink, "t.page", b"aaaa").expect("1st write clean");
            let err = write_all_tagged(&mut sink, "t.page", b"bbbb").expect_err("2nd torn");
            assert!(err.to_string().contains("torn"), "{err}");
            assert_eq!(sink, b"aaaabbb", "3 of 4 bytes persisted");
            assert_eq!(guard.fired(), 1);
        }

        #[test]
        fn write_error_persists_nothing() {
            let _lock = serialize_tests();
            let mut plan = FaultPlan::new();
            plan.fail_write("t.wal", 1);
            let _guard = plan.arm();
            let mut sink = Vec::new();
            assert!(write_all_tagged(&mut sink, "t.wal", b"xyz").is_err());
            assert!(sink.is_empty());
            // Other tags are untouched.
            write_all_tagged(&mut sink, "t.other", b"ok").expect("clean tag");
        }

        #[test]
        fn read_faults_fire_in_sequence() {
            let _lock = serialize_tests();
            let mut plan = FaultPlan::new();
            plan.flip_on_read("t.read", 1, 1, 0x80)
                .short_read("t.read", 2)
                .fail_read("t.read", 3);
            let guard = plan.arm();
            let src = [1u8, 2, 3, 4];
            let mut buf = [0u8; 4];
            read_exact_tagged(&mut &src[..], "t.read", &mut buf).expect("flip is silent");
            assert_eq!(buf, [1, 0x82, 3, 4], "bit flipped in place");
            let err = read_exact_tagged(&mut &src[..], "t.read", &mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
            assert!(read_exact_tagged(&mut &src[..], "t.read", &mut buf).is_err());
            assert_eq!(guard.fired(), 3);
        }

        #[test]
        fn disarming_stops_injection() {
            let _lock = serialize_tests();
            let mut plan = FaultPlan::new();
            plan.fail_write("t.gone", 1);
            drop(plan.arm());
            let mut sink = Vec::new();
            write_all_tagged(&mut sink, "t.gone", b"ok").expect("disarmed");
        }
    }

    #[cfg(not(feature = "faults"))]
    mod disabled {
        use super::*;

        #[test]
        fn armed_plans_are_inert_without_the_feature() {
            let _lock = serialize_tests();
            // Schedule every kind of fault against every upcoming op;
            // none may fire — the feature is compiled out.
            let mut plan = FaultPlan::new();
            for nth in 1..=4 {
                plan.fail_write("t.x", nth);
                plan.tear_write("t.x", nth, 0);
                plan.fail_read("t.x", nth);
                plan.flip_on_read("t.x", nth, 0, 0xFF);
            }
            let guard = plan.arm();
            let mut sink = Vec::new();
            for _ in 0..4 {
                write_all_tagged(&mut sink, "t.x", b"ab").expect("inert");
            }
            assert_eq!(sink, b"abababab");
            let mut buf = [0u8; 2];
            for _ in 0..4 {
                read_exact_tagged(&mut &b"cd"[..], "t.x", &mut buf).expect("inert");
                assert_eq!(&buf, b"cd");
            }
            assert_eq!(guard.fired(), 0);
            assert_eq!(std::mem::size_of::<FaultGuard>(), 0, "zero-sized stub");
        }
    }
}
