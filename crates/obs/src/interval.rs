//! Interval snapshot deltas: the difference between two [`Snapshot`]s
//! plus the wall-clock span between them, turned into per-interval
//! deltas and `*.per_sec` rates alongside the cumulative totals.
//!
//! This is the substrate of live telemetry: the metrics endpoint diffs
//! the registry against the previous scrape, and watch mode diffs it
//! every refresh. The delta math is ungated (pure arithmetic on
//! snapshots, which exist in both feature configurations); the
//! [`IntervalTracker`] that pairs a previous snapshot with an
//! [`Instant`] collapses to a ZST when instrumentation is off.
//!
//! # Monotone-reset handling
//!
//! Counters, phase aggregates, histogram counts, and gauge *peaks* are
//! monotone between registry resets. When a current value is *below*
//! its predecessor the registry was reset in between (`--stats` does
//! this at command start); the delta is then taken from zero — the
//! cumulative value *is* the interval's activity — and the reset is
//! counted in [`IntervalDelta::resets`] so consumers can annotate the
//! discontinuity instead of reporting a bogus negative rate.

use std::collections::BTreeMap;

use crate::quantile::Quantiles;
use crate::snapshot::Snapshot;

/// One counter's interval view.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CounterDelta {
    /// Cumulative value at the end of the interval.
    pub total: u64,
    /// Increase over the interval (the full value after a reset).
    pub delta: u64,
    /// `delta` per second of interval wall-clock.
    pub per_sec: f64,
}

/// One phase timer's interval view.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseDelta {
    /// Cumulative wall-clock nanoseconds at the end of the interval.
    pub nanos_total: u64,
    /// Nanoseconds accumulated over the interval.
    pub nanos_delta: u64,
    /// Cumulative span count at the end of the interval.
    pub calls_total: u64,
    /// Spans recorded over the interval.
    pub calls_delta: u64,
    /// `calls_delta` per second of interval wall-clock.
    pub calls_per_sec: f64,
}

/// One histogram's interval view. Quantiles are over the *cumulative*
/// distribution — per-interval quantiles would need bucket subtraction
/// across a reset boundary, and the cumulative estimate is what a
/// long-running service's p99 means anyway.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramDelta {
    /// Cumulative recorded-value count at the end of the interval.
    pub count_total: u64,
    /// Values recorded over the interval.
    pub count_delta: u64,
    /// Cumulative sum of recorded values.
    pub sum_total: u64,
    /// Sum recorded over the interval.
    pub sum_delta: u64,
    /// `count_delta` per second of interval wall-clock.
    pub per_sec: f64,
    /// p50/p95/p99 of the cumulative distribution (`None` only for a
    /// pathological all-zero-bucket snapshot).
    pub quantiles: Option<Quantiles>,
}

/// One gauge's interval view. `current` is a level, not a monotone
/// accumulator: its delta is signed and a falling level is normal
/// operation, not a reset. The peak *is* monotone — a peak moving
/// backwards marks a registry reset.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GaugeDelta {
    /// Level at the end of the interval.
    pub current: u64,
    /// Signed level change over the interval.
    pub delta: i64,
    /// Peak level at the end of the interval.
    pub peak: u64,
}

/// The difference between two snapshots over a wall-clock interval.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntervalDelta {
    /// Wall-clock nanoseconds between the two snapshots.
    pub elapsed_nanos: u64,
    /// Monotone values observed moving backwards (registry resets
    /// between the snapshots), including metrics that vanished outright.
    pub resets: u64,
    /// Counter name → interval view.
    pub counters: BTreeMap<String, CounterDelta>,
    /// Phase name → interval view.
    pub phases: BTreeMap<String, PhaseDelta>,
    /// Histogram name → interval view.
    pub histograms: BTreeMap<String, HistogramDelta>,
    /// Gauge name → interval view.
    pub gauges: BTreeMap<String, GaugeDelta>,
}

impl IntervalDelta {
    /// True when the end snapshot recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.phases.is_empty()
            && self.histograms.is_empty()
            && self.gauges.is_empty()
    }

    /// Interval length in (fractional) seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_nanos as f64 / 1e9
    }
}

/// Events per second over `elapsed_nanos` of wall clock (0 for an
/// instantaneous interval — a rate over no time is meaningless, and 0
/// keeps downstream JSON finite).
fn rate(delta: u64, elapsed_nanos: u64) -> f64 {
    if elapsed_nanos == 0 {
        0.0
    } else {
        delta as f64 * 1e9 / elapsed_nanos as f64
    }
}

/// Diffs `cur` against `prev` over `elapsed_nanos` of wall clock. Rows
/// are keyed by `cur`'s metrics; a metric present only in `prev`
/// (dropped by a registry reset) contributes to
/// [`IntervalDelta::resets`] but produces no row.
pub fn delta(prev: &Snapshot, cur: &Snapshot, elapsed_nanos: u64) -> IntervalDelta {
    let mut out = IntervalDelta {
        elapsed_nanos,
        ..IntervalDelta::default()
    };
    for (name, &total) in &cur.counters {
        let before = prev.counters.get(name).copied().unwrap_or(0);
        let d = if total < before {
            out.resets += 1;
            total
        } else {
            total - before
        };
        out.counters.insert(
            name.clone(),
            CounterDelta {
                total,
                delta: d,
                per_sec: rate(d, elapsed_nanos),
            },
        );
    }
    for (name, p) in &cur.phases {
        let before = prev.phases.get(name).copied().unwrap_or_default();
        let (nanos_delta, calls_delta) = if p.nanos < before.nanos || p.calls < before.calls {
            out.resets += 1;
            (p.nanos, p.calls)
        } else {
            (p.nanos - before.nanos, p.calls - before.calls)
        };
        out.phases.insert(
            name.clone(),
            PhaseDelta {
                nanos_total: p.nanos,
                nanos_delta,
                calls_total: p.calls,
                calls_delta,
                calls_per_sec: rate(calls_delta, elapsed_nanos),
            },
        );
    }
    for (name, h) in &cur.histograms {
        let before = prev.histograms.get(name);
        let (before_count, before_sum) = before.map_or((0, 0), |b| (b.count, b.sum));
        let (count_delta, sum_delta) = if h.count < before_count || h.sum < before_sum {
            out.resets += 1;
            (h.count, h.sum)
        } else {
            (h.count - before_count, h.sum - before_sum)
        };
        out.histograms.insert(
            name.clone(),
            HistogramDelta {
                count_total: h.count,
                count_delta,
                sum_total: h.sum,
                sum_delta,
                per_sec: rate(count_delta, elapsed_nanos),
                quantiles: h.quantiles(),
            },
        );
    }
    for (name, g) in &cur.gauges {
        let before = prev.gauges.get(name).copied().unwrap_or_default();
        if g.peak < before.peak {
            out.resets += 1;
        }
        out.gauges.insert(
            name.clone(),
            GaugeDelta {
                current: g.current,
                // SOUND: gauge levels fit i64 (the live gauge stores an
                // AtomicI64), so the signed difference cannot wrap.
                delta: g.current as i64 - before.current as i64,
                peak: g.peak,
            },
        );
    }
    // Metrics that vanished entirely are reset evidence too.
    out.resets += prev
        .counters
        .keys()
        .filter(|k| !cur.counters.contains_key(*k))
        .count() as u64;
    out.resets += prev
        .phases
        .keys()
        .filter(|k| !cur.phases.contains_key(*k))
        .count() as u64;
    out.resets += prev
        .histograms
        .keys()
        .filter(|k| !cur.histograms.contains_key(*k))
        .count() as u64;
    out.resets += prev
        .gauges
        .keys()
        .filter(|k| !cur.gauges.contains_key(*k))
        .count() as u64;
    out
}

impl Snapshot {
    /// Diffs `self` (the later snapshot) against `prev` over
    /// `elapsed_nanos` of wall clock — see [`delta`].
    pub fn delta(&self, prev: &Snapshot, elapsed_nanos: u64) -> IntervalDelta {
        delta(prev, self, elapsed_nanos)
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use std::time::Instant;

    use super::{delta, IntervalDelta};
    use crate::snapshot::Snapshot;

    /// Marker literal for watch-mode output; compiled into enabled
    /// binaries only, so CI can grep disabled binaries for its absence.
    pub(crate) const WATCH_MARKER: &str = "ossm-livetop";

    /// Pairs the previous registry snapshot with the instant it was
    /// taken; [`IntervalTracker::tick`] yields the delta since then and
    /// advances the baseline.
    pub struct IntervalTracker {
        prev: Snapshot,
        at: Instant,
    }

    impl IntervalTracker {
        /// A tracker whose first [`tick`](IntervalTracker::tick) covers
        /// everything since construction (empty baseline).
        pub fn new() -> Self {
            IntervalTracker {
                prev: Snapshot::default(),
                at: Instant::now(),
            }
        }

        /// Snapshots the registry, diffs it against the previous tick,
        /// and makes this snapshot the new baseline.
        pub fn tick(&mut self) -> IntervalDelta {
            let cur = crate::registry().snapshot();
            let elapsed = u64::try_from(self.at.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let out = delta(&self.prev, &cur, elapsed);
            self.prev = cur;
            self.at = Instant::now();
            out
        }
    }

    impl Default for IntervalTracker {
        fn default() -> Self {
            IntervalTracker::new()
        }
    }

    impl IntervalDelta {
        /// Renders one watch-mode frame: every metric's total, interval
        /// delta, and per-second rate, plus histogram quantiles.
        pub fn render_watch(&self) -> String {
            use std::fmt::Write as _;

            let mut out = format!(
                "-- live ({WATCH_MARKER}) interval={:.2}s resets={} --\n",
                self.elapsed_secs(),
                self.resets,
            );
            if !self.counters.is_empty() {
                out.push_str("counters (total / interval / per_sec)\n");
                let width = self.counters.keys().map(String::len).max().unwrap_or(0);
                for (name, c) in &self.counters {
                    let _ = writeln!(
                        out,
                        "  {name:<width$}  {:>10}  {:>8}  {:>10.1}/s",
                        c.total, c.delta, c.per_sec,
                    );
                }
            }
            if !self.phases.is_empty() {
                out.push_str("phases (calls / interval calls / per_sec)\n");
                let width = self.phases.keys().map(String::len).max().unwrap_or(0);
                for (name, p) in &self.phases {
                    let _ = writeln!(
                        out,
                        "  {name:<width$}  {:>10}  {:>8}  {:>10.1}/s",
                        p.calls_total, p.calls_delta, p.calls_per_sec,
                    );
                }
            }
            if !self.histograms.is_empty() {
                out.push_str("histograms (count / interval / per_sec / p50 / p95 / p99)\n");
                let width = self.histograms.keys().map(String::len).max().unwrap_or(0);
                for (name, h) in &self.histograms {
                    let q = h.quantiles.unwrap_or_default();
                    let _ = writeln!(
                        out,
                        "  {name:<width$}  {:>10}  {:>8}  {:>10.1}/s  {:>12.0}  {:>12.0}  {:>12.0}",
                        h.count_total, h.count_delta, h.per_sec, q.p50, q.p95, q.p99,
                    );
                }
            }
            if !self.gauges.is_empty() {
                out.push_str("gauges (current / interval delta / peak)\n");
                let width = self.gauges.keys().map(String::len).max().unwrap_or(0);
                for (name, g) in &self.gauges {
                    let _ = writeln!(
                        out,
                        "  {name:<width$}  {:>10}  {:>+8}  {:>10}",
                        g.current, g.delta, g.peak,
                    );
                }
            }
            out
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::IntervalDelta;

    /// Disabled stand-in for the live `IntervalTracker`: a ZST whose
    /// ticks are always empty.
    pub struct IntervalTracker;

    impl IntervalTracker {
        /// Does nothing (instrumentation disabled).
        #[inline(always)]
        pub fn new() -> Self {
            IntervalTracker
        }

        /// Always an empty delta (instrumentation disabled).
        #[inline(always)]
        pub fn tick(&mut self) -> IntervalDelta {
            IntervalDelta::default()
        }
    }

    impl Default for IntervalTracker {
        fn default() -> Self {
            IntervalTracker::new()
        }
    }

    impl IntervalDelta {
        /// Always empty (instrumentation disabled) — and free of the
        /// watch-marker literal, which must not reach disabled binaries.
        #[inline(always)]
        pub fn render_watch(&self) -> String {
            String::new()
        }
    }
}

pub use imp::IntervalTracker;
