//! Runs every reproduced table and figure in EXPERIMENTS.md order and
//! prints one consolidated markdown report.
//!
//! Usage: `cargo run -p ossm-bench --release --bin all-experiments --
//! [--smoke] [--pages=…] [--items=…] [--obs-out=BENCH_obs.json]`
//!
//! `--smoke` runs everything at tiny scale (seconds, debug-build friendly);
//! default scale matches the per-binary defaults.
//!
//! Alongside the markdown, the run writes `BENCH_obs.json` (override with
//! `--obs-out=PATH`, disable with `--obs-out=`): one self-describing JSON
//! line per speedup row, followed by the instrumentation snapshot
//! (counters, phase timings, histograms) — so the perf record says *why* a
//! run was fast, not just how fast.

use ossm_bench::cli::Options;
use ossm_bench::experiments::{fig4, fig5, fig6, sec7, smoke_options};
use ossm_obs::{Reporter, StatsFormat};

fn main() {
    let opts = Options::from_env();
    let obs_out: String = opts.get("obs-out", "BENCH_obs.json".to_owned());
    let opts = if opts.flag("smoke") {
        smoke_options()
    } else {
        opts
    };
    ossm_obs::registry().reset();
    println!("# OSSM reproduction — experiment report\n");
    let mut rows = Vec::new();
    for section in [fig4(&opts), fig5(&opts), fig6(&opts), sec7(&opts)] {
        println!("{}", section.markdown);
        rows.extend(section.rows);
    }
    if obs_out.is_empty() {
        return;
    }
    let mut body = String::new();
    for row in &rows {
        body.push_str(&row.to_json_row());
        body.push('\n');
    }
    body.push_str(&Reporter::new(StatsFormat::Json).render(&ossm_obs::registry().snapshot()));
    match std::fs::write(&obs_out, body) {
        Ok(()) => eprintln!("wrote instrumentation snapshot -> {obs_out}"),
        Err(e) => eprintln!("could not write {obs_out}: {e}"),
    }
}
