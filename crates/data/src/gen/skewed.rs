//! Skewed "seasonal" synthetic generator.
//!
//! The paper's third data set has skewed seasonal behaviour: "50 % of the
//! items have a higher probability of appearing in the first half of the
//! collection of transactions, and the other 50 % have a higher probability
//! of appearing in the second half" — e.g. a supermarket's summer-to-winter
//! transactions. The OSSM thrives on exactly this kind of variability
//! ("the more skewed the data, the more effective the OSSM is", Section 3).
//!
//! The generator draws each transaction's size from a Poisson distribution
//! and fills it by weighted sampling without replacement, where an item's
//! weight is its base popularity (exponentially distributed, so a few items
//! are much more popular than the rest) times a seasonal boost that depends
//! on the transaction's position in the collection.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::dist::{exponential, poisson};
use crate::item::Itemset;
use crate::transaction::Dataset;

/// Parameters of the seasonal generator.
#[derive(Clone, Debug)]
pub struct SkewedConfig {
    /// Number of transactions to generate.
    pub num_transactions: usize,
    /// Size of the item domain.
    pub num_items: usize,
    /// Average transaction length.
    pub avg_transaction_len: f64,
    /// Multiplier applied to an item's weight during its own season.
    /// `1.0` means no seasonality; the paper's data is strongly seasonal,
    /// so the default is large.
    pub season_boost: f64,
    /// Number of seasons the collection is split into. The paper uses two
    /// halves; more seasons produce more distinct per-segment behaviour.
    pub num_seasons: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SkewedConfig {
    fn default() -> Self {
        SkewedConfig {
            num_transactions: 10_000,
            num_items: 1000,
            avg_transaction_len: 10.0,
            season_boost: 8.0,
            num_seasons: 2,
            seed: 0x0005_EA50_u64,
        }
    }
}

impl SkewedConfig {
    /// A small configuration for unit tests and examples.
    pub fn small() -> Self {
        SkewedConfig {
            num_transactions: 1000,
            num_items: 100,
            ..SkewedConfig::default()
        }
    }

    /// Generates the dataset described by this configuration.
    pub fn generate(&self) -> Dataset {
        generate(self)
    }
}

/// Runs the generator. Prefer [`SkewedConfig::generate`].
pub fn generate(cfg: &SkewedConfig) -> Dataset {
    assert!(cfg.num_items > 0, "item domain must be non-empty");
    assert!(cfg.num_seasons > 0, "need at least one season");
    assert!(cfg.avg_transaction_len >= 1.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Base popularity: exponential, so supports span a wide range — items
    // land on both sides of any support threshold (bubble-list material).
    let base: Vec<f64> = (0..cfg.num_items)
        .map(|_| exponential(&mut rng, 1.0) + 0.05)
        .collect();
    // Item i belongs to season i % num_seasons; its weight is boosted while
    // the collection is inside that season.
    let mut transactions = Vec::with_capacity(cfg.num_transactions);
    let mut weights = vec![0.0f64; cfg.num_items];
    for t in 0..cfg.num_transactions {
        let season = t * cfg.num_seasons / cfg.num_transactions.max(1); // current season index
        for (i, w) in weights.iter_mut().enumerate() {
            let boost = if i % cfg.num_seasons == season {
                cfg.season_boost
            } else {
                1.0
            };
            *w = base[i] * boost;
        }
        let len =
            ((poisson(&mut rng, cfg.avg_transaction_len - 1.0) + 1) as usize).min(cfg.num_items);
        let mut picked: Vec<u32> = Vec::with_capacity(len);
        // Weighted sampling without replacement: zero out picked weights.
        let mut local = weights.clone();
        for _ in 0..len {
            let total: f64 = local.iter().sum();
            if total <= 0.0 {
                break;
            }
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = cfg.num_items - 1;
            for (i, &w) in local.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            picked.push(chosen as u32);
            local[chosen] = 0.0;
        }
        transactions.push(Itemset::new(picked));
    }
    Dataset::new(cfg.num_items, transactions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SkewedConfig {
            num_transactions: 300,
            ..SkewedConfig::small()
        };
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn shape_matches_configuration() {
        let cfg = SkewedConfig::small();
        let d = cfg.generate();
        assert_eq!(d.len(), cfg.num_transactions);
        assert_eq!(d.num_items(), cfg.num_items);
        let avg = d.transactions().iter().map(Itemset::len).sum::<usize>() as f64 / d.len() as f64;
        assert!(
            (avg - cfg.avg_transaction_len).abs() < 2.0,
            "avg basket {avg}"
        );
    }

    #[test]
    fn seasonality_shifts_item_frequencies_between_halves() {
        let cfg = SkewedConfig {
            num_transactions: 2000,
            ..SkewedConfig::small()
        };
        let d = cfg.generate();
        let half = d.len() / 2;
        let mut first = vec![0u64; cfg.num_items];
        let mut second = vec![0u64; cfg.num_items];
        for (i, t) in d.transactions().iter().enumerate() {
            let counts = if i < half { &mut first } else { &mut second };
            for item in t.items() {
                counts[item.index()] += 1;
            }
        }
        // Season-0 items (even ids) should collectively be more frequent in
        // the first half, season-1 items in the second half.
        let even_first: u64 = (0..cfg.num_items).step_by(2).map(|i| first[i]).sum();
        let even_second: u64 = (0..cfg.num_items).step_by(2).map(|i| second[i]).sum();
        let odd_first: u64 = (1..cfg.num_items).step_by(2).map(|i| first[i]).sum();
        let odd_second: u64 = (1..cfg.num_items).step_by(2).map(|i| second[i]).sum();
        assert!(
            even_first as f64 > 1.5 * even_second as f64,
            "season-0 items not boosted in first half: {even_first} vs {even_second}"
        );
        assert!(
            odd_second as f64 > 1.5 * odd_first as f64,
            "season-1 items not boosted in second half: {odd_first} vs {odd_second}"
        );
    }

    #[test]
    fn single_season_is_unskewed() {
        let cfg = SkewedConfig {
            num_transactions: 2000,
            num_seasons: 1,
            ..SkewedConfig::small()
        };
        let d = cfg.generate();
        let half = d.len() / 2;
        let mut first = 0u64;
        let mut second = 0u64;
        for (i, t) in d.transactions().iter().enumerate() {
            if i < half {
                first += t.len() as u64;
            } else {
                second += t.len() as u64;
            }
        }
        let ratio = first as f64 / second as f64;
        assert!(
            (ratio - 1.0).abs() < 0.1,
            "halves should look alike, ratio {ratio}"
        );
    }
}
