//! Interactive exploration: one OSSM, many thresholds.
//!
//! "Knowledge discovery is typically an iterative process: one first
//! computes certain patterns, investigates them, and then re-computes
//! using perhaps different thresholds. In this context, an advantage of
//! the OSSM is that it is a fixed structure that can be computed once at
//! compile-time, and can be used regardless of how the support threshold
//! is changed dynamically" (Section 3). This example builds the OSSM once
//! — with a bubble list tuned to a *different* threshold than any query
//! uses, as in Figure 6 — and then sweeps query thresholds.
//!
//! Run with: `cargo run -p ossm --release --example explore_thresholds`

use ossm::prelude::*;

fn main() {
    let dataset = QuestConfig {
        num_transactions: 15_000,
        num_items: 400,
        ..QuestConfig::default()
    }
    .generate();
    let store = PageStore::pack_default(dataset);

    // Compile-time: one OSSM, bubble list built at 0.25 % support.
    let (ossm, report) = OssmBuilder::new(60)
        .strategy(Strategy::RandomGreedy { n_mid: 120 })
        .bubble(0.0025, 25.0)
        .build(&store);
    println!(
        "one-time OSSM construction: {} segments, {:?}, {} bytes\n",
        report.num_segments, report.segmentation_time, report.memory_bytes
    );

    // Exploration-time: the analyst tightens and loosens the threshold;
    // the same OSSM serves every query.
    let apriori = Apriori::new().with_backend(CountingBackend::HashTree);
    println!(
        "{:>9} | {:>9} | {:>14} | {:>14} | {:>8}",
        "minsup", "patterns", "C2 w/o OSSM", "C2 with OSSM", "speedup"
    );
    for fraction in [0.03, 0.02, 0.015, 0.01, 0.0075, 0.005] {
        let min_support = store.dataset().absolute_threshold(fraction);
        let without = apriori.mine(store.dataset(), min_support);
        let with = apriori.mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm));
        assert_eq!(
            without.patterns, with.patterns,
            "answers must agree at {fraction}"
        );
        println!(
            "{:>8.2}% | {:>9} | {:>14} | {:>14} | {:>7.2}x",
            fraction * 100.0,
            with.patterns.len(),
            without.metrics.candidate_2_itemsets_counted(),
            with.metrics.candidate_2_itemsets_counted(),
            without.metrics.elapsed.as_secs_f64() / with.metrics.elapsed.as_secs_f64().max(1e-9)
        );
    }
    println!("\nsame structure, every threshold — the OSSM is query-independent.");
}
