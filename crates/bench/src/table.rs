//! Fixed-width table printing for experiment binaries.
//!
//! Every figure/table binary prints the same rows/series the paper reports;
//! this module keeps the formatting consistent and markdown-pasteable
//! (EXPERIMENTS.md embeds the output verbatim).

use std::time::Duration;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header's.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Renders as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |", sep.join(" | ")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        print!("{}", self.to_markdown());
    }
}

/// Formats a duration the way the paper's tables do (seconds with a sane
/// precision for the magnitude).
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 0.001 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.0} µs", s * 1e6)
    }
}

/// Formats a ratio like "48.3x".
pub fn fmt_speedup(x: f64) -> String {
    if x.is_infinite() {
        "∞".to_owned()
    } else if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Formats a fraction as a percentage.
pub fn fmt_percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.2} MB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(["algo", "speedup"]);
        t.row(["Greedy", "5.9x"]).row(["RC", "4.9x"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| algo   | speedup |\n"));
        assert!(md.contains("| Greedy | 5.9x    |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn duration_formats_scale() {
        assert_eq!(fmt_duration(Duration::from_secs(150)), "150 s");
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.50 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7 µs");
    }

    #[test]
    fn misc_formats() {
        assert_eq!(fmt_speedup(49.6), "49.60x");
        assert_eq!(fmt_speedup(f64::INFINITY), "∞");
        assert_eq!(fmt_percent(0.034), "3.4%");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(300 * 1024), "300.0 KB");
        assert_eq!(fmt_bytes(2 * 1024 * 1024), "2.00 MB");
    }
}
