//! Event sequences and window transactions — the episode framing.
//!
//! "Transactions may come in different forms. … In the case of episodes, a
//! transaction corresponds to a sequence of events in a sliding time
//! window" (footnote 1 of the paper, citing Mannila–Toivonen–Verkamo).
//! This module provides that bridge: an [`EventSequence`] of timestamped
//! typed events is cut into fixed-width windows, and each window's set of
//! distinct event types becomes one transaction. Mining frequent itemsets
//! over the resulting [`crate::Dataset`] is exactly *parallel episode*
//! discovery, with the episode's frequency being the number of windows
//! that contain it — and the OSSM applies unchanged.

use crate::item::Itemset;
use crate::transaction::Dataset;

/// One timestamped event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Event time (arbitrary integer clock).
    pub time: u64,
    /// Event type, in `0..num_kinds` (the item domain).
    pub kind: u32,
}

/// A time-ordered sequence of typed events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventSequence {
    num_kinds: usize,
    events: Vec<Event>,
}

impl EventSequence {
    /// Builds a sequence over event types `0..num_kinds`, sorting events
    /// by time (stable for equal times).
    ///
    /// # Panics
    /// Panics if any event's kind is outside the domain.
    pub fn new(num_kinds: usize, mut events: Vec<Event>) -> Self {
        for e in &events {
            assert!(
                (e.kind as usize) < num_kinds,
                "event kind {} outside domain 0..{num_kinds}",
                e.kind
            );
        }
        events.sort_by_key(|e| e.time);
        EventSequence { num_kinds, events }
    }

    /// Number of event types.
    pub fn num_kinds(&self) -> usize {
        self.num_kinds
    }

    /// The events in time order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Time span `[first, last]` of the sequence, if non-empty.
    pub fn span(&self) -> Option<(u64, u64)> {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => Some((a.time, b.time)),
            _ => None,
        }
    }

    /// Cuts the sequence into windows of `width` time units, sliding by
    /// `step`, and returns one transaction per window — the set of
    /// distinct event types whose events fall in `[start, start + width)`.
    /// Windows are placed at `first, first + step, …` while they still
    /// overlap the sequence span. Empty windows produce empty
    /// transactions, preserving window counts (frequencies are fractions
    /// of *windows*, not of events).
    ///
    /// `step = width` gives tumbling windows; `step < width` the
    /// overlapping windows of the WINEPI setting.
    ///
    /// # Panics
    /// Panics if `width == 0` or `step == 0`.
    pub fn windows(&self, width: u64, step: u64) -> Dataset {
        assert!(width > 0, "window width must be positive");
        assert!(step > 0, "window step must be positive");
        let Some((first, last)) = self.span() else {
            return Dataset::empty(self.num_kinds);
        };
        let mut transactions = Vec::new();
        let mut start = first;
        let mut lo = 0usize; // index of first event with time >= start
        loop {
            // Advance the left edge.
            while lo < self.events.len() && self.events[lo].time < start {
                lo += 1;
            }
            // Collect kinds inside [start, start + width).
            let mut kinds: Vec<u32> = Vec::new();
            let mut i = lo;
            while i < self.events.len() && self.events[i].time < start + width {
                kinds.push(self.events[i].kind);
                i += 1;
            }
            transactions.push(Itemset::new(kinds));
            if start > last {
                break;
            }
            start += step;
        }
        // The loop emits one trailing window starting past `last`; drop it
        // unless it is the only window (degenerate single-instant span).
        if transactions.len() > 1 {
            transactions.pop();
        }
        Dataset::new(self.num_kinds, transactions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, kind: u32) -> Event {
        Event { time, kind }
    }

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn events_are_time_sorted() {
        let s = EventSequence::new(3, vec![ev(5, 1), ev(1, 0), ev(3, 2)]);
        let times: Vec<u64> = s.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1, 3, 5]);
        assert_eq!(s.span(), Some((1, 5)));
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn rejects_out_of_domain_kinds() {
        EventSequence::new(2, vec![ev(0, 5)]);
    }

    #[test]
    fn tumbling_windows_partition_the_span() {
        // Events at t = 0..6, one kind per time unit (kind = t % 3).
        let events: Vec<Event> = (0..6).map(|t| ev(t, (t % 3) as u32)).collect();
        let s = EventSequence::new(3, events);
        let d = s.windows(2, 2);
        // Windows [0,2), [2,4), [4,6): kinds {0,1}, {2,0}, {1,2}.
        assert_eq!(d.len(), 3);
        assert_eq!(d.transaction(0), &set(&[0, 1]));
        assert_eq!(d.transaction(1), &set(&[0, 2]));
        assert_eq!(d.transaction(2), &set(&[1, 2]));
    }

    #[test]
    fn sliding_windows_overlap() {
        let s = EventSequence::new(2, vec![ev(0, 0), ev(1, 1), ev(2, 0)]);
        let d = s.windows(2, 1);
        // Starts 0, 1, 2: {0,1}, {1,0}, {0}.
        assert_eq!(d.len(), 3);
        assert_eq!(d.transaction(0), &set(&[0, 1]));
        assert_eq!(d.transaction(1), &set(&[0, 1]));
        assert_eq!(d.transaction(2), &set(&[0]));
    }

    #[test]
    fn empty_windows_are_kept() {
        // A gap between t=0 and t=10 produces empty middle windows.
        let s = EventSequence::new(1, vec![ev(0, 0), ev(10, 0)]);
        let d = s.windows(2, 2);
        assert_eq!(d.len(), 6, "windows at 0,2,4,6,8,10");
        assert!(d.transaction(1).is_empty());
        assert_eq!(d.support(&set(&[0])), 2);
    }

    #[test]
    fn empty_sequence_yields_empty_dataset() {
        let s = EventSequence::new(4, vec![]);
        assert_eq!(s.windows(5, 5), Dataset::empty(4));
        assert_eq!(s.span(), None);
    }

    #[test]
    fn single_instant_span_yields_one_window() {
        let s = EventSequence::new(2, vec![ev(7, 1), ev(7, 0)]);
        let d = s.windows(3, 3);
        assert_eq!(d.len(), 1);
        assert_eq!(d.transaction(0), &set(&[0, 1]));
    }

    #[test]
    fn episode_frequency_is_window_count() {
        // Kinds 0 and 1 co-fire at t=0 and t=4; kind 2 fires alone.
        let s = EventSequence::new(3, vec![ev(0, 0), ev(0, 1), ev(2, 2), ev(4, 0), ev(4, 1)]);
        let d = s.windows(1, 1);
        assert_eq!(
            d.support(&set(&[0, 1])),
            2,
            "parallel episode {{0,1}} in 2 windows"
        );
        assert_eq!(d.support(&set(&[2])), 1);
        assert_eq!(d.support(&set(&[0, 2])), 0);
    }
}
