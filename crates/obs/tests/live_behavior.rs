//! Behavior of the live registry (compiled only with `--features enabled`,
//! which workspace builds activate through the consumer crates' default
//! `obs` features).
#![cfg(feature = "enabled")]

use ossm_obs::{registry, Counter, Histogram};

// Statics shared by this test binary; each test uses its own so parallel
// execution cannot interfere.
static MONO: Counter = Counter::new("test.monotone");
static THREADED: Counter = Counter::new("test.threaded");
static SLACK: Histogram = Histogram::new("test.slack");
static DET: Counter = Counter::new("test.determinism");

#[test]
fn counters_are_monotone() {
    let mut last = MONO.get();
    for _ in 0..100 {
        MONO.incr();
        let now = MONO.get();
        assert!(now > last, "a counter can only grow");
        last = now;
    }
    MONO.add(5);
    assert_eq!(MONO.get(), last + 5);
}

#[test]
fn concurrent_increments_are_all_counted() {
    let before = THREADED.get();
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                for _ in 0..1000 {
                    THREADED.incr();
                }
            });
        }
    });
    assert_eq!(THREADED.get(), before + 8 * 1000, "no lost updates");
}

#[test]
fn histogram_snapshot_respects_bucket_boundaries() {
    // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4..8 → [4,8).
    for v in [0u64, 1, 2, 3, 4, 5, 6, 7] {
        SLACK.record(v);
    }
    let snap = registry().snapshot();
    let h = snap
        .histograms
        .get("test.slack")
        .expect("histogram registered");
    assert_eq!(h.count, 8);
    assert_eq!(h.sum, 28);
    let bucket = |lo: u64| h.buckets.iter().find(|&&(l, _)| l == lo).map(|&(_, n)| n);
    assert_eq!(bucket(0), Some(1), "zeros");
    assert_eq!(bucket(1), Some(1), "[1,2)");
    assert_eq!(bucket(2), Some(2), "[2,4)");
    assert_eq!(bucket(4), Some(4), "[4,8)");
    assert_eq!(bucket(8), None, "nothing reached [8,16)");
}

#[test]
fn snapshots_are_deterministic_when_nothing_records() {
    DET.add(3);
    let scope = registry().scope("test.det");
    scope.add("dynamic", 2);
    drop(scope.phase("span"));
    // Restrict the comparison to this test's own names: other tests in the
    // binary record concurrently.
    let mine = |snap: &ossm_obs::Snapshot| {
        (
            snap.counters
                .iter()
                .filter(|(k, _)| k.starts_with("test.det"))
                .map(|(k, v)| (k.clone(), *v))
                .collect::<Vec<_>>(),
            snap.phases
                .iter()
                .filter(|(k, _)| k.starts_with("test.det"))
                .map(|(k, p)| (k.clone(), p.nanos, p.calls))
                .collect::<Vec<_>>(),
        )
    };
    let a = mine(&registry().snapshot());
    let b = mine(&registry().snapshot());
    assert_eq!(a, b, "identical state must snapshot identically");
    assert!(a.0.iter().any(|(k, v)| k == "test.determinism" && *v >= 3));
    assert!(a.0.iter().any(|(k, v)| k == "test.det.dynamic" && *v >= 2));
    assert!(a
        .1
        .iter()
        .any(|(k, _, calls)| k == "test.det.span" && *calls >= 1));
}

#[test]
#[allow(clippy::assertions_on_constants)] // the constant IS the subject under test
fn enabled_constant_reflects_the_feature() {
    assert!(ossm_obs::ENABLED);
}
