//@path: crates/data/src/rogue_format.rs
//@expect: R5
//! Seeded violation for rule R5: an `OSSM…` format magic spelled out in
//! a file that is not its registered definition site (in fixture runs
//! the manifest is empty, so any `b"OSSM…"` literal is unregistered —
//! the same diagnostic a duplicated magic gets on a full-tree run).

pub const FORKED_MAGIC: &[u8; 8] = b"OSSMPAGE";
