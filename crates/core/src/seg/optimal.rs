//! Exact (brute-force) constrained segmentation, for small inputs.
//!
//! Example 4 of the paper illustrates why the optimal segmentation "is too
//! expensive to be computed" in general: the number of ways to form
//! `n_user` segments from `p` pages explodes (25 ways for p = 5 into 3,
//! already 301 for p = 7). For *small* `p`, though, exhaustive search is
//! perfectly feasible — and invaluable as an oracle: the heuristic-quality
//! tests and the `segmentation` ablation bench compare Greedy/RC/Random
//! against the true optimum this module computes.
//!
//! The search enumerates set partitions of `{0..p}` into exactly `n_user`
//! non-empty blocks (restricted-growth strings) and keeps the one with
//! minimal total equation-(2) loss. It also exposes the partition *count*
//! (Stirling numbers of the second kind), matching Example 4's numbers.

use crate::loss::LossCalculator;
use crate::segmentation::{Aggregate, Segmentation};

use super::{trivial, validate, SegmentationAlgorithm};

/// Exhaustive optimal segmentation.
///
/// # Panics
/// `segment` panics if the input count exceeds [`Optimal::MAX_INPUTS`]
/// (the search is Θ(Stirling2(p, n)) and meant for oracles, not
/// production use).
#[derive(Clone, Debug)]
pub struct Optimal {
    calc: LossCalculator,
}

impl Optimal {
    /// Largest input count the solver accepts (Bell(12) ≈ 4.2 M partitions
    /// — a second or two; beyond that the heuristics are the only game in
    /// town, which is the paper's point).
    pub const MAX_INPUTS: usize = 12;

    /// Creates the solver with a loss calculator.
    pub fn new(calc: LossCalculator) -> Self {
        Optimal { calc }
    }
}

impl Default for Optimal {
    fn default() -> Self {
        Optimal::new(LossCalculator::all_items())
    }
}

impl SegmentationAlgorithm for Optimal {
    fn name(&self) -> String {
        "Optimal".to_owned()
    }

    fn segment(&self, inputs: &[Aggregate], n_user: usize) -> Segmentation {
        validate(inputs, n_user);
        if let Some(t) = trivial(inputs, n_user) {
            return t;
        }
        assert!(
            inputs.len() <= Self::MAX_INPUTS,
            "exhaustive search refuses p > {} inputs (got {})",
            Self::MAX_INPUTS,
            inputs.len()
        );
        let p = inputs.len();
        let mut best: Option<(u64, Vec<usize>)> = None;
        // Enumerate restricted-growth strings a[0..p] with exactly n_user
        // distinct values: a[0] = 0, a[i] ≤ max(a[..i]) + 1.
        let mut assignment = vec![0usize; p];
        enumerate(&mut assignment, 1, 0, n_user, &mut |assignment| {
            let groups = groups_of(assignment, n_user);
            let seg = Segmentation::from_groups(groups, p);
            let loss = self.calc.segmentation_loss(inputs, &seg);
            if best.as_ref().map_or(true, |(b, _)| loss < *b) {
                best = Some((loss, assignment.to_vec()));
            }
        });
        let (_, assignment) = best.expect("n_user <= p guarantees at least one partition");
        Segmentation::from_groups(groups_of(&assignment, n_user), p)
    }
}

/// Recursive enumeration of restricted-growth strings whose final distinct
/// count is exactly `target_blocks`.
fn enumerate(
    assignment: &mut Vec<usize>,
    pos: usize,
    max_used: usize,
    target_blocks: usize,
    visit: &mut impl FnMut(&[usize]),
) {
    let p = assignment.len();
    if pos == p {
        if max_used + 1 == target_blocks {
            visit(assignment);
        }
        return;
    }
    // Not enough positions left to open the remaining blocks? Prune.
    let blocks_needed = target_blocks.saturating_sub(max_used + 1);
    if blocks_needed > p - pos {
        return;
    }
    let cap = (max_used + 1).min(target_blocks - 1);
    for b in 0..=cap {
        assignment[pos] = b;
        enumerate(assignment, pos + 1, max_used.max(b), target_blocks, visit);
    }
}

fn groups_of(assignment: &[usize], num_blocks: usize) -> Vec<Vec<usize>> {
    let mut groups = vec![Vec::new(); num_blocks];
    for (i, &b) in assignment.iter().enumerate() {
        groups[b].push(i);
    }
    groups
}

/// Stirling number of the second kind `S(p, k)`: the number of ways to
/// partition `p` inputs into exactly `k` non-empty segments — the count
/// behind Example 4 of the paper.
pub fn stirling2(p: u64, k: u64) -> u128 {
    if k == 0 {
        return u128::from(p == 0);
    }
    if k > p {
        return 0;
    }
    // S(p, k) = k·S(p−1, k) + S(p−1, k−1), built bottom-up.
    let (p, k) = (p as usize, k as usize);
    let mut row = vec![0u128; k + 1];
    row[0] = 1; // S(0, 0)
    for n in 1..=p {
        for j in (1..=k.min(n)).rev() {
            row[j] = (j as u128) * row[j] + row[j - 1];
        }
        row[0] = 0; // S(n, 0) = 0 for n ≥ 1
    }
    row[k]
}

/// Total number of candidate segmentations for `p` pages into `n_user`
/// segments (Example 4's headline number).
pub fn segmentation_count(p: u64, n_user: u64) -> u128 {
    stirling2(p, n_user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::{testutil, Greedy};

    #[test]
    fn satisfies_the_algorithm_contract() {
        testutil::check_contract(&Optimal::default());
    }

    #[test]
    fn example_4_counts() {
        // "Suppose p = 5 and n_user = 3. … there are 25 possible
        // combinations. … if p is raised to 6 and to 7, the number of
        // combinations quickly jumps to 90 and to 301."
        assert_eq!(segmentation_count(5, 3), 25);
        assert_eq!(segmentation_count(6, 3), 90);
        assert_eq!(segmentation_count(7, 3), 301);
    }

    #[test]
    fn stirling_edge_cases() {
        assert_eq!(stirling2(0, 0), 1);
        assert_eq!(stirling2(5, 0), 0);
        assert_eq!(stirling2(5, 6), 0);
        assert_eq!(stirling2(7, 7), 1);
        assert_eq!(stirling2(7, 1), 1);
        assert_eq!(stirling2(4, 2), 7);
    }

    #[test]
    fn enumeration_visits_exactly_stirling_many_partitions() {
        for (p, k) in [(4usize, 2usize), (5, 3), (6, 3), (6, 4)] {
            let mut count = 0u128;
            let mut a = vec![0usize; p];
            enumerate(&mut a, 1, 0, k, &mut |_| count += 1);
            assert_eq!(count, stirling2(p as u64, k as u64), "p={p} k={k}");
        }
    }

    #[test]
    fn finds_the_lossless_split_when_one_exists() {
        assert_eq!(testutil::two_config_loss(&Optimal::default()), 0);
    }

    #[test]
    fn optimal_never_loses_more_than_any_heuristic() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let calc = LossCalculator::all_items();
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let p = rng.gen_range(4..=8);
            let m = rng.gen_range(2..=5);
            let inputs: Vec<Aggregate> = (0..p)
                .map(|_| {
                    let v: Vec<u64> = (0..m).map(|_| rng.gen_range(0..50)).collect();
                    let n = v.iter().sum();
                    Aggregate::new(v, n)
                })
                .collect();
            let n_user = rng.gen_range(2..p);
            let opt = calc.segmentation_loss(&inputs, &Optimal::default().segment(&inputs, n_user));
            for heuristic in [
                &Greedy::default() as &dyn SegmentationAlgorithm,
                &crate::seg::RandomClosest::default(),
                &crate::seg::Random::default(),
            ] {
                let h = calc.segmentation_loss(&inputs, &heuristic.segment(&inputs, n_user));
                assert!(
                    opt <= h,
                    "trial {trial}: optimal {opt} > {} {h}",
                    heuristic.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "refuses p >")]
    fn rejects_oversized_inputs() {
        let inputs: Vec<Aggregate> = (0..13).map(|i| Aggregate::new(vec![i], 1)).collect();
        Optimal::default().segment(&inputs, 2);
    }
}
