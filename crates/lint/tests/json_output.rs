//! The JSON-lines report must follow the `ossm_obs` reporter
//! conventions — every line an object with a `"type"` discriminator —
//! and round-trip through `ossm_obs::json`, the same parser the
//! regression gate uses on `BENCH_obs.json`.

use ossm_lint::diag::{json_report, Diagnostic};
use ossm_obs::json;

fn sample_diags() -> Vec<Diagnostic> {
    vec![
        Diagnostic {
            rule: "R1",
            path: "crates/data/src/wal.rs".into(),
            line: 113,
            key: "open.expect".into(),
            message: "`.expect()` on a durability path".into(),
        },
        Diagnostic {
            rule: "R5",
            path: "crates/cli/src/lib.rs".into(),
            line: 597,
            key: "magic.OSSMDATA".into(),
            message: "magic b\"OSSMDATA\" duplicated \\ \"quoted\"".into(),
        },
    ]
}

#[test]
fn every_report_line_parses_as_one_object() {
    let report = json_report(&sample_diags(), 3, 42);
    let lines: Vec<&str> = report.lines().collect();
    assert_eq!(lines.len(), 3, "two diagnostics plus a summary");
    for line in &lines {
        let v = json::parse(line).expect("line is valid JSON");
        assert!(
            v.get("type").and_then(json::Json::as_str).is_some(),
            "missing type discriminator in {line}"
        );
    }
}

#[test]
fn diagnostic_fields_survive_the_round_trip() {
    let report = json_report(&sample_diags(), 0, 1);
    let first = report.lines().next().expect("first line");
    let v = json::parse(first).expect("parses");
    assert_eq!(v.get("type").and_then(json::Json::as_str), Some("lint"));
    assert_eq!(v.get("rule").and_then(json::Json::as_str), Some("R1"));
    assert_eq!(
        v.get("path").and_then(json::Json::as_str),
        Some("crates/data/src/wal.rs")
    );
    assert_eq!(v.get("line").and_then(json::Json::as_f64), Some(113.0));
    assert_eq!(
        v.get("key").and_then(json::Json::as_str),
        Some("open.expect")
    );
}

#[test]
fn escaped_message_round_trips_exactly() {
    let report = json_report(&sample_diags(), 0, 1);
    let second = report.lines().nth(1).expect("second line");
    let v = json::parse(second).expect("parses despite quotes and backslashes");
    assert_eq!(
        v.get("message").and_then(json::Json::as_str),
        Some(r#"magic b"OSSMDATA" duplicated \ "quoted""#)
    );
}

#[test]
fn summary_line_carries_the_counts() {
    let report = json_report(&sample_diags(), 3, 42);
    let last = report.lines().last().expect("summary");
    let v = json::parse(last).expect("parses");
    assert_eq!(
        v.get("type").and_then(json::Json::as_str),
        Some("lint.summary")
    );
    assert_eq!(v.get("violations").and_then(json::Json::as_f64), Some(2.0));
    assert_eq!(v.get("allowlisted").and_then(json::Json::as_f64), Some(3.0));
    assert_eq!(v.get("files").and_then(json::Json::as_f64), Some(42.0));
}
