//! # ossm-data — transaction substrate for the OSSM reproduction
//!
//! Everything the OSSM (Leung–Ng–Mannila, ICDE 2002) counts over lives
//! here: items and itemsets, transactions and datasets, the page-granular
//! physical layout that the segmentation algorithms operate on, the three
//! synthetic workload generators matching the paper's data sets, and a
//! small binary codec for persisting generated workloads.
//!
//! ```
//! use ossm_data::gen::QuestConfig;
//! use ossm_data::page::PageStore;
//!
//! let dataset = QuestConfig::small().generate();
//! let pages = PageStore::pack_default(dataset);
//! assert!(pages.num_pages() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checksum;
pub mod disk;
pub mod fault;
mod format;
pub mod gen;
pub mod io;
pub mod item;
pub mod page;
pub mod repair;
pub mod sequence;
pub mod transaction;
pub mod wal;

pub use format::MAGIC as PAGE_MAGIC;
pub use item::{ItemId, Itemset};
pub use page::{Page, PageStore};
pub use transaction::Dataset;
