//! Shared mining-layer instrumentation.
//!
//! Two families of metrics, both feeding the global [`ossm_obs`] registry:
//!
//! * **Bound effectiveness** — for every candidate a bound-based filter
//!   admitted and the miner then counted, the slack `ub(X) − sup(X)`
//!   (equation (1) minus the truth) lands in a log2 histogram, and the
//!   candidate is classified as a *true positive* (genuinely frequent) or a
//!   *false positive* (admitted but infrequent — counting work the bound
//!   failed to save). The false-positive rate is the experimental knob the
//!   paper's Figure 4(b) turns: more segments → tighter bound → fewer
//!   false positives.
//! * **Per-level candidate flow** — every [`LevelMetrics`] row a level-wise
//!   miner pushes is mirrored as dynamic counters
//!   `mining.<miner>.level<k>.{generated,filtered_out,counted,frequent}`.
//!
//! Everything is gated on [`ossm_obs::ENABLED`], so disabled builds skip
//! even the `Option` plumbing.

use ossm_data::Itemset;

use crate::filter::CandidateFilter;
use crate::metrics::LevelMetrics;

/// Slack `ub(X) − sup(X)` of bound-admitted candidates that were counted.
static BOUND_SLACK: ossm_obs::Histogram = ossm_obs::Histogram::new("mining.bound.slack");
/// Bound-admitted candidates that turned out frequent.
static BOUND_TRUE_POS: ossm_obs::Counter = ossm_obs::Counter::new("mining.bound.true_pos");
/// Bound-admitted candidates that turned out infrequent (wasted counting).
static BOUND_FALSE_POS: ossm_obs::Counter = ossm_obs::Counter::new("mining.bound.false_pos");

/// Records the outcome of counting one filter-admitted candidate: how
/// loose the filter's bound was (slack histogram) and whether admitting it
/// was a true or false positive. No-op when the filter has no bound (e.g.
/// [`crate::filter::NoFilter`]) or instrumentation is disabled.
pub(crate) fn record_bound_outcome(
    filter: &dyn CandidateFilter,
    candidate: &Itemset,
    support: u64,
    min_support: u64,
) {
    if !ossm_obs::ENABLED {
        return;
    }
    let Some(ub) = filter.bound(candidate) else {
        return;
    };
    BOUND_SLACK.record(ub.saturating_sub(support));
    if support >= min_support {
        BOUND_TRUE_POS.incr();
    } else {
        BOUND_FALSE_POS.incr();
    }
}

/// Mirrors one finished [`LevelMetrics`] row into dynamic counters under
/// `mining.<miner>.level<k>.*`.
pub(crate) fn record_level(miner: &str, level: &LevelMetrics) {
    if !ossm_obs::ENABLED {
        return;
    }
    let scope = ossm_obs::registry().scope(format!("mining.{miner}.level{}", level.level));
    scope.add("generated", level.generated);
    scope.add("filtered_out", level.filtered_out);
    scope.add("counted", level.counted);
    scope.add("frequent", level.frequent);
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;
    use crate::filter::{NoFilter, OssmFilter};
    use ossm_core::{Aggregate, Ossm};

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn bound_outcomes_split_true_and_false_positives() {
        let ossm = Ossm::from_aggregates(vec![
            Aggregate::new(vec![20, 40, 40], 40),
            Aggregate::new(vec![10, 40, 20], 40),
        ]);
        let f = OssmFilter::new(&ossm);
        let before_tp = ossm_obs::registry()
            .snapshot()
            .counter("mining.bound.true_pos");
        let before_fp = ossm_obs::registry()
            .snapshot()
            .counter("mining.bound.false_pos");
        // ub({0,1}) = 20 + 10 = 30. Frequent at threshold 25 → true positive.
        record_bound_outcome(&f, &set(&[0, 1]), 28, 25);
        // Infrequent at threshold 25 → false positive.
        record_bound_outcome(&f, &set(&[0, 1]), 12, 25);
        // NoFilter has no bound → neither bucket moves.
        record_bound_outcome(&NoFilter, &set(&[0, 1]), 12, 25);
        // Other tests in this binary share the registry, so assert deltas
        // as lower bounds.
        let snap = ossm_obs::registry().snapshot();
        assert!(snap.counter("mining.bound.true_pos") > before_tp);
        assert!(snap.counter("mining.bound.false_pos") > before_fp);
    }

    #[test]
    fn levels_mirror_into_scoped_counters() {
        let row = LevelMetrics {
            level: 7,
            generated: 9,
            filtered_out: 4,
            counted: 5,
            frequent: 2,
        };
        record_level("testminer", &row);
        let snap = ossm_obs::registry().snapshot();
        assert_eq!(snap.counter("mining.testminer.level7.generated"), 9);
        assert_eq!(snap.counter("mining.testminer.level7.filtered_out"), 4);
        assert_eq!(snap.counter("mining.testminer.level7.counted"), 5);
        assert_eq!(snap.counter("mining.testminer.level7.frequent"), 2);
    }
}
