//! The flight recorder: a fixed-capacity, lock-free ring of structured
//! events that is always on (when `enabled`) and allocation-free after
//! init, so the last moments before a crash are capturable even from a
//! panic hook or a fault-injection site.
//!
//! Writers claim a monotonically increasing ticket and overwrite the slot
//! `ticket % CAPACITY`, publishing with a sequence word: readers accept a
//! slot only when its sequence matches the position before *and* after
//! reading the payload, so a torn overwrite is dropped rather than
//! misreported. Event names are packed into a fixed 32-byte prefix —
//! no heap, no locks, on either side.
//!
//! Dumps are JSON lines (one header object, then one object per event);
//! [`render_timeline`] turns a dump back into a human-readable timeline
//! for `ossm obs dump`. The renderer is compiled in both feature
//! configurations — reading a dump is useful even in builds whose own
//! recorder is compiled out.

use crate::json::{self, Json};

/// Number of events the ring retains; older events are overwritten.
pub const CAPACITY: usize = 1024;

/// Counter deltas of at least this many units are recorded as events;
/// smaller ones stay aggregate-only so hot `incr()` loops cannot flood
/// the ring.
pub const COUNTER_EVENT_THRESHOLD: u64 = 1024;

/// What a recorded event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A phase span opened.
    SpanEnter,
    /// A phase span closed; `value` is its duration in nanoseconds.
    SpanExit,
    /// A counter jumped by `value` ≥ [`COUNTER_EVENT_THRESHOLD`].
    Counter,
    /// A WAL record was appended; `value` is its length in bytes.
    WalAppend,
    /// A fault-injection site fired (tag in `name`).
    Fault,
    /// A checksum verification failed.
    Checksum,
    /// An `ossm-par` worker started a chunk; `value` is the chunk start.
    Worker,
}

impl EventKind {
    /// Stable wire name, used in dumps and timelines.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SpanEnter => "span-enter",
            EventKind::SpanExit => "span-exit",
            EventKind::Counter => "counter",
            EventKind::WalAppend => "wal-append",
            EventKind::Fault => "fault",
            EventKind::Checksum => "checksum",
            EventKind::Worker => "worker",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "span-enter" => EventKind::SpanEnter,
            "span-exit" => EventKind::SpanExit,
            "counter" => EventKind::Counter,
            "wal-append" => EventKind::WalAppend,
            "fault" => EventKind::Fault,
            "checksum" => EventKind::Checksum,
            "worker" => EventKind::Worker,
            _ => return None,
        })
    }

    #[cfg(feature = "enabled")]
    fn code(self) -> u64 {
        match self {
            EventKind::SpanEnter => 1,
            EventKind::SpanExit => 2,
            EventKind::Counter => 3,
            EventKind::WalAppend => 4,
            EventKind::Fault => 5,
            EventKind::Checksum => 6,
            EventKind::Worker => 7,
        }
    }

    #[cfg(feature = "enabled")]
    fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::SpanEnter,
            2 => EventKind::SpanExit,
            3 => EventKind::Counter,
            4 => EventKind::WalAppend,
            5 => EventKind::Fault,
            6 => EventKind::Checksum,
            7 => EventKind::Worker,
            _ => return None,
        })
    }
}

/// One event decoded out of the ring (or a dump file).
#[derive(Clone, Debug, PartialEq)]
pub struct RecordedEvent {
    /// Position in the global event stream (monotonic per process).
    pub seq: u64,
    /// Nanoseconds since the process's trace epoch.
    pub nanos: u64,
    /// Dense trace id of the recording thread.
    pub thread: u64,
    /// What happened.
    pub kind: EventKind,
    /// Event name (metric, span, or fault tag), truncated to 32 bytes.
    pub name: String,
    /// Kind-specific payload (duration, byte count, chunk start, …).
    pub value: u64,
}

#[cfg(feature = "enabled")]
mod imp {
    use std::fmt::Write as _;
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    use super::{EventKind, RecordedEvent, CAPACITY};

    /// Bytes of an event name the ring retains.
    const NAME_BYTES: usize = 32;
    const NAME_WORDS: usize = NAME_BYTES / 8;

    /// Marker naming the dump format. Deliberately only referenced from
    /// this `enabled`-gated module: CI greps disabled binaries for its
    /// absence to prove the recorder compiled out.
    const MARKER: &str = "ossm-flightrec";

    struct Slot {
        /// `position + 1` when the payload is consistent, 0 mid-write.
        seq: AtomicU64,
        nanos: AtomicU64,
        thread: AtomicU64,
        kind: AtomicU64,
        value: AtomicU64,
        name: [AtomicU64; NAME_WORDS],
    }

    impl Slot {
        const fn new() -> Slot {
            Slot {
                seq: AtomicU64::new(0),
                nanos: AtomicU64::new(0),
                thread: AtomicU64::new(0),
                kind: AtomicU64::new(0),
                value: AtomicU64::new(0),
                name: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
            }
        }
    }

    // `const` local: the array-repeat idiom for non-Copy elements.
    #[allow(clippy::declare_interior_mutable_const)]
    const EMPTY_SLOT: Slot = Slot::new();
    static RING: [Slot; CAPACITY] = [EMPTY_SLOT; CAPACITY];
    /// Next ticket; also the total number of events ever recorded.
    static CURSOR: AtomicU64 = AtomicU64::new(0);

    /// Records one event. Lock-free and allocation-free; safe from panic
    /// hooks, allocator hooks, and `ossm-par` workers.
    pub fn record_event(name: &str, kind: EventKind, value: u64) {
        let ticket = CURSOR.fetch_add(1, Ordering::Relaxed);
        let slot = &RING[(ticket % CAPACITY as u64) as usize];
        slot.seq.store(0, Ordering::Release);
        slot.nanos
            .store(crate::live::epoch_nanos(), Ordering::Relaxed);
        slot.thread
            .store(crate::live::current_thread_id(), Ordering::Relaxed);
        slot.kind.store(kind.code(), Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        let mut buf = [0u8; NAME_BYTES];
        let n = name.len().min(NAME_BYTES);
        buf[..n].copy_from_slice(&name.as_bytes()[..n]);
        for (word, chunk) in slot.name.iter().zip(buf.chunks_exact(8)) {
            word.store(
                u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")),
                Ordering::Relaxed,
            );
        }
        slot.seq.store(ticket + 1, Ordering::Release);
    }

    /// Total events recorded since process start (including overwritten
    /// ones).
    pub fn total_recorded() -> u64 {
        CURSOR.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first. Slots being overwritten while
    /// we read are dropped (sequence mismatch), never misreported.
    pub fn events() -> Vec<RecordedEvent> {
        let cursor = CURSOR.load(Ordering::Acquire);
        let start = cursor.saturating_sub(CAPACITY as u64);
        let mut out = Vec::with_capacity((cursor - start) as usize);
        for pos in start..cursor {
            let slot = &RING[(pos % CAPACITY as u64) as usize];
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                continue;
            }
            let nanos = slot.nanos.load(Ordering::Relaxed);
            let thread = slot.thread.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            let mut buf = [0u8; NAME_BYTES];
            for (chunk, word) in buf.chunks_exact_mut(8).zip(&slot.name) {
                chunk.copy_from_slice(&word.load(Ordering::Relaxed).to_le_bytes());
            }
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                continue;
            }
            let Some(kind) = EventKind::from_code(kind) else {
                continue;
            };
            let name = String::from_utf8_lossy(&buf)
                .trim_end_matches('\0')
                .to_string();
            out.push(RecordedEvent {
                seq: pos,
                nanos,
                thread,
                kind,
                name,
                value,
            });
        }
        out
    }

    /// Writes the retained events to `path` as JSON lines: one header
    /// object, then one `{"type":"event",…}` object per event.
    pub fn dump_to(path: &Path) -> std::io::Result<()> {
        let events = events();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"{MARKER}\",\"version\":1,\"total\":{},\"events\":{}}}",
            total_recorded(),
            events.len(),
        );
        for e in &events {
            let _ = writeln!(
                out,
                "{{\"type\":\"event\",\"seq\":{},\"nanos\":{},\"thread\":{},\"kind\":\"{}\",\"name\":\"{}\",\"value\":{}}}",
                e.seq,
                e.nanos,
                e.thread,
                e.kind.as_str(),
                crate::report::json_escape(&e.name),
                e.value,
            );
        }
        std::fs::write(path, out)
    }

    /// Called from fault-injection sites as a fault fires: when the
    /// `OSSM_FLIGHTREC` environment variable names a path, the ring is
    /// dumped there. Errors are swallowed — the fault path must proceed.
    pub fn dump_on_fault() {
        if let Ok(path) = std::env::var("OSSM_FLIGHTREC") {
            if !path.is_empty() {
                let _ = dump_to(Path::new(&path));
            }
        }
    }

    /// Installs (once) a panic hook that dumps the ring — to
    /// `$OSSM_FLIGHTREC`, or `ossm-flightrec.jsonl` in the working
    /// directory — before delegating to the previous hook.
    pub fn install_panic_hook() {
        static INSTALLED: AtomicBool = AtomicBool::new(false);
        if INSTALLED
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let path =
                std::env::var("OSSM_FLIGHTREC").unwrap_or_else(|_| "ossm-flightrec.jsonl".into());
            if !path.is_empty() {
                let _ = dump_to(Path::new(&path));
            }
            prev(info);
        }));
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use std::path::Path;

    use super::{EventKind, RecordedEvent};

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn record_event(_name: &str, _kind: EventKind, _value: u64) {}

    /// Always 0 (instrumentation disabled).
    #[inline(always)]
    pub fn total_recorded() -> u64 {
        0
    }

    /// Always empty (instrumentation disabled).
    #[inline(always)]
    pub fn events() -> Vec<RecordedEvent> {
        Vec::new()
    }

    /// Does nothing (instrumentation disabled): no file is written.
    #[inline(always)]
    pub fn dump_to(_path: &Path) -> std::io::Result<()> {
        Ok(())
    }

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn dump_on_fault() {}

    /// Does nothing (instrumentation disabled).
    #[inline(always)]
    pub fn install_panic_hook() {}
}

pub use imp::{dump_on_fault, dump_to, events, install_panic_hook, record_event, total_recorded};

/// Renders a JSONL flight-recorder dump as a human-readable timeline.
///
/// Lines whose `type` is not `"event"` (the header) are skipped, but a
/// header's `"events"` count, when present, must match the number of
/// event lines actually found — a mismatch means the dump was truncated
/// mid-write (a crash can lose the file's tail) and a partial timeline
/// would silently misrepresent the crash. An empty file and a line that
/// is not valid JSON are errors for the same reason.
pub fn render_timeline(content: &str) -> Result<String, String> {
    use std::fmt::Write as _;

    let mut rows: Vec<RecordedEvent> = Vec::new();
    let mut declared: Option<u64> = None;
    let mut non_blank = 0usize;
    let last_line = content.lines().filter(|l| !l.trim().is_empty()).count();
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        non_blank += 1;
        let v = json::parse(line).map_err(|e| {
            let hint = if non_blank == last_line {
                " (file truncated mid-record?)"
            } else {
                ""
            };
            format!("line {}: {e}{hint}", i + 1)
        })?;
        if v.get("type").and_then(Json::as_str) != Some("event") {
            if let Some(n) = v.get("events").and_then(Json::as_f64) {
                declared = Some(n as u64);
            }
            continue;
        }
        let field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .map(|f| f as u64)
                .ok_or_else(|| format!("line {}: missing numeric {key:?}", i + 1))
        };
        let kind_str = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"kind\"", i + 1))?;
        let kind = EventKind::parse(kind_str)
            .ok_or_else(|| format!("line {}: unknown event kind {kind_str:?}", i + 1))?;
        rows.push(RecordedEvent {
            seq: field("seq")?,
            nanos: field("nanos")?,
            thread: field("thread")?,
            kind,
            name: v
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            value: field("value")?,
        });
    }
    if non_blank == 0 {
        return Err(
            "empty flight-recorder dump: no events were written (crash before the \
             recorder flushed, or the wrong file?)"
                .to_string(),
        );
    }
    if let Some(n) = declared {
        if n != rows.len() as u64 {
            return Err(format!(
                "truncated flight-recorder dump: header declares {n} events, found {}",
                rows.len(),
            ));
        }
    }
    let mut out = format!("flight recorder timeline ({} events)\n", rows.len());
    for e in &rows {
        let _ = write!(
            out,
            "{:>8}  +{:>12.6}s  t{:<3}  {:<10}  {}",
            e.seq,
            e.nanos as f64 / 1e9,
            e.thread,
            e.kind.as_str(),
            e.name,
        );
        if e.value > 0 {
            let _ = write!(out, "  value={}", e.value);
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_wire_names_round_trip() {
        for kind in [
            EventKind::SpanEnter,
            EventKind::SpanExit,
            EventKind::Counter,
            EventKind::WalAppend,
            EventKind::Fault,
            EventKind::Checksum,
            EventKind::Worker,
        ] {
            assert_eq!(EventKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(EventKind::parse("nonsense"), None);
    }

    #[test]
    fn render_timeline_skips_header_and_orders_events() {
        let dump = concat!(
            "{\"type\":\"header\",\"version\":1}\n",
            "{\"type\":\"event\",\"seq\":0,\"nanos\":1500,\"thread\":1,\"kind\":\"span-enter\",\"name\":\"cli.mine\",\"value\":0}\n",
            "{\"type\":\"event\",\"seq\":1,\"nanos\":2500,\"thread\":2,\"kind\":\"fault\",\"name\":\"data.wal.append\",\"value\":3}\n",
        );
        let text = render_timeline(dump).expect("renders");
        assert!(text.starts_with("flight recorder timeline (2 events)"));
        assert!(text.contains("span-enter"));
        assert!(text.contains("cli.mine"));
        assert!(text.contains("fault"));
        assert!(text.contains("data.wal.append"));
        assert!(text.contains("value=3"));
    }

    #[test]
    fn render_timeline_rejects_garbage() {
        assert!(render_timeline("not json at all").is_err());
        let bad_kind =
            "{\"type\":\"event\",\"seq\":0,\"nanos\":0,\"thread\":1,\"kind\":\"eclipse\",\"name\":\"x\",\"value\":0}";
        assert!(render_timeline(bad_kind).unwrap_err().contains("eclipse"));
    }

    #[test]
    fn render_timeline_of_empty_dump_is_an_error() {
        let err = render_timeline("").unwrap_err();
        assert!(err.contains("empty"), "{err}");
        let blank = render_timeline("\n   \n").unwrap_err();
        assert!(blank.contains("empty"), "{blank}");
    }

    #[test]
    fn render_timeline_rejects_truncated_dump() {
        // Header declares 3 events but only 1 survived the crash.
        let dump = concat!(
            "{\"type\":\"ossm-flightrec\",\"version\":1,\"total\":3,\"events\":3}\n",
            "{\"type\":\"event\",\"seq\":0,\"nanos\":1500,\"thread\":1,\"kind\":\"span-enter\",\"name\":\"cli.mine\",\"value\":0}\n",
        );
        let err = render_timeline(dump).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        assert!(err.contains("declares 3"), "{err}");
        assert!(err.contains("found 1"), "{err}");
        // A matching count renders fine.
        let ok = concat!(
            "{\"type\":\"ossm-flightrec\",\"version\":1,\"total\":1,\"events\":1}\n",
            "{\"type\":\"event\",\"seq\":0,\"nanos\":1500,\"thread\":1,\"kind\":\"span-enter\",\"name\":\"cli.mine\",\"value\":0}\n",
        );
        assert!(render_timeline(ok).is_ok());
    }

    #[test]
    fn render_timeline_hints_truncation_on_cut_final_record() {
        // A record cut mid-write: the last line is not valid JSON.
        let dump = concat!(
            "{\"type\":\"event\",\"seq\":0,\"nanos\":1500,\"thread\":1,\"kind\":\"span-enter\",\"name\":\"cli.mine\",\"value\":0}\n",
            "{\"type\":\"event\",\"seq\":1,\"nanos\":25",
        );
        let err = render_timeline(dump).unwrap_err();
        assert!(err.contains("truncated mid-record"), "{err}");
    }
}
