//! Microbenchmark of equation (1): the OSSM upper-bound evaluation that
//! sits on the hot path of every filtered candidate, across segment counts
//! and pattern sizes. The paper's claim that "direct addressing into the
//! OSSM makes the use of equation (1) very efficient" is what this bench
//! checks stays true.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ossm_bench::workloads::Workload;
use ossm_core::{Ossm, OssmBuilder, Strategy};
use ossm_data::Itemset;

fn build_ossm(n_user: usize) -> Ossm {
    let store = Workload::regular(50, 500).store();
    OssmBuilder::new(n_user)
        .strategy(Strategy::Random)
        .build(&store)
        .0
}

fn bench_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("upper_bound");
    for &segments in &[1usize, 10, 50, 150] {
        let ossm = build_ossm(segments.min(50));
        let pair = Itemset::new([3, 250]);
        let quad = Itemset::new([3, 99, 250, 444]);
        group.bench_with_input(BenchmarkId::new("pair", segments), &ossm, |bench, o| {
            bench.iter(|| black_box(o.upper_bound(black_box(&pair))));
        });
        group.bench_with_input(
            BenchmarkId::new("pair_specialized", segments),
            &ossm,
            |bench, o| {
                bench.iter(|| {
                    black_box(o.upper_bound_pair(
                        black_box(ossm_data::ItemId(3)),
                        black_box(ossm_data::ItemId(250)),
                    ))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("quad", segments), &ossm, |bench, o| {
            bench.iter(|| black_box(o.upper_bound(black_box(&quad))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bound);
criterion_main!(benches);
