//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API that the workspace benches use
//! — [`Criterion`], [`BenchmarkId`], benchmark groups, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — as a plain wall-clock
//! harness: each benchmark is warmed up briefly, then timed over a batch
//! sized to the configured sample count, and the mean per-iteration time
//! is printed. No statistics, plots, or baselines; the goal is that
//! `cargo bench` compiles, runs, and produces a readable number in an
//! environment with no crates.io access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id rendered as `function_id/parameter`.
    pub fn new<P: fmt::Display>(function_id: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to make the clock readable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until it runs ≥ 10 ms,
        // then time the final batch.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(10) || batch >= self.iters.max(1 << 20) {
                self.elapsed = took;
                self.iters = batch;
                return;
            }
            batch = batch.saturating_mul(4);
        }
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.iters).unwrap_or(u32::MAX)
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; this harness
    /// times one sized batch regardless).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark identified by `id`.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {group}/{id}: {time:?}/iter ({iters} iters)",
            group = self.name,
            time = b.per_iter(),
            iters = b.iters,
        );
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id).bench_function("run", f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// A parsed `--trace` request from a bench binary's arguments, following
/// the workspace-wide flag contract (`--trace[=chrome|folded]`,
/// `--trace-out=PATH`; see `ossm_bench::traceio`).
struct TraceRequest {
    format: ossm_obs::TraceFormat,
    path: std::path::PathBuf,
}

fn trace_request_from_args(
    args: impl IntoIterator<Item = String>,
) -> Result<Option<TraceRequest>, String> {
    let mut format: Option<ossm_obs::TraceFormat> = None;
    let mut out: Option<std::path::PathBuf> = None;
    for arg in args {
        if arg == "--trace" {
            format.get_or_insert_with(ossm_obs::TraceFormat::default);
        } else if let Some(f) = arg.strip_prefix("--trace=") {
            format = Some(f.parse()?);
        } else if let Some(p) = arg.strip_prefix("--trace-out=") {
            out = Some(std::path::PathBuf::from(p));
        }
    }
    Ok(format.map(|format| TraceRequest {
        path: out.unwrap_or_else(|| std::path::PathBuf::from(format.default_file_name())),
        format,
    }))
}

/// Runs the bench body under the process's `--trace` arguments: starts
/// span collection if requested, runs the benches, and writes the
/// rendered trace. Called by [`criterion_main!`]; exits non-zero on a bad
/// flag or an unwritable output path.
pub fn run_benches(body: impl FnOnce()) {
    let request = match trace_request_from_args(std::env::args().skip(1)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if request.is_some() {
        ossm_obs::trace_begin();
    }
    body();
    if let Some(req) = request {
        let trace = ossm_obs::trace_take();
        if let Err(e) = std::fs::write(&req.path, trace.render(req.format)) {
            eprintln!("error: cannot write trace to {}: {e}", req.path.display());
            std::process::exit(2);
        }
        eprintln!(
            "trace: wrote {} spans ({}) to {}",
            trace.len(),
            req.format,
            req.path.display()
        );
    }
}

/// Declares the bench `main` that runs each group, mirroring criterion's
/// macro. Also honors the workspace's `--trace[=chrome|folded]` /
/// `--trace-out=PATH` flags, so `cargo bench -- --trace=folded` captures
/// a span trace of the benchmarked code.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip timing
            // there so the suite stays fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $crate::run_benches(|| { $( $group(); )+ });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("pair", 128).to_string(), "pair/128");
    }

    #[test]
    fn bencher_times_a_closure() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        let mut hits = 0u64;
        b.iter(|| {
            hits += 1;
            std::hint::black_box(hits)
        });
        assert!(b.iters >= 1);
        // `iter` grows the batch until it is long enough to time, so the
        // closure runs at least `iters` times in total.
        assert!(hits >= b.iters);
    }

    #[test]
    fn trace_args_follow_the_workspace_flag_contract() {
        let parse = |args: &[&str]| trace_request_from_args(args.iter().map(|s| (*s).to_owned()));
        assert!(parse(&[]).unwrap().is_none());
        assert!(parse(&["--bench", "counting"]).unwrap().is_none());
        let bare = parse(&["--trace"]).unwrap().unwrap();
        assert_eq!(bare.format, ossm_obs::TraceFormat::Chrome);
        assert_eq!(bare.path, std::path::PathBuf::from("trace.json"));
        let folded = parse(&["--trace=folded", "--trace-out=/tmp/t.folded"])
            .unwrap()
            .unwrap();
        assert_eq!(folded.format, ossm_obs::TraceFormat::Folded);
        assert_eq!(folded.path, std::path::PathBuf::from("/tmp/t.folded"));
        assert!(parse(&["--trace=svg"]).is_err());
    }

    #[test]
    fn group_api_shape_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shape");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| x * 2);
        });
        group.finish();
    }
}
