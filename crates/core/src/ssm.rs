//! The (optimized) segment support map and its support upper bound.
//!
//! An OSSM over `n` segments stores `sup_i({a})` for every segment `i` and
//! every singleton `{a}` (Section 3 of the paper). For an arbitrary itemset
//! `X` it yields the upper bound of equation (1):
//!
//! ```text
//! ub(X, OSSM_n) = Σ_{i=1..n} min_{a ∈ X} sup_i({a})
//! ```
//!
//! A one-segment OSSM degenerates to the classic "min of the global
//! singleton supports" bound — the no-OSSM baseline of the experiments; a
//! one-transaction-per-segment OSSM makes the bound exact. Everything in
//! between trades space for pruning power, which is the whole game of the
//! paper.

use ossm_data::{Itemset, PageStore};

use crate::segmentation::{Aggregate, Segmentation};

/// Equation-(1) evaluations through [`Ossm::upper_bound`].
static BOUND_EVALS: ossm_obs::Counter = ossm_obs::Counter::new("core.bound.evals");
/// Evaluations through the pair-specialized [`Ossm::upper_bound_pair`].
static BOUND_PAIR_EVALS: ossm_obs::Counter = ossm_obs::Counter::new("core.bound.pair_evals");
/// [`Ossm::prunes`] calls that pruned (bound below the threshold).
static BOUND_PRUNED: ossm_obs::Counter = ossm_obs::Counter::new("core.bound.pruned");

/// The optimized segment support map (Section 3, Figure 1's `SSM_n`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ossm {
    num_items: usize,
    /// `segments[s]` = aggregate singleton supports of segment `s`.
    segments: Vec<Aggregate>,
}

impl Ossm {
    /// Builds an OSSM directly from per-segment aggregates.
    ///
    /// # Panics
    /// Panics if the aggregates disagree on the item domain or if there are
    /// no segments.
    // SOUND: stores the given per-segment supports verbatim — eq. (1)
    // is an upper bound whenever each input support dominates the true
    // item frequency of its segment, which callers establish (exact
    // aggregation or explicit widening; see `recover`).
    pub fn from_aggregates(segments: Vec<Aggregate>) -> Self {
        assert!(!segments.is_empty(), "an OSSM needs at least one segment");
        let num_items = segments[0].num_items();
        assert!(
            segments.iter().all(|s| s.num_items() == num_items),
            "all segments must share the item domain"
        );
        Ossm {
            num_items,
            segments,
        }
    }

    /// Builds an OSSM from a page store and a segmentation of its pages.
    pub fn from_pages(store: &PageStore, segmentation: &Segmentation) -> Self {
        assert_eq!(
            segmentation.num_inputs(),
            store.num_pages(),
            "segmentation must cover every page"
        );
        Self::from_aggregates(segmentation.merge_aggregates(&Aggregate::from_pages(store)))
    }

    /// The degenerate one-segment OSSM over the whole store — the bound a
    /// miner has with no OSSM at all (global singleton supports only).
    pub fn single_segment(store: &PageStore) -> Self {
        let total = Aggregate::new(store.total_supports(), store.dataset().len() as u64);
        Ossm {
            num_items: store.num_items(),
            segments: vec![total],
        }
    }

    /// Builds an OSSM at *transaction* granularity from an assignment of
    /// each transaction to a segment. Used by the segment-minimization
    /// construction of Section 4, which operates below page granularity.
    ///
    /// # Panics
    /// Panics if `assignment.len()` differs from the dataset size, or if
    /// segment ids are not dense in `0..num_segments`.
    pub fn from_transaction_assignment(
        dataset: &ossm_data::Dataset,
        assignment: &[usize],
        num_segments: usize,
    ) -> Self {
        assert_eq!(
            assignment.len(),
            dataset.len(),
            "assignment must cover every transaction"
        );
        assert!(num_segments > 0, "an OSSM needs at least one segment");
        let m = dataset.num_items();
        let mut segments = vec![Aggregate::zero(m); num_segments];
        // SOUND: counts every transaction exactly once in the segment
        // the assignment names, so each support is exact for its
        // segment and eq. (1) holds with equality per item.
        let mut counts = vec![0u64; num_segments];
        let mut supports: Vec<Vec<u64>> = vec![vec![0; m]; num_segments];
        for (t, &s) in dataset.transactions().iter().zip(assignment) {
            assert!(
                s < num_segments,
                "segment id {s} out of range 0..{num_segments}"
            );
            counts[s] += 1;
            for item in t.items() {
                supports[s][item.index()] += 1;
            }
        }
        for (s, (sup, cnt)) in supports.into_iter().zip(counts).enumerate() {
            segments[s] = Aggregate::new(sup, cnt);
        }
        Ossm {
            num_items: m,
            segments,
        }
    }

    /// Number of segments, `n`.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Size of the item domain, `m`.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// The per-segment aggregates.
    #[inline]
    pub fn segments(&self) -> &[Aggregate] {
        &self.segments
    }

    /// Total number of transactions covered.
    pub fn num_transactions(&self) -> u64 {
        self.segments.iter().map(Aggregate::transactions).sum()
    }

    /// Global support of a singleton (sum across segments).
    pub fn singleton_support(&self, item: ossm_data::ItemId) -> u64 {
        self.segments
            .iter()
            .map(|s| s.supports()[item.index()])
            .sum()
    }

    /// Equation (1): the OSSM upper bound on `sup(X)`.
    ///
    /// For the empty itemset the bound is the number of transactions (the
    /// empty pattern holds everywhere), keeping the bound exact and
    /// monotone for all inputs.
    // SOUND: computes Σ_i min_{a∈X} sup_i({a}) exactly as eq. (1)
    // states it; the early `min == 0` break can only skip items that
    // would lower the min further — it never raises a term above the
    // defined value, and the produced value is the paper's bound.
    pub fn upper_bound(&self, pattern: &Itemset) -> u64 {
        BOUND_EVALS.incr();
        if pattern.is_empty() {
            return self.num_transactions();
        }
        let mut total = 0u64;
        for seg in &self.segments {
            let sup = seg.supports();
            let mut min = u64::MAX;
            for item in pattern.items() {
                let s = sup[item.index()];
                if s < min {
                    min = s;
                    if min == 0 {
                        break; // no smaller value possible in this segment
                    }
                }
            }
            total += min;
        }
        total
    }

    /// Equation (1) specialized to a pair of items — the hot path of
    /// candidate-2-itemset filtering.
    // SOUND: identical to `upper_bound` for X = {a, b}; `min` of the two
    // per-segment supports is exactly the eq. (1) term.
    pub fn upper_bound_pair(&self, a: ossm_data::ItemId, b: ossm_data::ItemId) -> u64 {
        BOUND_PAIR_EVALS.incr();
        let (ai, bi) = (a.index(), b.index());
        self.segments
            .iter()
            .map(|s| s.supports()[ai].min(s.supports()[bi]))
            .sum()
    }

    /// Whether `pattern` can be pruned at `min_support`: its upper bound is
    /// already below the threshold, so it cannot be frequent.
    #[inline]
    pub fn prunes(&self, pattern: &Itemset, min_support: u64) -> bool {
        let pruned = self.upper_bound(pattern) < min_support;
        if pruned {
            BOUND_PRUNED.incr();
        }
        pruned
    }

    /// Approximate in-memory size of the structure, in bytes: `n × m`
    /// support counters. The paper quotes ~0.2 MB for 100 segments × 1000
    /// items (16-bit counters in their C implementation); we report our
    /// actual 8-byte counters.
    pub fn memory_bytes(&self) -> usize {
        self.segments.len() * self.num_items * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_data::{Dataset, ItemId};

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    /// Example 1 from the paper: 4 segments, items a=0, b=1, c=2.
    ///
    /// | item | S1 | S2 | S3 | S4 | total |
    /// |------|----|----|----|----|-------|
    /// | a    | 20 | 10 | 40 | 40 | 110   |
    /// | b    | 40 | 40 | 40 | 10 | 130   |
    /// | c    | 40 | 20 | 20 | 20 | 100   |
    fn example_1() -> Ossm {
        let seg = |a: u64, b: u64, c: u64| Aggregate::new(vec![a, b, c], a.max(b).max(c));
        Ossm::from_aggregates(vec![
            seg(20, 40, 40),
            seg(10, 40, 20),
            seg(40, 40, 20),
            seg(40, 10, 20),
        ])
    }

    #[test]
    fn example_1_from_paper() {
        let ossm = example_1();
        // ub({a,b}) = min(20,40)+min(10,40)+min(40,40)+min(40,10) = 20+10+40+10 = 80.
        assert_eq!(ossm.upper_bound(&set(&[0, 1])), 80);
        assert_eq!(ossm.upper_bound_pair(ItemId(0), ItemId(1)), 80);
        // ub({a,b,c}) = 20+10+20+10 = 60.
        assert_eq!(ossm.upper_bound(&set(&[0, 1, 2])), 60);
        // Without the OSSM (single segment): min(110,130) = 110 and min(110,130,100) = 100.
        let single = Ossm::from_aggregates(vec![Aggregate::new(vec![110, 130, 100], 200)]);
        assert_eq!(single.upper_bound(&set(&[0, 1])), 110);
        assert_eq!(single.upper_bound(&set(&[0, 1, 2])), 100);
        // The paper's point: 80 < 110 and 60 < 100, so a threshold below 100
        // prunes {a,b,c} with the OSSM but not without it.
        assert!(ossm.prunes(&set(&[0, 1, 2]), 80));
        assert!(!single.prunes(&set(&[0, 1, 2]), 80));
    }

    #[test]
    fn singleton_bound_is_global_support() {
        let ossm = example_1();
        assert_eq!(ossm.upper_bound(&set(&[0])), 110);
        assert_eq!(ossm.singleton_support(ItemId(1)), 130);
        assert_eq!(ossm.upper_bound(&set(&[2])), 100);
    }

    #[test]
    fn empty_pattern_bound_is_transaction_count() {
        let ossm = example_1();
        assert_eq!(ossm.upper_bound(&Itemset::empty()), ossm.num_transactions());
    }

    #[test]
    fn from_transaction_assignment_counts_per_segment() {
        let d = Dataset::new(2, vec![set(&[0]), set(&[0, 1]), set(&[1]), set(&[1])]);
        let ossm = Ossm::from_transaction_assignment(&d, &[0, 0, 1, 1], 2);
        assert_eq!(ossm.segments()[0].supports(), &[2, 1]);
        assert_eq!(ossm.segments()[1].supports(), &[0, 2]);
        assert_eq!(ossm.num_transactions(), 4);
    }

    #[test]
    fn bound_tightens_with_more_segments() {
        // The same data seen as 1 vs 2 segments: the 2-segment bound is
        // never looser (Section 3: more segments → tighter bound).
        let d = Dataset::new(2, vec![set(&[0]), set(&[0]), set(&[1]), set(&[1])]);
        let one = Ossm::from_transaction_assignment(&d, &[0, 0, 0, 0], 1);
        let two = Ossm::from_transaction_assignment(&d, &[0, 0, 1, 1], 2);
        let x = set(&[0, 1]);
        assert!(two.upper_bound(&x) <= one.upper_bound(&x));
        assert_eq!(
            two.upper_bound(&x),
            0,
            "perfect split gives the exact support"
        );
        assert_eq!(one.upper_bound(&x), 2);
    }

    #[test]
    fn bound_is_sound_against_actual_support() {
        let d = ossm_data::gen::QuestConfig {
            num_transactions: 300,
            ..ossm_data::gen::QuestConfig::small()
        }
        .generate();
        let store = PageStore::with_page_count(d, 10);
        let ossm = Ossm::from_pages(&store, &Segmentation::identity(10));
        for a in 0..10u32 {
            for b in (a + 1)..10 {
                let x = set(&[a, b]);
                assert!(
                    ossm.upper_bound(&x) >= store.dataset().support(&x),
                    "bound violated for {x}"
                );
            }
        }
    }

    #[test]
    fn memory_bytes_scales_with_segments() {
        let ossm = example_1();
        assert_eq!(ossm.memory_bytes(), 4 * 3 * 8);
    }

    #[test]
    #[should_panic(expected = "share the item domain")]
    fn rejects_mismatched_domains() {
        Ossm::from_aggregates(vec![Aggregate::zero(2), Aggregate::zero(3)]);
    }
}
