//! R3 — observability-name registry.
//!
//! `BENCH_obs.json`, the `regress` gate, and `ossm obs diff` all address
//! metrics *by name*. A renamed counter would not fail any test — the
//! gate would simply stop seeing the metric and silently gate nothing.
//! This rule pins every name: each counter, histogram, span, phase, and
//! fault-injection tag declared with a string literal in non-test code
//! must appear in `crates/obs/registry.txt`, and (on full-tree runs)
//! every registry entry must still be used somewhere.
//!
//! Dynamic names (`span(format!("cli.{cmd}"))`, per-level miner scopes)
//! are invisible to a lexical pass and deliberately out of scope; the
//! static names cover everything the regression baseline reads.

use super::{Context, REGISTRY_PATH};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::regions::FileModel;

/// Free functions taking a `&'static str` name as their first argument.
const NAME_FNS: &[&str] = &[
    "span",
    "detail_span",
    "phase",
    "alloc_scope",
    "record_event",
];
/// `Type::new("name")` constructors.
const NAME_TYPES: &[&str] = &["Counter", "Histogram", "Gauge", "Latency"];
/// Tagged fault-injection I/O helpers; the tag is the first string
/// literal in the call.
const TAG_FNS: &[&str] = &["write_all_tagged", "read_exact_tagged"];

/// One observability name found in source.
pub struct UsedName {
    /// The name literal.
    pub name: String,
    /// File it appears in.
    pub path: String,
    /// Line of the literal.
    pub line: u32,
    /// Allowlist key.
    pub key: String,
}

/// Collects every statically-named observability declaration in `file`.
pub fn used_names(file: &FileModel) -> Vec<UsedName> {
    let mut out = Vec::new();
    let toks = &file.toks;
    for (i, t) in toks.iter().enumerate() {
        if file.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let name_at = |idx: usize| -> Option<&crate::lexer::Tok> {
            toks.get(idx).filter(|n| n.kind == TokKind::Str)
        };
        let mut push = |name_tok: &crate::lexer::Tok| {
            out.push(UsedName {
                name: name_tok.text.clone(),
                path: file.path.clone(),
                line: name_tok.line,
                key: name_tok.text.clone(),
            });
        };
        if NAME_TYPES.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("new"))
            && toks.get(i + 3).is_some_and(|n| n.is_punct("("))
        {
            if let Some(name_tok) = name_at(i + 4) {
                push(name_tok);
            }
        } else if NAME_FNS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && i > 0
            && !toks[i - 1].is_punct(".")
            && !toks[i - 1].is_ident("fn")
        {
            if let Some(name_tok) = name_at(i + 2) {
                push(name_tok);
            }
        } else if TAG_FNS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            && i > 0
            && !toks[i - 1].is_ident("fn")
        {
            // First string literal inside the balanced argument list.
            let mut depth = 0usize;
            for tok in toks.iter().skip(i + 1) {
                if tok.is_punct("(") {
                    depth += 1;
                } else if tok.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tok.kind == TokKind::Str {
                    push(tok);
                    break;
                }
            }
        }
    }
    out
}

/// Whether registry `entry` admits the source literal `name`: exact
/// match, or — for a `foo.*` dynamic-prefix entry — the prefix itself or
/// any dotted name beneath it (same semantics as the regress coverage
/// check in `ossm_bench::regress::registered`).
fn matches_entry(entry: &str, name: &str) -> bool {
    if let Some(prefix) = entry.strip_suffix(".*") {
        return name == prefix
            || name
                .strip_prefix(prefix)
                .is_some_and(|rest| rest.starts_with('.'));
    }
    entry == name
}

pub fn check(ctx: &Context<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut all_used: Vec<UsedName> = Vec::new();
    for file in ctx.files {
        all_used.extend(used_names(file));
    }
    for used in &all_used {
        if !ctx
            .registry
            .iter()
            .any(|e| matches_entry(&e.name, &used.name))
        {
            out.push(Diagnostic {
                rule: "R3",
                path: used.path.clone(),
                line: used.line,
                key: used.key.clone(),
                message: format!(
                    "observability name \"{}\" is not in {REGISTRY_PATH} — register it so \
                     BENCH_obs.json consumers can rely on it",
                    used.name
                ),
            });
        }
    }
    if ctx.all_mode {
        for entry in ctx.registry {
            // `foo.*` entries declare dynamic-name prefixes (allocation
            // scopes, RSS capture): names beneath them are minted at
            // runtime, so no source literal will ever match.
            if entry.name.ends_with(".*") {
                continue;
            }
            if !all_used.iter().any(|u| u.name == entry.name) {
                out.push(Diagnostic {
                    rule: "R3",
                    path: REGISTRY_PATH.to_owned(),
                    line: entry.line,
                    key: entry.name.clone(),
                    message: format!(
                        "registry entry \"{}\" is no longer declared anywhere — remove it or \
                         restore the metric",
                        entry.name
                    ),
                });
            }
        }
    }
    out
}
