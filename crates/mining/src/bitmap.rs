//! Bitmap counting back-end: AND + popcount over `u64`-packed columns.
//!
//! The vertical representation Eclat-style miners use, applied to plain
//! candidate counting: one bitmap per item with bit `t` set iff transaction
//! `t` contains the item, so a candidate's support is the popcount of the
//! AND of its items' bitmaps. Dense workloads trade the per-transaction
//! subset tests of [`crate::support::count_linear`] for `⌈n/64⌉` word
//! operations per candidate item — 64 transactions per instruction — which
//! is why level 2, where candidate volume peaks, is where this kernel pays.
//!
//! Both phases are data-parallel through `ossm-par` with deterministic
//! merges: the build chunks the *word range* (64-transaction granules, so
//! chunks touch disjoint words) and the count chunks the candidate list
//! (results concatenate in candidate order).

use ossm_data::Itemset;

use crate::support::MIN_TX_CHUNK;

/// Minimum candidates per parallel counting chunk; below this the AND-popcount
/// loop is too cheap to be worth a spawn.
const MIN_CAND_CHUNK: usize = 64;

/// Bytes of the packed bitmap matrix most recently built — the space this
/// back-end trades for its AND-popcount speed.
static MEM_BITMAP: ossm_obs::Gauge = ossm_obs::Gauge::new("mem.mining.bitmap");

/// `u64`-packed per-item transaction bitmaps.
///
/// Row `i` holds `words_per_row` words; bit `t % 64` of word `t / 64` is
/// set iff transaction `t` contains item `i`. Bits at positions ≥ the
/// transaction count are always zero.
#[derive(Clone, Debug)]
pub struct ItemBitmaps {
    num_items: usize,
    num_transactions: usize,
    words_per_row: usize,
    /// `num_items × words_per_row`, row-major.
    words: Vec<u64>,
}

impl ItemBitmaps {
    /// Packs `transactions` into per-item bitmaps. The item domain is taken
    /// from the largest id present; candidates outside it simply count 0.
    pub fn build(transactions: &[Itemset]) -> Self {
        let _span = ossm_obs::detail_span("mining.bitmap.build");
        let num_items = transactions
            .iter()
            .flat_map(|t| t.items().iter())
            .map(|id| id.0 as usize + 1)
            .max()
            .unwrap_or(0);
        let num_transactions = transactions.len();
        let words_per_row = num_transactions.div_ceil(64);
        // Chunk the word range: each chunk covers 64·len(chunk) transactions
        // and writes a disjoint column block, so stitching the partial
        // matrices back together is order-independent byte copying.
        let partials = ossm_par::map_chunks(words_per_row, MIN_TX_CHUNK / 64, |wr| {
            let width = wr.len();
            let mut local = vec![0u64; num_items * width];
            let lo = wr.start * 64;
            let hi = (wr.end * 64).min(num_transactions);
            for (t, tx) in transactions[lo..hi].iter().enumerate() {
                let word = (lo + t) / 64 - wr.start;
                let bit = 1u64 << ((lo + t) % 64);
                for item in tx.items() {
                    local[item.0 as usize * width + word] |= bit;
                }
            }
            (wr, local)
        });
        let mut words = vec![0u64; num_items * words_per_row];
        for (wr, local) in partials {
            let width = wr.len();
            for item in 0..num_items {
                words[item * words_per_row + wr.start..item * words_per_row + wr.end]
                    .copy_from_slice(&local[item * width..(item + 1) * width]);
            }
        }
        MEM_BITMAP.set((words.len() * std::mem::size_of::<u64>()) as u64);
        ItemBitmaps {
            num_items,
            num_transactions,
            words_per_row,
            words,
        }
    }

    /// The packed bitmap of `item`, or `None` outside the build domain.
    fn row(&self, item: u32) -> Option<&[u64]> {
        let i = item as usize;
        (i < self.num_items)
            .then(|| &self.words[i * self.words_per_row..(i + 1) * self.words_per_row])
    }

    /// The support of one candidate: popcount of the AND of its item rows.
    pub fn support(&self, candidate: &Itemset) -> u64 {
        let mut items = candidate.items().iter();
        let Some(first) = items.next() else {
            // The empty itemset occurs in every transaction.
            return self.num_transactions as u64;
        };
        let Some(first_row) = self.row(first.0) else {
            return 0;
        };
        let mut acc = first_row.to_vec();
        for item in items {
            let Some(row) = self.row(item.0) else {
                return 0;
            };
            for (a, w) in acc.iter_mut().zip(row) {
                *a &= w;
            }
        }
        acc.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Counts every candidate's support, chunking the candidate list across
    /// worker threads; per-chunk results concatenate in candidate order.
    pub fn count(&self, candidates: &[Itemset]) -> Vec<u64> {
        let _span = ossm_obs::detail_span("mining.bitmap.count");
        ossm_par::map_chunks(candidates.len(), MIN_CAND_CHUNK, |r| {
            candidates[r]
                .iter()
                .map(|c| self.support(c))
                .collect::<Vec<u64>>()
        })
        .concat()
    }
}

/// Counts candidate supports via packed bitmaps. The drop-in alternative to
/// [`crate::support::count_linear`] and [`crate::hashtree::count_hash_tree`].
pub fn count_bitmap(transactions: &[Itemset], candidates: &[Itemset]) -> Vec<u64> {
    if candidates.is_empty() {
        return Vec::new();
    }
    ItemBitmaps::build(transactions).count(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::count_linear;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn matches_manual_counts() {
        let txs = vec![set(&[0, 1, 2]), set(&[0, 2]), set(&[1]), set(&[0, 1])];
        let cands = vec![set(&[0]), set(&[0, 1]), set(&[0, 1, 2]), set(&[3])];
        assert_eq!(count_bitmap(&txs, &cands), vec![3, 2, 1, 0]);
        assert_eq!(count_bitmap(&[], &cands), vec![0, 0, 0, 0]);
        assert_eq!(count_bitmap(&txs, &[]), Vec::<u64>::new());
    }

    #[test]
    fn empty_candidate_counts_every_transaction() {
        let txs = vec![set(&[0]), set(&[]), set(&[1, 2])];
        assert_eq!(count_bitmap(&txs, &[set(&[])]), vec![3]);
    }

    #[test]
    fn empty_transactions_contribute_nothing() {
        let txs = vec![set(&[]), set(&[]), set(&[0])];
        assert_eq!(count_bitmap(&txs, &[set(&[0]), set(&[1])]), vec![1, 0]);
    }

    #[test]
    fn word_boundaries_are_exact() {
        // 64, 65, 127, 128, 129 transactions straddle the u64 packing edges.
        for n in [63usize, 64, 65, 127, 128, 129, 200] {
            let txs: Vec<Itemset> = (0..n)
                .map(|t| {
                    if t % 3 == 0 {
                        set(&[0, 1])
                    } else {
                        set(&[(t % 5) as u32])
                    }
                })
                .collect();
            let cands = vec![set(&[0]), set(&[1]), set(&[0, 1]), set(&[4])];
            assert_eq!(
                count_bitmap(&txs, &cands),
                count_linear(&txs, &cands),
                "n={n}"
            );
        }
    }

    #[test]
    fn agrees_with_linear_on_random_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xB17);
        let m = 24u32;
        let txs: Vec<Itemset> = (0..300)
            .map(|_| {
                let len = rng.gen_range(0..8usize);
                let mut ids: Vec<u32> = (0..len).map(|_| rng.gen_range(0..m)).collect();
                ids.sort_unstable();
                ids.dedup();
                set(&ids)
            })
            .collect();
        let cands: Vec<Itemset> = (0..150)
            .map(|_| {
                let len = rng.gen_range(1..4usize);
                let mut ids: Vec<u32> = (0..len).map(|_| rng.gen_range(0..m + 2)).collect();
                ids.sort_unstable();
                ids.dedup();
                set(&ids)
            })
            .collect();
        assert_eq!(count_bitmap(&txs, &cands), count_linear(&txs, &cands));
    }
}
