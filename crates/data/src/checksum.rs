//! CRC32C (Castagnoli) checksums for the on-disk formats.
//!
//! Every persistent artifact in the workspace — `OSSMPAGE` stores,
//! `OSSM-MAP` snapshots, and the incremental-append WAL — protects its
//! bytes with CRC32C. The polynomial (0x1EDC6F41, reflected 0x82F63B78)
//! is the one used by iSCSI, ext4, and most storage engines: it detects
//! all single-bit errors, all double-bit errors within the codeword
//! lengths we use, and any burst up to 32 bits — exactly the torn-write
//! and bit-rot failure modes the durability layer defends against
//! (DESIGN.md §9). The implementation is a table-driven software CRC;
//! the artifacts it guards are small (the OSSM is a sketch), so raw
//! throughput is not a concern.

/// One entry per byte value: the CRC of that byte fed into an all-zero
/// register, reflected polynomial 0x82F63B78.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// One-shot CRC32C of `bytes`.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = Crc32c::new();
    crc.update(bytes);
    crc.finish()
}

/// Incremental CRC32C state, for hashing data as it streams past.
#[derive(Clone, Copy, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Crc32c {
    /// Fresh state (equivalent to hashing zero bytes).
    pub fn new() -> Self {
        Crc32c { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (does not consume the state;
    /// more updates may follow).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32c {
    fn default() -> Self {
        Crc32c::new()
    }
}

/// A [`std::io::Write`] adapter that checksums everything written through
/// it. Used by the persistence codecs to compute a file's trailer CRC in
/// one pass with the serialization itself.
pub struct Crc32cWriter<W> {
    inner: W,
    crc: Crc32c,
}

impl<W: std::io::Write> Crc32cWriter<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        Crc32cWriter {
            inner,
            crc: Crc32c::new(),
        }
    }

    /// CRC of every byte successfully written so far.
    pub fn digest(&self) -> u32 {
        self.crc.finish()
    }

    /// Unwraps the adapter, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The underlying writer (e.g. to append an un-checksummed trailer).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: std::io::Write> std::io::Write for Crc32cWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A [`std::io::Read`] adapter that checksums everything read through it,
/// so a decoder can verify a trailer CRC after parsing the payload.
pub struct Crc32cReader<R> {
    inner: R,
    crc: Crc32c,
}

impl<R: std::io::Read> Crc32cReader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        Crc32cReader {
            inner,
            crc: Crc32c::new(),
        }
    }

    /// CRC of every byte successfully read so far.
    pub fn digest(&self) -> u32 {
        self.crc.finish()
    }

    /// The underlying reader (e.g. to read the un-checksummed trailer).
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: std::io::Read> std::io::Read for Crc32cReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn matches_the_reference_vector() {
        // The canonical CRC32C check value (RFC 3720 appendix / every
        // storage engine's self-test).
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input_and_zero_runs() {
        assert_eq!(crc32c(b""), 0);
        // 32 bytes of zeros — the iSCSI test vector.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut crc = Crc32c::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finish(), crc32c(&data));
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data = b"the OSSM is a persistent artifact".to_vec();
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), clean, "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn writer_and_reader_adapters_agree() {
        let payload = b"checksummed page payload".to_vec();
        let mut w = Crc32cWriter::new(Vec::new());
        w.write_all(&payload).unwrap();
        assert_eq!(w.digest(), crc32c(&payload));
        let bytes = w.into_inner();
        let mut r = Crc32cReader::new(bytes.as_slice());
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back, payload);
        assert_eq!(r.digest(), crc32c(&payload));
    }
}
