//! Reproduces Figure 6 of the paper: segmentation cost (a) and speedup (b)
//! as a function of bubble-list size, for the Random-Greedy and Random-RC
//! hybrids. The bubble list is built at a 0.25 % reference threshold while
//! queries run at 1 %, matching the paper's threshold-mismatch setup.
//!
//! Usage: `cargo run -p ossm-bench --release --bin fig6 -- [--pages=2500]
//! [--full] [--items=1000] [--nuser=40] [--nmid=200]
//! [--bubble-minsup=0.0025] [--minsup=0.01]
//! [--trace[=chrome|folded] [PATH]]`

use ossm_bench::experiments::fig6;
use ossm_bench::traceio;

fn main() {
    traceio::main_with_trace(|opts| {
        print!("{}", fig6(opts));
        0
    });
}
