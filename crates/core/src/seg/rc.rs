//! The RC (Random Closest) segmentation algorithm (Figure 3 of the paper).
//!
//! Each iteration picks a *random* remaining segment and merges it with the
//! segment *closest* to it — the one minimizing the pairwise merge loss of
//! equation (2). Relative to Greedy, RC gives up finding the globally
//! minimal pair (and with it the priority queue); each of the `p − n_user`
//! iterations costs one scan over the remaining segments, for the paper's
//! O(p²·m²) total (O(p²·k log k) here, with `k` the loss scope size).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::loss::LossCalculator;
use crate::segmentation::{Aggregate, Segmentation};

use super::{trivial, validate, SegmentationAlgorithm};

/// Merges performed by RC.
static MERGES: ossm_obs::Counter = ossm_obs::Counter::new("core.seg.rc.merges");
/// Equation-(2) merge-loss evaluations in the closest-segment scans.
static LOSS_EVALS: ossm_obs::Counter = ossm_obs::Counter::new("core.seg.rc.loss_evals");

/// Minimum live segments per parallel closest-scan chunk.
const MIN_SCAN: usize = 16;

/// Random-Closest segmentation. Deterministic for a fixed seed.
#[derive(Clone, Debug)]
pub struct RandomClosest {
    calc: LossCalculator,
    seed: u64,
}

impl RandomClosest {
    /// Creates the algorithm with a loss calculator (full or bubble-scoped)
    /// and an RNG seed.
    pub fn new(calc: LossCalculator, seed: u64) -> Self {
        RandomClosest { calc, seed }
    }
}

impl Default for RandomClosest {
    fn default() -> Self {
        RandomClosest::new(LossCalculator::all_items(), 0)
    }
}

impl SegmentationAlgorithm for RandomClosest {
    fn name(&self) -> String {
        "RC".to_owned()
    }

    fn segment(&self, inputs: &[Aggregate], n_user: usize) -> Segmentation {
        validate(inputs, n_user);
        if let Some(t) = trivial(inputs, n_user) {
            return t;
        }
        let _seg_span = ossm_obs::span("core.seg.rc");
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Working set of live segments: (aggregate, original input indices).
        let mut live: Vec<(Aggregate, Vec<usize>)> = inputs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), vec![i]))
            .collect();
        while live.len() > n_user {
            let mut round = ossm_obs::detail_span("core.seg.rc.round");
            round.watch(&LOSS_EVALS);
            // Step 2: pick a random segment S1.
            let i = rng.gen_range(0..live.len());
            // Step 3: find the closest segment S2 (min merge loss; ties to
            // the lowest index so runs are reproducible). The scan chunks
            // across worker threads; each chunk reports its local best and
            // the `(loss, j)` tuple min over chunk results reproduces the
            // serial tie-break exactly, at any thread count.
            let best = ossm_par::map_chunks(live.len(), MIN_SCAN, |r| {
                let mut local: Option<(u64, usize)> = None;
                for (j, (agg, _)) in live[r.clone()].iter().enumerate() {
                    let j = r.start + j;
                    if j == i {
                        continue;
                    }
                    let loss = self.calc.merge_loss(&live[i].0, agg);
                    if local.map_or(true, |(bl, bj)| (loss, j) < (bl, bj)) {
                        local = Some((loss, j));
                    }
                }
                local
            })
            .into_iter()
            .flatten()
            .min();
            LOSS_EVALS.add(live.len() as u64 - 1);
            let (_, j) = best.expect("at least two live segments");
            // Step 4: merge S1 and S2. Remove the higher index first so the
            // lower one stays valid under swap_remove.
            let (agg_removed, mut grp_removed) = live.swap_remove(j.max(i));
            let (agg_kept, grp_kept) = &mut live[j.min(i)];
            agg_kept.merge_in(&agg_removed);
            grp_kept.append(&mut grp_removed);
            MERGES.incr();
        }
        Segmentation::from_groups(live.into_iter().map(|(_, g)| g).collect(), inputs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::testutil;

    #[test]
    fn satisfies_the_algorithm_contract() {
        testutil::check_contract(&RandomClosest::default());
    }

    #[test]
    fn single_merge_is_always_lossless_when_a_partner_exists() {
        // Whatever segment RC's random pick lands on, its *closest*
        // neighbour is its zero-loss same-configuration partner — so one
        // merge (n_user = 3 on 4 inputs) never loses accuracy.
        let inputs = testutil::two_config_inputs();
        let calc = LossCalculator::all_items();
        for seed in 0..10 {
            let algo = RandomClosest::new(calc.clone(), seed);
            let seg = algo.segment(&inputs, 3);
            assert_eq!(calc.segmentation_loss(&inputs, &seg), 0, "seed {seed}");
        }
    }

    #[test]
    fn some_seed_finds_the_lossless_two_way_split() {
        // Down to 2 segments RC is not guaranteed optimal (the random pick
        // may select the freshly merged segment), but some seeds find the
        // zero-loss split — and no seed should be worse than merging all
        // four inputs into one segment.
        let inputs = testutil::two_config_inputs();
        let calc = LossCalculator::all_items();
        let everything = calc.set_loss(inputs.iter());
        let losses: Vec<u64> = (0..10)
            .map(|seed| {
                let algo = RandomClosest::new(calc.clone(), seed);
                calc.segmentation_loss(&inputs, &algo.segment(&inputs, 2))
            })
            .collect();
        assert!(
            losses.contains(&0),
            "no seed found the lossless split: {losses:?}"
        );
        assert!(
            losses.iter().all(|&l| l <= everything),
            "worse than one segment: {losses:?}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let inputs = testutil::two_config_inputs();
        let algo = RandomClosest::new(LossCalculator::all_items(), 3);
        assert_eq!(algo.segment(&inputs, 2), algo.segment(&inputs, 2));
    }

    #[test]
    fn respects_bubble_scope() {
        // With the loss scoped to item 1 (identical everywhere), every merge
        // costs zero and RC still produces a valid segmentation.
        let algo = RandomClosest::new(LossCalculator::scoped(vec![1]), 0);
        let inputs = testutil::two_config_inputs();
        let seg = algo.segment(&inputs, 2);
        assert_eq!(seg.num_segments(), 2);
    }
}
