//! Crash-safe incremental OSSM maintenance.
//!
//! [`crate::incremental::IncrementalOssm`] keeps the map current as data
//! streams in, but it lives in memory: a crash loses every append since
//! the last explicit save, and a crash *during* a save could corrupt the
//! saved map itself. [`DurableIncrementalOssm`] closes both holes with
//! the classic snapshot + write-ahead-log pairing:
//!
//! * every append is first written to a checksummed, fsynced WAL record
//!   ([`ossm_data::wal`]) and only then applied in memory — an
//!   acknowledged append survives any crash;
//! * [`DurableIncrementalOssm::checkpoint`] persists the current map via
//!   [`crate::persist::save_atomic`] (`tmp + fsync + rename`) and then
//!   empties the WAL — at every instant the directory holds a complete
//!   snapshot plus a replayable suffix of appends;
//! * [`DurableIncrementalOssm::open`] loads the last good snapshot and
//!   replays whatever the WAL holds. A torn WAL tail (crash mid-append)
//!   is truncated — that record was never acknowledged.
//!
//! # Why recovery keeps bounds sound
//!
//! Segment aggregates only ever *add* (supports and transaction counts
//! are sums), so replaying a WAL record can never lower a support below
//! its true value — eq. (1) stays an upper bound after any recovery. The
//! one subtle window is a crash *between* the snapshot rename and the WAL
//! reset inside [`checkpoint`](DurableIncrementalOssm::checkpoint): the
//! next open then replays appends that the snapshot already contains,
//! double-counting them. That makes bounds *looser*, never unsound, and
//! the window closes at the next checkpoint. Exactly-once replay would
//! need a WAL sequence number in the snapshot; the paper's use case
//! (pruning) only needs soundness, so we document the slack instead.

use std::io;
use std::path::{Path, PathBuf};

use ossm_data::wal::WriteAheadLog;
use ossm_data::Itemset;

use crate::incremental::IncrementalOssm;
use crate::loss::LossCalculator;
use crate::persist;
use crate::segmentation::Aggregate;
use crate::ssm::Ossm;

/// Snapshot file name inside the map directory.
const SNAPSHOT: &str = "snapshot.ossm";
/// WAL file name inside the map directory.
const WAL: &str = "wal.log";

/// Wall-clock latency of durable appends (WAL fsync + in-memory apply),
/// the insert-side half of live request telemetry.
static REQ_INSERT_LATENCY: ossm_obs::Latency = ossm_obs::Latency::new("req.insert.latency");
/// Transactions acknowledged through durable appends.
static REQ_INSERT_TRANSACTIONS: ossm_obs::Counter =
    ossm_obs::Counter::new("req.insert.transactions");
/// Wall-clock latency of `ub(X)` upper-bound queries against the served
/// map. Public and defined once so every layer issuing queries (the
/// streaming miner's candidate filter, the CLI's live workload) feeds
/// the same histogram — duplicate statics with one name would shadow
/// each other in registry snapshots.
pub static REQ_UB_LATENCY: ossm_obs::Latency = ossm_obs::Latency::new("req.ub.latency");

/// What [`DurableIncrementalOssm::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded (false: the map started empty).
    pub from_snapshot: bool,
    /// Appends replayed from the WAL on top of the snapshot.
    pub replayed_appends: usize,
    /// Whether a torn WAL tail — the signature of a crash mid-append —
    /// was truncated away.
    pub truncated_tail: bool,
}

/// An [`IncrementalOssm`] whose appends survive crashes.
pub struct DurableIncrementalOssm {
    inner: IncrementalOssm,
    wal: WriteAheadLog,
    snapshot_path: PathBuf,
    num_items: usize,
}

impl DurableIncrementalOssm {
    /// Opens (creating if needed) the durable map stored in directory
    /// `dir`, recovering from whatever snapshot + WAL state a previous
    /// process — crashed or not — left behind.
    ///
    /// `num_items` and `max_segments` must match across opens of the same
    /// directory; a snapshot with a different item domain or more
    /// segments than the budget is rejected.
    pub fn open(
        dir: &Path,
        num_items: usize,
        max_segments: usize,
        calc: LossCalculator,
    ) -> io::Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT);
        let mut report = RecoveryReport::default();
        let inner = if snapshot_path.exists() {
            let snap = persist::load(&snapshot_path)?;
            if snap.num_items() != num_items {
                return Err(invalid(format!(
                    "snapshot has {} items, caller expects {num_items}",
                    snap.num_items()
                )));
            }
            if snap.num_segments() > max_segments {
                return Err(invalid(format!(
                    "snapshot has {} segments, over the budget of {max_segments}",
                    snap.num_segments()
                )));
            }
            report.from_snapshot = true;
            IncrementalOssm::from_ossm(&snap, max_segments, calc)
        } else {
            IncrementalOssm::new(max_segments, calc).map_err(|e| invalid(e.to_string()))?
        };
        let (wal, recovery) = WriteAheadLog::open(&dir.join(WAL))?;
        report.truncated_tail = recovery.truncated_tail;
        let mut durable = DurableIncrementalOssm {
            inner,
            wal,
            snapshot_path,
            num_items,
        };
        for record in &recovery.records {
            let agg = decode_aggregate(record, num_items)?;
            durable.inner.append_aggregate(agg);
            report.replayed_appends += 1;
        }
        Ok((durable, report))
    }

    /// Appends one page-aggregate durably: the WAL record is fsynced
    /// before the in-memory map changes, so `Ok` means the append
    /// survives a crash. On `Err` the map is unchanged.
    // SOUND: the aggregate passes through unchanged — WAL-then-map
    // ordering affects durability only; the in-memory supports are the
    // same `IncrementalOssm::append_aggregate` would produce alone.
    pub fn append_aggregate(&mut self, aggregate: Aggregate) -> io::Result<()> {
        let _timer = REQ_INSERT_LATENCY.time();
        if aggregate.supports().len() != self.num_items {
            return Err(invalid(format!(
                "aggregate over {} items, map over {}",
                aggregate.supports().len(),
                self.num_items
            )));
        }
        let transactions = aggregate.transactions();
        self.wal.append(&encode_aggregate(&aggregate))?;
        self.inner.append_aggregate(aggregate);
        REQ_INSERT_TRANSACTIONS.add(transactions);
        Ok(())
    }

    /// Aggregates and durably appends a batch of transactions as one
    /// logical page.
    pub fn append_transactions<'a>(
        &mut self,
        transactions: impl IntoIterator<Item = &'a Itemset>,
    ) -> io::Result<()> {
        // SOUND: exact aggregation — each transaction increments its
        // items' supports exactly once before the durable append.
        let mut supports = vec![0u64; self.num_items];
        let mut count = 0u64;
        for t in transactions {
            count += 1;
            for item in t.items() {
                supports[item.index()] += 1;
            }
        }
        self.append_aggregate(Aggregate::new(supports, count))
    }

    /// Persists the current map as the new snapshot (atomically) and
    /// empties the WAL. A crash anywhere in between leaves a recoverable
    /// state; see the module docs for the double-replay caveat. No-op on
    /// a map that has never absorbed an append.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        if self.inner.num_segments() == 0 {
            return Ok(());
        }
        persist::save_atomic(&self.snapshot_path, &self.inner.snapshot())?;
        self.wal.reset()
    }

    /// Snapshots the current in-memory map for querying/filtering.
    ///
    /// # Panics
    /// Panics if nothing has ever been appended (no segments exist).
    pub fn snapshot(&self) -> Ossm {
        self.inner.snapshot()
    }

    /// Number of live segments.
    pub fn num_segments(&self) -> usize {
        self.inner.num_segments()
    }

    /// Appends absorbed since this handle opened (replays included).
    pub fn appended_pages(&self) -> u64 {
        self.inner.appended_pages()
    }
}

/// WAL payload for one aggregate: `transactions u64`, then one `u64` per
/// item of the (dense) support vector. The item count is fixed by the
/// map, so the length is self-checking.
// SOUND: lossless little-endian encoding; `decode_aggregate` inverts it
// bit-for-bit, so a replayed support equals the appended one.
fn encode_aggregate(aggregate: &Aggregate) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 8 * aggregate.supports().len());
    buf.extend_from_slice(&aggregate.transactions().to_le_bytes());
    for &s in aggregate.supports() {
        buf.extend_from_slice(&s.to_le_bytes());
    }
    buf
}

/// Decodes up to 8 little-endian bytes, zero-padding a short slice —
/// `decode_aggregate` has already length-checked its input, and padding
/// keeps this recovery path panic-free even if that check drifts.
fn le_u64(b: &[u8]) -> u64 {
    let mut fixed = [0u8; 8];
    for (dst, src) in fixed.iter_mut().zip(b) {
        *dst = *src;
    }
    u64::from_le_bytes(fixed)
}

// SOUND: exact inverse of `encode_aggregate` for length-checked input;
// a record of any other length is rejected rather than reinterpreted,
// so replay can never fabricate or shrink a support.
fn decode_aggregate(payload: &[u8], num_items: usize) -> io::Result<Aggregate> {
    if payload.len() != 8 + 8 * num_items {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "WAL record of {} bytes does not hold a {num_items}-item aggregate",
                payload.len()
            ),
        ));
    }
    let transactions = le_u64(&payload[..8]);
    let supports = payload[8..].chunks_exact(8).map(le_u64).collect();
    Ok(Aggregate::new(supports, transactions))
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ossm-durable-tests").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn open(dir: &Path) -> (DurableIncrementalOssm, RecoveryReport) {
        DurableIncrementalOssm::open(dir, 3, 4, LossCalculator::all_items()).expect("open")
    }

    #[test]
    fn appends_survive_reopen_without_a_checkpoint() {
        let dir = tmp_dir("no-checkpoint");
        let (mut map, report) = open(&dir);
        assert_eq!(report, RecoveryReport::default());
        map.append_aggregate(Aggregate::new(vec![5, 0, 2], 6))
            .expect("append");
        map.append_aggregate(Aggregate::new(vec![1, 9, 0], 9))
            .expect("append");
        drop(map);
        let (map, report) = open(&dir);
        assert!(!report.from_snapshot);
        assert_eq!(report.replayed_appends, 2);
        let snap = map.snapshot();
        assert_eq!(snap.num_transactions(), 15);
        assert_eq!(snap.segments()[0].supports(), &[5, 0, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_moves_state_into_the_snapshot() {
        let dir = tmp_dir("checkpoint");
        let (mut map, _) = open(&dir);
        map.append_aggregate(Aggregate::new(vec![4, 4, 4], 4))
            .expect("append");
        map.checkpoint().expect("checkpoint");
        map.append_aggregate(Aggregate::new(vec![1, 0, 0], 1))
            .expect("append");
        let before = map.snapshot();
        drop(map);
        let (map, report) = open(&dir);
        assert!(report.from_snapshot);
        assert_eq!(
            report.replayed_appends, 1,
            "only the post-checkpoint append"
        );
        assert_eq!(map.snapshot(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_geometry_is_rejected() {
        let dir = tmp_dir("geometry");
        let (mut map, _) = open(&dir);
        let err = map
            .append_aggregate(Aggregate::new(vec![1, 2], 2))
            .expect_err("2 items into a 3-item map");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        map.append_aggregate(Aggregate::new(vec![1, 2, 3], 3))
            .expect("append");
        map.checkpoint().expect("checkpoint");
        drop(map);
        assert!(
            DurableIncrementalOssm::open(&dir, 7, 4, LossCalculator::all_items()).is_err(),
            "snapshot item-domain mismatch"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_budget_is_an_error() {
        let dir = tmp_dir("zero-budget");
        assert!(DurableIncrementalOssm::open(&dir, 3, 0, LossCalculator::all_items()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Fault-injected variant of the kill-and-recover scenario: the tear
    /// happens inside the WAL's own write path rather than by mutating
    /// the file afterwards, so the append itself reports the failure.
    /// (This is the only test in this binary that arms the global fault
    /// plan, and cargo runs test binaries sequentially, so no lock is
    /// needed here.)
    #[cfg(feature = "faults")]
    #[test]
    fn injected_torn_append_errors_and_recovery_drops_it() {
        use ossm_data::fault::FaultPlan;

        let dir = tmp_dir("injected-tear");
        let (mut map, _) = open(&dir);
        map.append_aggregate(Aggregate::new(vec![3, 1, 4], 5))
            .expect("append");
        map.append_aggregate(Aggregate::new(vec![1, 5, 9], 9))
            .expect("append");

        // Tear the next WAL write after 12 bytes: the length/crc header
        // lands whole, the payload does not.
        let mut plan = FaultPlan::new();
        plan.tear_write("data.wal.append", 1, 12);
        let guard = plan.arm();
        let err = map
            .append_aggregate(Aggregate::new(vec![2, 6, 5], 7))
            .expect_err("torn append must surface as an error");
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert_eq!(guard.fired(), 1);
        drop(guard);
        // The failed append never reached the in-memory map.
        assert_eq!(map.snapshot().num_transactions(), 14);
        drop(map);

        let (map, report) = open(&dir);
        assert!(
            report.truncated_tail,
            "the half-written record is a torn tail"
        );
        assert_eq!(
            report.replayed_appends, 2,
            "only acknowledged appends return"
        );
        assert_eq!(map.snapshot().num_transactions(), 14);
        std::fs::remove_dir_all(&dir).ok();
    }
}
