//! R5 — format magics and version constants defined exactly once.
//!
//! `OSSMPAGE`, `OSSM-MAP`, `OSSM-WAL`, and `OSSMDATA` each have exactly
//! one defining site; a second copy of a magic byte-string is how format
//! forks start (one writer bumps a version, the stale copy keeps
//! stamping old headers). Every `b"OSSM…"` literal in non-test code must
//! be a registered `(literal, file)` pair from
//! `crates/lint/format-constants.txt`, appear exactly once, and each
//! registered version constant must be defined once in its file.

use super::{Context, FormatConst, FORMAT_CONSTS_PATH};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;

pub fn check(ctx: &Context<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Count magic-literal occurrences per (literal, file).
    for file in ctx.files {
        for (i, t) in file.toks.iter().enumerate() {
            if t.kind != TokKind::ByteStr || file.in_test[i] || !t.text.starts_with("OSSM") {
                continue;
            }
            let registered = ctx.format_consts.iter().find_map(|c| match c {
                FormatConst::Magic { literal, file } if *literal == t.text => Some(file.as_str()),
                _ => None,
            });
            match registered {
                None => out.push(Diagnostic {
                    rule: "R5",
                    path: file.path.clone(),
                    line: t.line,
                    key: format!("magic.{}", t.text),
                    message: format!(
                        "unregistered format magic b\"{}\" — add it to {FORMAT_CONSTS_PATH} \
                         with its single defining file",
                        t.text
                    ),
                }),
                Some(canonical) if canonical != file.path => out.push(Diagnostic {
                    rule: "R5",
                    path: file.path.clone(),
                    line: t.line,
                    key: format!("magic.{}", t.text),
                    message: format!(
                        "format magic b\"{}\" duplicated outside its defining file \
                         ({canonical}) — reference the constant instead",
                        t.text
                    ),
                }),
                Some(_) => {}
            }
        }
    }
    // Existence and uniqueness at the canonical sites (full-tree only:
    // a fixture run sees a single file and would report every other
    // constant as missing).
    if ctx.all_mode {
        for c in ctx.format_consts {
            let (what, canonical, count) = match c {
                FormatConst::Magic { literal, file } => {
                    let count = ctx
                        .files
                        .iter()
                        .filter(|f| f.path == *file)
                        .flat_map(|f| {
                            f.toks.iter().enumerate().filter(|(i, t)| {
                                t.kind == TokKind::ByteStr && !f.in_test[*i] && t.text == *literal
                            })
                        })
                        .count();
                    (format!("magic b\"{literal}\""), file, count)
                }
                FormatConst::Const { name, file } => {
                    let count = ctx
                        .files
                        .iter()
                        .filter(|f| f.path == *file)
                        .flat_map(|f| {
                            f.toks.iter().enumerate().filter(|(i, t)| {
                                t.is_ident("const")
                                    && !f.in_test[*i]
                                    && f.toks[i + 1..]
                                        .iter()
                                        .find(|n| !n.is_comment())
                                        .is_some_and(|n| n.is_ident(name))
                            })
                        })
                        .count();
                    (format!("const `{name}`"), file, count)
                }
            };
            if count != 1 {
                let key = match c {
                    FormatConst::Magic { literal, .. } => format!("magic.{literal}"),
                    FormatConst::Const { name, .. } => format!("const.{name}"),
                };
                out.push(Diagnostic {
                    rule: "R5",
                    path: canonical.clone(),
                    line: 0,
                    key,
                    message: format!(
                        "{what} must be defined exactly once in {canonical}, found {count} \
                         non-test occurrence(s) — update {FORMAT_CONSTS_PATH} if the format moved"
                    ),
                });
            }
        }
    }
    out
}
