//! `ossm` — command-line front door to the OSSM reproduction.
//!
//! Run `ossm help` for the subcommand list.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ossm_cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", ossm_cli::USAGE);
            std::process::exit(1);
        }
    }
}
