//@path: crates/core/src/metrics.rs
//@expect: R3
//! Seeded violation for rule R3: counters, gauges, spans, allocation
//! scopes, and flight-recorder events declared with names that are not
//! in `crates/obs/registry.txt`.

pub static ROGUE: Counter = Counter::new("core.fixture.unregistered");
pub static ROGUE_GAUGE: Gauge = Gauge::new("mem.fixture.unregistered");

pub fn traced() {
    let _s = span("core.fixture.rogue_span");
    let _a = alloc_scope("core.fixture.rogue_scope");
    record_event("core.fixture.rogue_event", EventKind::Fault, 0);
}
