//! Reproduces Figure 5 of the paper: segmentation cost and speedup for the
//! pure strategies at p = 500 (a) and for the Random-RC / Random-Greedy
//! hybrids at large p (b).
//!
//! Usage: `cargo run -p ossm-bench --release --bin fig5 -- [--pages=500]
//! [--hybrid-pages=2500] [--full] [--items=1000] [--nuser=40] [--nmid=200]`
//!
//! `--full` restores the paper's 50 000 hybrid pages (5 M transactions).
//! `--trace[=chrome|folded] [PATH]` records a span trace of the run.

use ossm_bench::experiments::fig5;
use ossm_bench::traceio;

fn main() {
    traceio::main_with_trace(|opts| {
        print!("{}", fig5(opts));
        0
    });
}
