//! The bench regression gate.
//!
//! Runs the experiment suite at the committed smoke scale, flattens the
//! resulting `BENCH_obs.json` stream, and compares it metric-by-metric
//! against the committed baseline. Deterministic count metrics (candidate
//! counts, losses, counter values, phase call counts) are gated at ±5 %
//! relative drift by default; timing metrics are report-only unless
//! `--max-time-regress` is given. Exits non-zero on any breach, so CI can
//! gate merges on it.
//!
//! Usage: `cargo run -p ossm-bench --release --bin regress --
//! [--baseline=BENCH_baseline.json] [--current=PATH] [--count-drift=0.05]
//! [--mem-drift=0.10] [--max-time-regress=0.25] [--report=PATH] [--write-baseline]
//! [--trace[=chrome|folded] [PATH]]`
//!
//! * default: fresh smoke-scale run vs `--baseline`, markdown report on
//!   stdout, exit 1 on failure;
//! * `--current=PATH`: compare an existing obs file instead of running
//!   (e.g. one produced by `all-experiments` at another scale — the
//!   baseline must have been recorded at the same scale);
//! * `--write-baseline`: record a fresh smoke run as the baseline and exit.

use ossm_bench::experiments::{obs_json_body, run_all, smoke_options};
use ossm_bench::regress::{compare, parse_obs_lines, ObsData, Thresholds};
use ossm_bench::traceio;

fn main() {
    traceio::main_with_trace(|opts| {
        let baseline_path: String = opts.get("baseline", "BENCH_baseline.json".to_owned());

        if opts.flag("write-baseline") {
            let (_, rows) = run_all(&smoke_options());
            let body = obs_json_body(&rows);
            return match std::fs::write(&baseline_path, &body) {
                Ok(()) => {
                    eprintln!("wrote smoke-scale baseline -> {baseline_path}");
                    0
                }
                Err(e) => {
                    eprintln!("cannot write {baseline_path}: {e}");
                    1
                }
            };
        }

        let baseline = match read_obs(&baseline_path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("baseline {baseline_path}: {e}");
                eprintln!("(record one with `regress --write-baseline`)");
                return 2;
            }
        };
        let current = match opts.raw("current") {
            Some(path) => match read_obs(path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("current {path}: {e}");
                    return 2;
                }
            },
            None => {
                eprintln!("running the smoke-scale experiment suite…");
                let (_, rows) = run_all(&smoke_options());
                match parse_obs_lines(&obs_json_body(&rows)) {
                    Ok(d) => d,
                    Err(e) => {
                        eprintln!("internal error: fresh obs stream unparseable: {e}");
                        return 2;
                    }
                }
            }
        };

        let thresholds = Thresholds {
            count_drift: opts.get("count-drift", 0.05f64),
            time_regress: opts.raw("max-time-regress").map(|v| {
                v.parse::<f64>()
                    .unwrap_or_else(|e| panic!("--max-time-regress={v}: invalid value ({e:?})"))
            }),
            mem_drift: opts.get("mem-drift", Thresholds::default().mem_drift),
        };
        let report = compare(&baseline, &current, &thresholds);
        let markdown = report.to_markdown(&thresholds);
        println!("{markdown}");
        if let Some(path) = opts.raw("report") {
            if let Err(e) = std::fs::write(path, &markdown) {
                eprintln!("cannot write report to {path}: {e}");
                return 2;
            }
        }
        i32::from(report.failed())
    });
}

fn read_obs(path: &str) -> Result<ObsData, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_obs_lines(&text)
}
