//! Integration tests for the extension systems built around the core
//! reproduction: the generalized OSSM (footnote 3), incremental
//! maintenance, disk-resident mining, the episode layer, constrained
//! mining, and the condensed pattern representations — all composed
//! end-to-end through the facade crate.

use ossm::prelude::*;
use ossm_core::generalized::bubble_pairs;
use ossm_mining::patterns::{closed, maximal, support_from_closed};

fn tmpdir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ossm-extension-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn generalized_ossm_strictly_outprunes_the_base_map_somewhere() {
    // Seasonal data, coarse 4-segment map, bubble pairs tracked: for at
    // least one candidate pair the generalized bound must be strictly
    // tighter, and it must never be looser or unsound.
    let d = SkewedConfig {
        num_transactions: 2000,
        num_items: 40,
        ..SkewedConfig::default()
    }
    .generate();
    let threshold = d.absolute_threshold(0.01);
    let store = PageStore::with_page_count(d, 20);
    let (_, seg, _) = OssmBuilder::new(4)
        .strategy(Strategy::Greedy)
        .build_with_segmentation(&store);
    let bubble = BubbleList::from_store(&store, threshold, 12);
    let g = GeneralizedOssm::from_pages(&store, &seg, bubble_pairs(&bubble));
    let base = g.base().clone();

    let mut strictly_tighter = 0usize;
    for a in 0..40u32 {
        for b in (a + 1)..40 {
            let x = Itemset::new([a, b]);
            let gb = g.upper_bound(&x);
            assert!(gb <= base.upper_bound(&x));
            assert!(gb >= store.dataset().support(&x));
            if gb < base.upper_bound(&x) {
                strictly_tighter += 1;
            }
        }
    }
    assert!(
        strictly_tighter > 0,
        "tracking pairs should tighten some bound"
    );
}

#[test]
fn generalized_ossm_is_a_valid_lossless_filter() {
    struct GeneralFilter<'a>(&'a GeneralizedOssm);
    impl CandidateFilter for GeneralFilter<'_> {
        fn may_be_frequent(&self, candidate: &Itemset, min_support: u64) -> bool {
            !self.0.prunes(candidate, min_support)
        }
        fn name(&self) -> &str {
            "generalized-OSSM"
        }
    }
    let d = QuestConfig {
        num_transactions: 1200,
        num_items: 60,
        ..QuestConfig::small()
    }
    .generate();
    let min_support = d.absolute_threshold(0.02);
    let store = PageStore::with_page_count(d, 20);
    let (_, seg, _) = OssmBuilder::new(6)
        .strategy(Strategy::Rc)
        .build_with_segmentation(&store);
    let bubble = BubbleList::from_store(&store, min_support, 15);
    let g = GeneralizedOssm::from_pages(&store, &seg, bubble_pairs(&bubble));

    let plain = Apriori::new().mine(store.dataset(), min_support);
    let filtered = Apriori::new().mine_filtered(store.dataset(), min_support, &GeneralFilter(&g));
    assert_eq!(plain.patterns, filtered.patterns);
    assert!(filtered.metrics.total_counted() <= plain.metrics.total_counted());
}

#[test]
fn incremental_map_filters_mining_losslessly_after_streaming() {
    let d = SkewedConfig {
        num_transactions: 3000,
        num_items: 50,
        ..SkewedConfig::default()
    }
    .generate();
    let min_support = d.absolute_threshold(0.015);
    // Stream the data in 30 chunks into a 10-segment incremental map.
    let mut inc = IncrementalOssm::new(10, LossCalculator::all_items()).expect("budget > 0");
    for chunk in d.transactions().chunks(100) {
        inc.append_transactions(50, chunk);
    }
    let snapshot = inc.snapshot();
    let plain = Apriori::new().mine(&d, min_support);
    let filtered = Apriori::new().mine_filtered(&d, min_support, &OssmFilter::new(&snapshot));
    assert_eq!(plain.patterns, filtered.patterns);
    assert!(filtered.metrics.total_counted() <= plain.metrics.total_counted());
}

#[test]
fn disk_pipeline_matches_memory_pipeline_with_io_savings() {
    let d = QuestConfig {
        num_transactions: 3000,
        num_items: 80,
        ..QuestConfig::small()
    }
    .generate();
    let min_support = d.absolute_threshold(0.02);
    let path = tmpdir().join("pipeline.pages");
    ossm_data::disk::write_paged(&path, &d, 2048).expect("write");

    // Segmentation straight off the on-disk aggregate index.
    let mut store = DiskStore::open(&path, 8).expect("open");
    let aggs: Vec<Aggregate> = store
        .page_aggregate_vectors()
        .into_iter()
        .map(|(v, n)| Aggregate::new(v, n))
        .collect();
    assert_eq!(
        store.io_stats().page_reads,
        0,
        "segmentation input needs no page I/O"
    );
    let seg = ossm_core::seg::Greedy::default().segment(&aggs, 8);
    let ossm = Ossm::from_aggregates(seg.merge_aggregates(&aggs));

    let plain = StreamingApriori::new()
        .mine(&mut store, min_support, None)
        .expect("mine");
    let mut store2 = DiskStore::open(&path, 8).expect("open");
    let filtered = StreamingApriori::new()
        .mine(&mut store2, min_support, Some(&ossm))
        .expect("mine");
    assert_eq!(plain.patterns, filtered.patterns);
    assert!(
        filtered.page_reads < plain.page_reads,
        "the OSSM must save physical I/O"
    );

    // And both agree with the fully in-memory reference.
    let mem = Apriori::new().mine(&d, min_support);
    assert_eq!(mem.patterns, plain.patterns);
    std::fs::remove_file(&path).ok();
}

#[test]
fn episode_mining_over_windows_with_ossm() {
    // Build an alarm-like event sequence with a planted co-firing pair.
    let mut events = Vec::new();
    for t in 0..4000u64 {
        events.push(Event {
            time: t,
            kind: (t % 17) as u32,
        });
        if t % 5 == 0 {
            // kinds 20 and 21 co-fire every 5 ticks.
            events.push(Event { time: t, kind: 20 });
            events.push(Event { time: t, kind: 21 });
        }
    }
    let seq = EventSequence::new(22, events);
    let windows = seq.windows(10, 10);
    let min_support = windows.absolute_threshold(0.5);

    let store = PageStore::with_page_count(windows, 16);
    let (ossm, _) = OssmBuilder::new(8).strategy(Strategy::Rc).build(&store);
    let plain = Apriori::new().mine(store.dataset(), min_support);
    let filtered =
        Apriori::new().mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm));
    assert_eq!(plain.patterns, filtered.patterns);
    assert!(
        plain.patterns.contains(&Itemset::new([20, 21])),
        "the planted parallel episode must be frequent"
    );
}

#[test]
fn constrained_mining_with_ossm_matches_post_filtering() {
    let d = QuestConfig {
        num_transactions: 1500,
        num_items: 60,
        ..QuestConfig::small()
    }
    .generate();
    let min_support = d.absolute_threshold(0.02);
    let store = PageStore::with_page_count(d, 15);
    let (ossm, _) = OssmBuilder::new(6).build(&store);

    let constraint = Constraint::MaxSum {
        values: (0..60u64).collect(),
        bound: 50,
    };
    let mined = ConstrainedApriori::new()
        .with_constraint(constraint.clone())
        .mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm));
    let reference = ossm_mining::constraints::filter_patterns(
        &Apriori::new().mine(store.dataset(), min_support).patterns,
        std::slice::from_ref(&constraint),
    );
    assert_eq!(mined.patterns, reference);
}

#[test]
fn condensed_representations_compose_with_every_miner() {
    let d = SkewedConfig {
        num_transactions: 1000,
        num_items: 30,
        ..SkewedConfig::small()
    }
    .generate();
    let min_support = d.absolute_threshold(0.03);
    let full = FpGrowth::new().mine(&d, min_support).patterns;
    let closed_sets = closed(&full);
    let maximal_sets = maximal(&full);
    assert!(closed_sets.len() <= full.len());
    assert!(maximal_sets.len() <= closed_sets.len());
    for (p, s) in full.iter() {
        assert_eq!(support_from_closed(&closed_sets, p), Some(s));
    }
    // Every frequent set is a subset of some maximal set.
    for (p, _) in full.iter() {
        assert!(
            maximal_sets.iter().any(|m| p.is_subset_of(m)),
            "{p} not covered by any maximal set"
        );
    }
}

#[test]
fn ossm_persistence_roundtrips_through_the_facade() {
    let d = QuestConfig {
        num_transactions: 800,
        num_items: 40,
        ..QuestConfig::small()
    }
    .generate();
    let store = PageStore::with_page_count(d, 10);
    let (ossm, _) = OssmBuilder::new(5).build(&store);
    let path = tmpdir().join("facade.ossm");
    ossm_core::persist::save(&path, &ossm).expect("save");
    let loaded = ossm_core::persist::load(&path).expect("load");
    assert_eq!(loaded, ossm);
    std::fs::remove_file(&path).ok();
}
