//! Level metrics: a [`Gauge`] tracks a quantity that goes up *and* down
//! (bytes held, entries resident) and remembers the peak it reached —
//! the number the ROADMAP's memory-budget items actually care about.
//!
//! Mirrors the `Counter` design: declare as a `static`, the gauge
//! registers itself with the global registry on first use, and the whole
//! type collapses to a ZST when the `enabled` feature is off.

#[cfg(feature = "enabled")]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

    use crate::snapshot::GaugeSnapshot;

    /// A current/peak level metric.
    ///
    /// ```
    /// static MEM_BITMAP: ossm_obs::Gauge = ossm_obs::Gauge::new("mem.mining.bitmap");
    /// MEM_BITMAP.set(4096);
    /// ```
    pub struct Gauge {
        name: &'static str,
        /// Signed: scoped deallocation can be charged to a different
        /// subsystem than the matching allocation, driving a per-gauge
        /// current transiently below zero. Snapshots clamp at 0.
        current: AtomicI64,
        peak: AtomicU64,
        registered: AtomicBool,
    }

    impl Gauge {
        /// A gauge named `name`. `const`, so it can initialize a `static`.
        pub const fn new(name: &'static str) -> Self {
            Gauge {
                name,
                current: AtomicI64::new(0),
                peak: AtomicU64::new(0),
                registered: AtomicBool::new(false),
            }
        }

        /// Raises the level by `n`.
        #[inline]
        pub fn add(&'static self, n: u64) {
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
            let now = self.current.fetch_add(n as i64, Ordering::Relaxed) + n as i64;
            if now > 0 {
                self.peak.fetch_max(now as u64, Ordering::Relaxed);
            }
        }

        /// Lowers the level by `n`.
        #[inline]
        pub fn sub(&'static self, n: u64) {
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
            self.current.fetch_sub(n as i64, Ordering::Relaxed);
        }

        /// Sets the level to `n` outright — for sites that know the full
        /// size of a structure once built, independent of scheduling.
        #[inline]
        pub fn set(&'static self, n: u64) {
            if !self.registered.load(Ordering::Relaxed) {
                self.register();
            }
            self.current.store(n as i64, Ordering::Relaxed);
            self.peak.fetch_max(n, Ordering::Relaxed);
        }

        /// Raises the level by `n` for the lifetime of the returned guard.
        #[inline]
        pub fn charge(&'static self, n: u64) -> GaugeCharge {
            self.add(n);
            GaugeCharge { gauge: self, n }
        }

        /// Current level, clamped at 0.
        pub fn current(&self) -> u64 {
            self.current.load(Ordering::Relaxed).max(0) as u64
        }

        /// Highest level reached since the last reset.
        pub fn peak(&self) -> u64 {
            self.peak.load(Ordering::Relaxed)
        }

        pub(crate) fn name(&self) -> &'static str {
            self.name
        }

        pub(crate) fn snapshot(&self) -> GaugeSnapshot {
            GaugeSnapshot {
                current: self.current(),
                peak: self.peak(),
            }
        }

        /// Zeroes the level and re-arms the peak at it.
        pub(crate) fn reset(&self) {
            self.current.store(0, Ordering::Relaxed);
            self.peak.store(0, Ordering::Relaxed);
        }

        #[cold]
        fn register(&'static self) {
            if self
                .registered
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                crate::live::register_gauge(self);
            }
        }
    }

    /// RAII charge against a [`Gauge`]: lowers the level by the charged
    /// amount when dropped.
    #[must_use = "the charge is released when the guard drops"]
    pub struct GaugeCharge {
        gauge: &'static Gauge,
        n: u64,
    }

    impl Drop for GaugeCharge {
        fn drop(&mut self) {
            self.gauge.sub(self.n);
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    /// Disabled stand-in for the live `Gauge`: a ZST whose methods do
    /// nothing.
    pub struct Gauge;

    impl Gauge {
        /// Does nothing (instrumentation disabled).
        pub const fn new(_name: &'static str) -> Self {
            Gauge
        }

        /// Does nothing (instrumentation disabled).
        #[inline(always)]
        pub fn add(&'static self, _n: u64) {}

        /// Does nothing (instrumentation disabled).
        #[inline(always)]
        pub fn sub(&'static self, _n: u64) {}

        /// Does nothing (instrumentation disabled).
        #[inline(always)]
        pub fn set(&'static self, _n: u64) {}

        /// Returns an inert guard (instrumentation disabled).
        #[inline(always)]
        pub fn charge(&'static self, _n: u64) -> GaugeCharge {
            GaugeCharge
        }

        /// Always 0 (instrumentation disabled).
        #[inline(always)]
        pub fn current(&self) -> u64 {
            0
        }

        /// Always 0 (instrumentation disabled).
        #[inline(always)]
        pub fn peak(&self) -> u64 {
            0
        }
    }

    /// Disabled stand-in for the live `GaugeCharge` (drop does nothing).
    #[must_use = "the charge is released when the guard drops"]
    pub struct GaugeCharge;
}

pub use imp::{Gauge, GaugeCharge};
