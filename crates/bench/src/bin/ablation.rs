//! Runs the design-decision ablation studies of DESIGN.md §6:
//! loss-evaluation timing (A1), heuristic quality vs the exhaustive
//! optimum (A3), the Lemma 1 pre-pass (A4), and incremental maintenance
//! vs full rebuild (A5).
//!
//! Usage: `cargo run -p ossm-bench --release --bin ablation --
//! [--items=…] [--trials=…] [--pages=…] [--nuser=…]`

use ossm_bench::ablation;
use ossm_bench::cli::Options;

fn main() {
    print!("{}", ablation::all(&Options::from_env()));
}
