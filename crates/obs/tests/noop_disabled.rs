//! Compile-and-behavior test of the disabled (no-op) build: the default
//! feature set of `ossm-obs` is empty, so a bare `cargo test -p ossm-obs`
//! runs this file. Everything must compile against the same API as the
//! live build and record nothing.
#![cfg(not(feature = "enabled"))]

use ossm_obs::{phase, registry, Counter, Histogram, Reporter, StatsFormat};

static COUNTER: Counter = Counter::new("noop.counter");
static HISTOGRAM: Histogram = Histogram::new("noop.histogram");

#[test]
#[allow(clippy::assertions_on_constants)] // the constant IS the subject under test
fn stubs_are_zero_sized() {
    assert!(!ossm_obs::ENABLED);
    assert_eq!(std::mem::size_of::<Counter>(), 0);
    assert_eq!(std::mem::size_of::<Histogram>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::MetricsRegistry>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::Scope>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::PhaseGuard>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::SpanGuard>(), 0);
}

#[test]
fn recording_is_compiled_away() {
    // The full instrumentation surface must be callable…
    COUNTER.incr();
    COUNTER.add(42);
    HISTOGRAM.record(7);
    registry().add("noop.dynamic", 3);
    let scope = registry().scope("noop.scope");
    scope.add("x", 1);
    drop(scope.phase("span"));
    drop(phase("noop.phase"));
    // The span-tracing surface too: open spans, attach data, record a
    // "trace" — all of it must compile away and yield an empty trace.
    ossm_obs::trace_begin();
    assert!(!ossm_obs::trace_active(), "tracing can never activate");
    {
        let mut s = ossm_obs::span("noop.span");
        s.attach("page", 3);
        s.watch(&COUNTER);
        drop(ossm_obs::detail_span("noop.detail"));
    }
    let trace = ossm_obs::trace_take();
    assert!(trace.is_empty(), "disabled builds collect no spans");
    assert_eq!(trace.to_folded(), "");
    // …and leave no trace.
    assert_eq!(COUNTER.get(), 0);
    let snap = registry().snapshot();
    assert!(snap.is_empty(), "disabled builds must record nothing");
    assert!(Reporter::new(StatsFormat::Table).render(&snap).is_empty());
    assert!(Reporter::new(StatsFormat::Json).render(&snap).is_empty());
    registry().reset(); // must also be a no-op, not a panic
}
