//! # ossm-par — scoped fork-join parallelism for the OSSM reproduction
//!
//! A deliberately small data-parallel layer built on [`std::thread::scope`]:
//! no external dependencies, no `unsafe`, no long-lived pool. Work is
//! expressed as a *chunked map over an index range* — the caller hands over
//! `0..len` plus a closure over sub-ranges, and gets the per-chunk results
//! back **in chunk order**. Every consumer in the workspace combines those
//! partial results with an associative merge (element-wise sums of count
//! vectors, ordered concatenation, tuple-`min` reductions), so the final
//! value is bit-identical at any thread count — the property the
//! determinism tests pin at threads ∈ {1, 2, 8}.
//!
//! Thread-count resolution, in precedence order:
//!
//! 1. the programmatic override ([`set_threads`], wired to the CLI's
//!    `--threads N`),
//! 2. the `OSSM_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one thread (or one chunk) the map runs inline on the caller's
//! thread — no spawn, no overhead — so serial builds pay nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Fork-join jobs that actually spawned worker threads.
static JOBS: ossm_obs::Counter = ossm_obs::Counter::new("par.jobs");
/// Chunks executed on spawned workers.
static CHUNKS: ossm_obs::Counter = ossm_obs::Counter::new("par.chunks");
/// Maps that ran inline (one thread configured or only one chunk of work).
static SERIAL: ossm_obs::Counter = ossm_obs::Counter::new("par.serial");

/// Upper bound on the configured thread count; a typo like
/// `OSSM_THREADS=1000000` must not try to spawn a million threads.
const MAX_THREADS: usize = 256;

/// Process-wide thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or with `None` clears) the process-wide thread-count override.
/// Takes precedence over `OSSM_THREADS` and the detected CPU count; values
/// are clamped to `1..=256`.
pub fn set_threads(threads: Option<usize>) {
    let v = threads.map_or(0, |t| t.clamp(1, MAX_THREADS));
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// The number of worker threads fork-join maps may use right now.
pub fn thread_count() -> usize {
    let over = OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_THREADS))
}

/// `OSSM_THREADS`, parsed once per process. Unset, unparsable, or zero
/// values all mean "no preference".
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("OSSM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .map(|n| n.min(MAX_THREADS))
    })
}

/// Splits `0..len` into at most `max_chunks` contiguous, balanced ranges of
/// at least `min_chunk` elements each (except that a non-empty `len` always
/// yields at least one range). The partition depends only on `len`,
/// `min_chunk`, and `max_chunks` — never on scheduling.
pub fn chunk_ranges(len: usize, min_chunk: usize, max_chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let n = (len / min_chunk).clamp(1, max_chunks.max(1));
    let base = len / n;
    let rem = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Applies `f` to balanced chunks of `0..len` and returns the per-chunk
/// results **in chunk order**.
///
/// Chunks run on scoped worker threads when more than one thread is
/// configured and the range splits into more than one chunk of at least
/// `min_chunk` elements; otherwise the whole map runs inline. Combining the
/// returned vector with any associative merge yields a value independent of
/// the thread count.
pub fn map_chunks<T, F>(len: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(len, min_chunk, thread_count());
    if ranges.len() <= 1 {
        SERIAL.incr();
        return ranges.into_iter().map(f).collect();
    }
    JOBS.incr();
    CHUNKS.add(ranges.len() as u64);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                scope.spawn(move || {
                    // A root span in the worker's (fresh) thread-local span
                    // stack: traces show one lane per worker.
                    let mut lane = ossm_obs::detail_span("par.worker");
                    lane.attach("chunk_start", r.start as u64);
                    lane.attach("chunk_len", r.len() as u64);
                    // Per-worker event lane in the flight recorder: each
                    // worker stamps its chunk start, tagged with its own
                    // thread id, so postmortems show which workers ran.
                    ossm_obs::recorder::record_event(
                        "par.worker",
                        ossm_obs::recorder::EventKind::Worker,
                        r.start as u64,
                    );
                    f(r)
                })
            })
            .collect();
        // Joining in spawn order makes the output order — and therefore any
        // order-sensitive fold the caller runs — deterministic.
        handles
            .into_iter()
            .map(|h| h.join().expect("ossm-par worker panicked"))
            .collect()
    })
}

/// Element-wise sum of equal-length partial count vectors, folded in chunk
/// order. The canonical merge for transaction-chunked counting.
pub fn sum_counts(partials: Vec<Vec<u64>>) -> Vec<u64> {
    let mut iter = partials.into_iter();
    let Some(mut total) = iter.next() else {
        return Vec::new();
    };
    for part in iter {
        debug_assert_eq!(total.len(), part.len());
        for (t, p) in total.iter_mut().zip(&part) {
            *t += p;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that mutate the process-wide override must not interleave.
    fn override_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn chunk_ranges_partition_the_input() {
        for len in [0usize, 1, 7, 64, 100, 1000] {
            for min_chunk in [1usize, 10, 64] {
                for max_chunks in [1usize, 2, 3, 8] {
                    let ranges = chunk_ranges(len, min_chunk, max_chunks);
                    assert!(ranges.len() <= max_chunks);
                    let mut next = 0;
                    for r in &ranges {
                        assert_eq!(r.start, next, "contiguous");
                        assert!(!r.is_empty(), "no empty chunks");
                        next = r.end;
                    }
                    assert_eq!(next, len, "covers 0..len");
                    if len > 0 && ranges.len() > 1 {
                        assert!(ranges.iter().all(|r| r.len() >= min_chunk.min(len)));
                    }
                }
            }
        }
    }

    #[test]
    fn map_chunks_results_are_ordered_and_thread_count_independent() {
        let _guard = override_lock();
        let data: Vec<u64> = (0..997).map(|i| i * 3 + 1).collect();
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            set_threads(Some(threads));
            let partials = map_chunks(data.len(), 10, |r| data[r].iter().sum::<u64>());
            runs.push(partials.iter().sum::<u64>());
            // Chunk order must match index order.
            let firsts = map_chunks(data.len(), 10, |r| r.start);
            assert!(firsts.windows(2).all(|w| w[0] < w[1]));
        }
        set_threads(None);
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
        assert_eq!(runs[0], data.iter().sum::<u64>());
    }

    #[test]
    fn one_thread_runs_inline() {
        let _guard = override_lock();
        set_threads(Some(1));
        let caller = std::thread::current().id();
        let ids = map_chunks(100, 1, |_| std::thread::current().id());
        set_threads(None);
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn override_is_clamped_and_clearable() {
        let _guard = override_lock();
        set_threads(Some(0));
        assert_eq!(thread_count(), 1);
        set_threads(Some(1_000_000));
        assert_eq!(thread_count(), 256);
        set_threads(None);
        assert!(thread_count() >= 1);
    }

    #[test]
    fn sum_counts_merges_elementwise() {
        assert_eq!(sum_counts(Vec::new()), Vec::<u64>::new());
        assert_eq!(
            sum_counts(vec![vec![1, 2, 3], vec![10, 0, 5], vec![0, 1, 0]]),
            vec![11, 3, 8]
        );
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        assert_eq!(map_chunks(0, 16, |r| r.len()), Vec::<usize>::new());
    }
}
