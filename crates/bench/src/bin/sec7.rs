//! Reproduces Section 7's preliminary table: the DHP algorithm with and
//! without an OSSM (built by Random-RC with 40 segments), reporting
//! runtime and the number of candidate 2-itemsets.
//!
//! Usage: `cargo run -p ossm-bench --release --bin sec7 -- [--pages=200]
//! [--items=1000] [--minsup=0.01] [--nuser=40] [--buckets=32768]
//! [--trace[=chrome|folded] [PATH]]`

use ossm_bench::experiments::sec7;
use ossm_bench::traceio;

fn main() {
    traceio::main_with_trace(|opts| {
        print!("{}", sec7(opts));
        0
    });
}
