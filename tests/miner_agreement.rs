//! Cross-miner agreement: Apriori (both counting back-ends), DHP,
//! Partition, DepthProject, and FP-growth must return identical frequent
//! patterns on any input — and plugging in an OSSM filter must never
//! change any of their answers.
//!
//! FP-growth shares no candidate-generation code with the others, which
//! makes this the strongest correctness oracle in the repository.

use proptest::prelude::*;

use ossm_core::{minimize_segments, OssmBuilder, Strategy as SegStrategy};
use ossm_data::{Dataset, Itemset, PageStore};
use ossm_mining::{
    Apriori, CountingBackend, DepthProject, Dhp, FpGrowth, OssmFilter, Partition,
};

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=10).prop_flat_map(|m| {
        let tx = proptest::collection::vec(1u32..(1u32 << m), 1..60);
        tx.prop_map(move |masks| {
            let transactions = masks
                .into_iter()
                .map(|mask| Itemset::new((0..m as u32).filter(|&i| mask & (1 << i) != 0)))
                .collect();
            Dataset::new(m, transactions)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_miners_agree((d, min_support) in dataset_strategy()
        .prop_flat_map(|d| {
            let n = d.len() as u64;
            (Just(d), 1..=n.max(1))
        }))
    {
        let reference = Apriori::new().mine(&d, min_support).patterns;
        let hash = Apriori::new()
            .with_backend(CountingBackend::HashTree)
            .mine(&d, min_support)
            .patterns;
        prop_assert_eq!(&reference, &hash, "hash-tree backend diverged");
        let dhp = Dhp::new(64).mine(&d, min_support).patterns;
        prop_assert_eq!(&reference, &dhp, "DHP diverged");
        let partition = Partition::new(3).mine(&d, min_support).patterns;
        prop_assert_eq!(&reference, &partition, "Partition diverged");
        let depth = DepthProject::new().mine(&d, min_support).patterns;
        prop_assert_eq!(&reference, &depth, "DepthProject diverged");
        let fp = FpGrowth::new().mine(&d, min_support).patterns;
        prop_assert_eq!(&reference, &fp, "FP-growth diverged");
        let eclat = ossm_mining::Eclat::new().mine(&d, min_support).patterns;
        prop_assert_eq!(&reference, &eclat, "Eclat diverged");
        // The condensed miners must agree with post-hoc condensation.
        let charm = ossm_mining::Charm::new().mine(&d, min_support).patterns;
        prop_assert_eq!(&charm, &ossm_mining::patterns::closed(&reference), "CHARM diverged");
        // Downward closure must hold for whatever was produced.
        prop_assert!(reference.closure_violation().is_none());
    }

    #[test]
    fn ossm_filter_never_changes_any_miner(d in dataset_strategy()) {
        let min_support = (d.len() as u64 / 5).max(2);
        // Two OSSMs: the exact minimized one and a deliberately coarse one.
        let exact = minimize_segments(&d).ossm;
        let store = PageStore::with_page_count(d.clone(), 4);
        let coarse = OssmBuilder::new(2).strategy(SegStrategy::Random).build(&store).0;

        let plain = Apriori::new().mine(&d, min_support);
        for ossm in [&exact, &coarse] {
            let filter = OssmFilter::new(ossm);
            let a = Apriori::new().mine_filtered(&d, min_support, &filter);
            prop_assert_eq!(&plain.patterns, &a.patterns, "Apriori+OSSM diverged");
            prop_assert!(a.metrics.total_counted() <= plain.metrics.total_counted());
            let h = Dhp::new(64).mine_filtered(&d, min_support, &filter);
            prop_assert_eq!(&plain.patterns, &h.patterns, "DHP+OSSM diverged");
            let dp = DepthProject::new().mine_filtered(&d, min_support, &filter);
            prop_assert_eq!(&plain.patterns, &dp.patterns, "DepthProject+OSSM diverged");
        }
        let pm = Partition::new(3).mine_with_ossms(&d, min_support, 2);
        prop_assert_eq!(&plain.patterns, &pm.patterns, "Partition+OSSMs diverged");
    }

    #[test]
    fn reported_supports_are_true_supports(d in dataset_strategy()) {
        let min_support = (d.len() as u64 / 4).max(1);
        let out = FpGrowth::new().mine(&d, min_support);
        for (pattern, support) in out.patterns.iter() {
            prop_assert_eq!(support, d.support(pattern), "wrong support for {}", pattern);
            prop_assert!(support >= min_support);
        }
    }
}

/// Deterministic check on realistic generated data (bigger than the
/// proptest inputs, one fixed seed per generator).
#[test]
fn agreement_on_all_three_paper_workloads() {
    use ossm_data::gen::{AlarmConfig, QuestConfig, SkewedConfig};
    let workloads: Vec<(Dataset, u64)> = vec![
        (
            QuestConfig { num_transactions: 500, num_items: 40, ..QuestConfig::small() }
                .generate(),
            10,
        ),
        (
            SkewedConfig { num_transactions: 500, num_items: 30, ..SkewedConfig::small() }
                .generate(),
            15,
        ),
        (
            AlarmConfig { num_windows: 400, num_alarm_types: 25, ..AlarmConfig::small() }
                .generate(),
            25,
        ),
    ];
    for (d, min_support) in workloads {
        let reference = Apriori::new().mine(&d, min_support).patterns;
        assert_eq!(reference, Dhp::default().mine(&d, min_support).patterns);
        assert_eq!(reference, Partition::new(4).mine(&d, min_support).patterns);
        assert_eq!(reference, DepthProject::new().mine(&d, min_support).patterns);
        assert_eq!(reference, FpGrowth::new().mine(&d, min_support).patterns);
        assert!(!reference.is_empty(), "workload should produce some patterns");
    }
}
