//! A small, string- and comment-aware Rust lexer.
//!
//! The rules in this crate never need a full grammar: every invariant they
//! check is expressible over a token stream in which comments, string
//! literals, and char literals are opaque single tokens. This keeps the
//! lexer ~200 lines and the rule code honest — an `unwrap` inside a string
//! or a doc comment can never be mistaken for a call.
//!
//! The lexer is loss-tolerant by design (it lexes *valid* Rust precisely
//! and degrades gracefully on anything else), mirroring how
//! `ossm_obs::json` parses only the JSON this workspace emits.

/// Token classes the rules distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `feature`, …).
    Ident,
    /// Numeric literal, lexed loosely (`0x2F`, `1_000`, `1.5e3`).
    Num,
    /// String literal — `text` holds the *contents* (between quotes).
    Str,
    /// Byte-string literal (`b"…"`, `br#"…"#) — contents only.
    ByteStr,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`) — the rules never look inside.
    Lifetime,
    /// `// …` comment, including doc comments; `text` excludes the slashes.
    LineComment,
    /// `/* … */` comment (nesting folded in); contents only.
    BlockComment,
    /// Punctuation; common multi-char operators are fused (`::`, `+=`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see the per-kind notes on [`TokKind`]).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this is punctuation with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// Multi-character operators fused into single punct tokens, longest first.
const FUSED: &[&str] = &[
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "^=", "&&",
    "||", "..", "<<", ">>",
];

/// Lexes `src` into tokens. Never fails: unterminated literals swallow the
/// rest of the file as one token, which is the safe direction for a linter
/// (nothing after them can produce a false positive).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(b) = self.peek(0) {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(line),
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1; // consume the `b`
                    self.string(TokKind::ByteStr, line);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_lit(line);
                }
                b'b' if self.peek(1) == Some(b'r') && matches!(self.peek(2), Some(b'"' | b'#')) => {
                    self.pos += 2;
                    self.raw_string(TokKind::ByteStr, line);
                }
                b'r' if matches!(self.peek(1), Some(b'"'))
                    || (self.peek(1) == Some(b'#')
                        && matches!(self.peek(2), Some(b'"' | b'#'))) =>
                {
                    self.pos += 1;
                    self.raw_string(TokKind::Str, line);
                }
                b'"' => self.string(TokKind::Str, line),
                b'\'' => self.quote(line),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(line),
                b'0'..=b'9' => self.number(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.pos += 2;
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        self.pos += 2;
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.bytes.len();
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                if depth == 0 {
                    end = self.pos;
                    self.bump();
                    self.bump();
                    break;
                }
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let end = end.min(self.bytes.len());
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.push(TokKind::BlockComment, text, line);
    }

    fn string(&mut self, kind: TokKind, line: u32) {
        self.bump(); // opening quote
        let start = self.pos;
        let mut end = self.bytes.len();
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump();
                self.bump();
            } else if b == b'"' {
                end = self.pos;
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        let end = end.min(self.bytes.len());
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.push(kind, text, line);
    }

    fn raw_string(&mut self, kind: TokKind, line: u32) {
        // At a `#…#"` or `"` (the leading r/br is consumed). Count hashes.
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.bump(); // opening quote
        let start = self.pos;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat(b'#').take(hashes))
            .collect();
        let mut end = self.bytes.len();
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos..].starts_with(&closer) {
                end = self.pos;
                for _ in 0..closer.len() {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        let end = end.min(self.bytes.len());
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.push(kind, text, line);
    }

    /// A `'`: either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
    fn quote(&mut self, line: u32) {
        let is_lifetime = match (self.peek(1), self.peek(2)) {
            // 'a' is a char; 'ab (no closing quote right after) is a lifetime.
            (Some(c), after) if (c as char).is_alphanumeric() || c == b'_' => after != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            self.bump();
            let start = self.pos;
            while let Some(b) = self.peek(0) {
                if (b as char).is_alphanumeric() || b == b'_' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line);
        } else {
            self.char_lit(line);
        }
    }

    fn char_lit(&mut self, line: u32) {
        self.bump(); // opening quote
        let start = self.pos;
        let mut end = self.bytes.len();
        while let Some(b) = self.peek(0) {
            if b == b'\\' {
                self.bump();
                self.bump();
            } else if b == b'\'' {
                end = self.pos;
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        let end = end.min(self.bytes.len());
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.push(TokKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if (b as char).is_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if (b as char).is_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else if b == b'.' && matches!(self.peek(1), Some(b'0'..=b'9')) {
                // `1.5` continues the number; `0..n` does not.
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokKind::Num, text, line);
    }

    fn punct(&mut self, line: u32) {
        for op in FUSED {
            if self.bytes[self.pos..].starts_with(op.as_bytes()) {
                self.pos += op.len();
                self.push(TokKind::Punct, (*op).to_owned(), line);
                return;
            }
        }
        let b = self.bytes[self.pos];
        self.pos += 1;
        self.push(TokKind::Punct, (b as char).to_string(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let toks = kinds(r#"let x = "a.unwrap()"; // unwrap here is prose"#);
        assert!(toks.contains(&(TokKind::Str, "a.unwrap()".into())));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::LineComment && t.contains("unwrap here")));
        // No Ident token named unwrap leaked out of the literal or comment.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r###"let m = b"OSSMPAGE"; let r = r#"x "y" z"#;"###);
        assert!(toks.contains(&(TokKind::ByteStr, "OSSMPAGE".into())));
        assert!(toks.contains(&(TokKind::Str, "x \"y\" z".into())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "q".into())));
        assert!(toks.contains(&(TokKind::Char, "\\n".into())));
    }

    #[test]
    fn fused_operators_and_lines() {
        let toks = lex("a += 1;\nb::c() -> d");
        assert!(toks.iter().any(|t| t.is_punct("+=") && t.line == 1));
        assert!(toks.iter().any(|t| t.is_punct("::") && t.line == 2));
        assert!(toks.iter().any(|t| t.is_punct("->") && t.line == 2));
    }

    #[test]
    fn nested_block_comments_fold() {
        let toks = kinds("/* outer /* inner */ tail */ fn f() {}");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert!(toks.contains(&(TokKind::Ident, "fn".into())));
    }

    #[test]
    fn numbers_lex_loosely() {
        let toks = kinds("0x2F 1_000 1.5e3 0..5");
        assert!(toks.contains(&(TokKind::Num, "0x2F".into())));
        assert!(toks.contains(&(TokKind::Num, "1_000".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5e3".into())));
        // The range did not swallow the dots.
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
    }
}
