//! Constrained frequent-set mining.
//!
//! The paper's introduction lists *constrained frequent sets* [11, 14, 19]
//! among the pattern classes the OSSM serves: "the patterns, whose
//! frequencies are needed, are conjunctions of atomic patterns". This
//! module implements the anti-monotone constraint classes of that line of
//! work and pushes them into the Apriori loop next to the OSSM filter —
//! a candidate that violates an anti-monotone constraint is dropped
//! *before counting*, exactly like a candidate whose equation-(1) bound
//! misses the threshold.
//!
//! Anti-monotonicity is what makes the push sound: if an itemset violates
//! the constraint, so does every superset, so pruning a candidate can
//! never lose a valid pattern. Each variant's docs state why it
//! qualifies.

use std::time::Instant;

use ossm_data::{Dataset, ItemId, Itemset};

use crate::apriori::{generate_candidates, MiningOutcome};
use crate::filter::{CandidateFilter, NoFilter};
use crate::metrics::{LevelMetrics, MiningMetrics};
use crate::support::{count_with, CountingBackend, FrequentPatterns};

/// An anti-monotone constraint on itemsets.
#[derive(Clone, Debug)]
pub enum Constraint {
    /// `|X| ≤ k`. Anti-monotone: supersets are never shorter.
    MaxLen(usize),
    /// `X ⊆ allowed`. Anti-monotone: a superset of a violator still
    /// contains the offending item.
    ItemsFrom(Itemset),
    /// `X ∩ forbidden = ∅`. Anti-monotone for the same reason.
    Excludes(Itemset),
    /// `Σ_{a ∈ X} value[a] ≤ bound`, with non-negative per-item values
    /// (e.g. total price ≤ budget). Anti-monotone because adding items
    /// can only grow the sum.
    MaxSum {
        /// Per-item non-negative value, indexed by item id.
        values: Vec<u64>,
        /// Inclusive upper bound on the sum.
        bound: u64,
    },
    /// `min_{a ∈ X} value[a] ≥ bound` (e.g. every item's rating at least
    /// r). Anti-monotone: adding items can only lower the minimum. The
    /// empty itemset vacuously satisfies it.
    MinValueAtLeast {
        /// Per-item value, indexed by item id.
        values: Vec<u64>,
        /// Inclusive lower bound every member must meet.
        bound: u64,
    },
}

impl Constraint {
    /// Whether `itemset` satisfies the constraint.
    ///
    /// # Panics
    /// Panics if a value-based constraint's table is too short for an item.
    pub fn satisfied_by(&self, itemset: &Itemset) -> bool {
        match self {
            Constraint::MaxLen(k) => itemset.len() <= *k,
            Constraint::ItemsFrom(allowed) => itemset.is_subset_of(allowed),
            Constraint::Excludes(forbidden) => {
                itemset.items().iter().all(|i| !forbidden.contains(*i))
            }
            Constraint::MaxSum { values, bound } => {
                let sum: u64 = itemset.items().iter().map(|i| values[i.index()]).sum();
                sum <= *bound
            }
            Constraint::MinValueAtLeast { values, bound } => {
                itemset.items().iter().all(|i| values[i.index()] >= *bound)
            }
        }
    }
}

/// Apriori with anti-monotone constraints pushed into candidate
/// generation, plus the usual [`CandidateFilter`] hook.
#[derive(Clone, Debug, Default)]
pub struct ConstrainedApriori {
    constraints: Vec<Constraint>,
    backend: CountingBackend,
}

impl ConstrainedApriori {
    /// A miner with no constraints (plain Apriori).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a constraint (conjunction with any already added).
    pub fn with_constraint(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Selects the counting back-end.
    pub fn with_backend(mut self, backend: CountingBackend) -> Self {
        self.backend = backend;
        self
    }

    fn admissible(&self, itemset: &Itemset) -> bool {
        self.constraints.iter().all(|c| c.satisfied_by(itemset))
    }

    /// Mines all frequent itemsets satisfying every constraint.
    pub fn mine(&self, dataset: &Dataset, min_support: u64) -> MiningOutcome {
        self.mine_filtered(dataset, min_support, &NoFilter)
    }

    /// Mines with an additional candidate filter (the OSSM).
    ///
    /// # Panics
    /// Panics if `min_support == 0`.
    pub fn mine_filtered(
        &self,
        dataset: &Dataset,
        min_support: u64,
        filter: &dyn CandidateFilter,
    ) -> MiningOutcome {
        assert!(min_support > 0, "support threshold must be at least 1");
        let start = Instant::now();
        let mut patterns = FrequentPatterns::new();
        let mut metrics = MiningMetrics::default();
        let m = dataset.num_items();

        // Level 1: constraint, then filter, then one counting pass.
        let mut level = LevelMetrics {
            level: 1,
            generated: m as u64,
            ..Default::default()
        };
        let singles = dataset.singleton_supports();
        let mut frequent: Vec<Itemset> = Vec::new();
        for i in 0..m as u32 {
            let s = Itemset::singleton(ItemId(i));
            if !self.admissible(&s) || !filter.may_be_frequent(&s, min_support) {
                level.filtered_out += 1;
                continue;
            }
            level.counted += 1;
            if singles[i as usize] >= min_support {
                patterns.insert(s.clone(), singles[i as usize]);
                frequent.push(s);
            }
        }
        level.frequent = frequent.len() as u64;
        metrics.push_level(level);

        let mut k = 2;
        while !frequent.is_empty() {
            let generated = generate_candidates(&frequent);
            if generated.is_empty() {
                break;
            }
            let mut level = LevelMetrics {
                level: k,
                generated: generated.len() as u64,
                ..Default::default()
            };
            let candidates: Vec<Itemset> = generated
                .into_iter()
                .filter(|c| self.admissible(c) && filter.may_be_frequent(c, min_support))
                .collect();
            level.filtered_out = level.generated - candidates.len() as u64;
            level.counted = candidates.len() as u64;
            if candidates.is_empty() {
                metrics.push_level(level);
                break;
            }
            let counts = count_with(self.backend, dataset.transactions(), &candidates);
            let mut next = Vec::new();
            for (c, sup) in candidates.into_iter().zip(counts) {
                if sup >= min_support {
                    patterns.insert(c.clone(), sup);
                    next.push(c);
                }
            }
            level.frequent = next.len() as u64;
            metrics.push_level(level);
            frequent = next;
            k += 1;
        }

        metrics.elapsed = start.elapsed();
        MiningOutcome { patterns, metrics }
    }
}

/// Post-hoc reference semantics: filter an unconstrained result by the
/// constraints. `ConstrainedApriori` must always equal this (tested), it
/// just gets there with less counting.
pub fn filter_patterns(
    patterns: &FrequentPatterns,
    constraints: &[Constraint],
) -> FrequentPatterns {
    patterns
        .iter()
        .filter(|(p, _)| constraints.iter().all(|c| c.satisfied_by(p)))
        .map(|(p, s)| (p.clone(), s))
        .collect()
}

/// Convenience: builds an [`Constraint::Excludes`] from raw ids.
pub fn excludes(ids: impl IntoIterator<Item = u32>) -> Constraint {
    Constraint::Excludes(Itemset::new(ids))
}

/// Convenience: builds an [`Constraint::ItemsFrom`] from raw ids.
pub fn items_from(ids: impl IntoIterator<Item = u32>) -> Constraint {
    Constraint::ItemsFrom(Itemset::new(ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::filter::OssmFilter;
    use ossm_core::minimize_segments;
    use ossm_data::gen::QuestConfig;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    fn workload() -> Dataset {
        QuestConfig {
            num_transactions: 400,
            num_items: 25,
            ..QuestConfig::small()
        }
        .generate()
    }

    #[test]
    fn constraint_satisfaction_basics() {
        let s = set(&[1, 3, 5]);
        assert!(Constraint::MaxLen(3).satisfied_by(&s));
        assert!(!Constraint::MaxLen(2).satisfied_by(&s));
        assert!(items_from([1, 3, 5, 7]).satisfied_by(&s));
        assert!(!items_from([1, 3]).satisfied_by(&s));
        assert!(excludes([0, 2]).satisfied_by(&s));
        assert!(!excludes([3]).satisfied_by(&s));
        let values = vec![0, 10, 0, 20, 0, 30];
        assert!(Constraint::MaxSum {
            values: values.clone(),
            bound: 60
        }
        .satisfied_by(&s));
        assert!(!Constraint::MaxSum {
            values: values.clone(),
            bound: 59
        }
        .satisfied_by(&s));
        assert!(Constraint::MinValueAtLeast {
            values: values.clone(),
            bound: 10
        }
        .satisfied_by(&s));
        assert!(!Constraint::MinValueAtLeast { values, bound: 11 }.satisfied_by(&s));
    }

    #[test]
    fn matches_post_hoc_filtering_for_every_constraint_kind() {
        let d = workload();
        let min_support = 8;
        let unconstrained = Apriori::new().mine(&d, min_support).patterns;
        let constraints: Vec<Constraint> = vec![
            Constraint::MaxLen(2),
            items_from((0..15u32).collect::<Vec<_>>()),
            excludes([3, 7, 11]),
            Constraint::MaxSum {
                values: (0..25u64).collect(),
                bound: 30,
            },
            Constraint::MinValueAtLeast {
                values: (0..25u64).rev().collect(),
                bound: 5,
            },
        ];
        for c in &constraints {
            let mined = ConstrainedApriori::new()
                .with_constraint(c.clone())
                .mine(&d, min_support)
                .patterns;
            let reference = filter_patterns(&unconstrained, std::slice::from_ref(c));
            assert_eq!(mined, reference, "constraint {c:?}");
        }
        // Conjunction of all.
        let mut miner = ConstrainedApriori::new();
        for c in &constraints {
            miner = miner.with_constraint(c.clone());
        }
        assert_eq!(
            miner.mine(&d, min_support).patterns,
            filter_patterns(&unconstrained, &constraints)
        );
    }

    #[test]
    fn constraints_reduce_counting_work() {
        let d = workload();
        let plain = Apriori::new().mine(&d, 8);
        let constrained = ConstrainedApriori::new()
            .with_constraint(items_from((0..10u32).collect::<Vec<_>>()))
            .mine(&d, 8);
        assert!(constrained.metrics.total_counted() < plain.metrics.total_counted());
    }

    #[test]
    fn composes_with_the_ossm_filter() {
        let d = workload();
        let min = minimize_segments(&d);
        let c = excludes([0, 1]);
        let plain = ConstrainedApriori::new()
            .with_constraint(c.clone())
            .mine(&d, 8);
        let both = ConstrainedApriori::new().with_constraint(c).mine_filtered(
            &d,
            8,
            &OssmFilter::new(&min.ossm),
        );
        assert_eq!(plain.patterns, both.patterns);
        assert!(both.metrics.total_counted() <= plain.metrics.total_counted());
    }

    #[test]
    fn no_constraints_degenerates_to_apriori() {
        let d = workload();
        assert_eq!(
            ConstrainedApriori::new().mine(&d, 10).patterns,
            Apriori::new().mine(&d, 10).patterns
        );
    }
}
