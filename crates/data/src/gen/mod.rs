//! Synthetic workload generators for the paper's three data sets.
//!
//! | Paper data set | Generator | Notes |
//! |---|---|---|
//! | regular-synthetic | [`quest::QuestConfig`] | reimplementation of the IBM Quest process [3] |
//! | skewed-synthetic | [`skewed::SkewedConfig`] | seasonal item popularity (Section 6.1) |
//! | Nokia alarms | [`alarm::AlarmConfig`] | synthetic substitute for the proprietary data |
//!
//! All generators are fully deterministic given their seed.

pub mod alarm;
pub mod dist;
pub mod quest;
pub mod skewed;

pub use alarm::AlarmConfig;
pub use quest::QuestConfig;
pub use skewed::SkewedConfig;
