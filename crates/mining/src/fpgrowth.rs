//! FP-growth (Han, Pei, Yin [8]) — the candidate-generation-free baseline.
//!
//! The paper's related-work section contrasts the OSSM framework (which
//! optimizes candidate-based miners) with FP-growth (which avoids
//! candidates altogether by mining a prefix tree). We implement it for two
//! reasons: it completes the paper's comparison surface, and — because it
//! shares no code path with the candidate-based miners — it is the
//! strongest cross-validation oracle for the agreement tests.
//!
//! Standard construction: items of each transaction are reordered by
//! descending global frequency and inserted into a prefix tree with
//! per-item header chains; mining recurses over conditional pattern bases.

use std::time::Instant;

use ossm_data::{Dataset, ItemId, Itemset};

use crate::apriori::MiningOutcome;
use crate::metrics::MiningMetrics;
use crate::support::FrequentPatterns;

/// FP-trees constructed (the global tree plus every conditional tree).
static TREES_BUILT: ossm_obs::Counter = ossm_obs::Counter::new("mining.fpgrowth.trees_built");
/// Prefix-tree nodes allocated across all trees.
static NODES_CREATED: ossm_obs::Counter = ossm_obs::Counter::new("mining.fpgrowth.nodes_created");

/// FP-growth miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct FpGrowth;

/// One FP-tree node.
struct Node {
    item: u32,
    count: u64,
    parent: usize,
    children: Vec<usize>,
}

/// An FP-tree: node arena + per-item header chains.
struct Tree {
    nodes: Vec<Node>,
    /// `header[rank]` = indices of all nodes carrying the item of `rank`.
    header: Vec<Vec<usize>>,
}

const ROOT: usize = 0;

impl Tree {
    fn new(num_ranked: usize) -> Self {
        TREES_BUILT.incr();
        Tree {
            nodes: vec![Node {
                item: u32::MAX,
                count: 0,
                parent: usize::MAX,
                children: vec![],
            }],
            header: vec![Vec::new(); num_ranked],
        }
    }

    /// Inserts a rank-ordered item path with multiplicity `count`.
    fn insert(&mut self, ranked_items: &[u32], count: u64) {
        let mut cur = ROOT;
        for &rank in ranked_items {
            let found = self.nodes[cur]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == rank);
            cur = match found {
                Some(c) => {
                    self.nodes[c].count += count;
                    c
                }
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(Node {
                        item: rank,
                        count,
                        parent: cur,
                        children: vec![],
                    });
                    self.nodes[cur].children.push(id);
                    self.header[rank as usize].push(id);
                    NODES_CREATED.incr();
                    id
                }
            };
        }
    }

    /// The prefix path of `node` (excluding the node and the root), as
    /// ranks from deepest to shallowest.
    fn prefix_path(&self, mut node: usize) -> Vec<u32> {
        let mut path = Vec::new();
        node = self.nodes[node].parent;
        while node != ROOT {
            path.push(self.nodes[node].item);
            node = self.nodes[node].parent;
        }
        path
    }
}

impl FpGrowth {
    /// Creates the miner.
    pub fn new() -> Self {
        FpGrowth
    }

    /// Mines all frequent itemsets at absolute threshold `min_support`.
    ///
    /// # Panics
    /// Panics if `min_support == 0`.
    pub fn mine(&self, dataset: &Dataset, min_support: u64) -> MiningOutcome {
        const NONE: u32 = u32::MAX;
        assert!(min_support > 0, "support threshold must be at least 1");
        let _mine_span = ossm_obs::span("mining.fpgrowth");
        let start = Instant::now();
        let mut patterns = FrequentPatterns::new();

        // Rank frequent items by descending support (ties: ascending id).
        let singles = dataset.singleton_supports();
        let mut frequent_items: Vec<u32> = (0..dataset.num_items() as u32)
            .filter(|&i| singles[i as usize] >= min_support)
            .collect();
        frequent_items.sort_by_key(|&i| (std::cmp::Reverse(singles[i as usize]), i));
        // rank_of[item] = dense rank, or NONE.
        let mut rank_of = vec![NONE; dataset.num_items()];
        for (rank, &item) in frequent_items.iter().enumerate() {
            rank_of[item as usize] = rank as u32;
        }

        for &item in &frequent_items {
            patterns.insert(Itemset::singleton(ItemId(item)), singles[item as usize]);
        }

        // Build the global tree over rank-encoded transactions.
        let tree = {
            let mut s = ossm_obs::span("mining.fpgrowth.build_tree");
            s.watch(&NODES_CREATED);
            let mut tree = Tree::new(frequent_items.len());
            let mut ranked: Vec<u32> = Vec::new();
            for t in dataset.transactions() {
                ranked.clear();
                ranked.extend(t.items().iter().filter_map(|i| {
                    let r = rank_of[i.index()];
                    (r != NONE).then_some(r)
                }));
                ranked.sort_unstable();
                tree.insert(&ranked, 1);
            }
            tree
        };

        // Recursive mining; `suffix` holds original item ids.
        {
            let mut s = ossm_obs::span("mining.fpgrowth.grow");
            s.watch(&TREES_BUILT);
            s.watch(&NODES_CREATED);
            let mut suffix: Vec<u32> = Vec::new();
            mine_tree(
                &tree,
                &frequent_items,
                min_support,
                &mut suffix,
                &mut patterns,
            );
        }

        let metrics = MiningMetrics {
            levels: Vec::new(),
            elapsed: start.elapsed(),
        };
        MiningOutcome { patterns, metrics }
    }
}

/// Mines one (conditional) tree. `item_of_rank` maps this tree's dense
/// ranks back to original item ids.
fn mine_tree(
    tree: &Tree,
    item_of_rank: &[u32],
    min_support: u64,
    suffix: &mut Vec<u32>,
    patterns: &mut FrequentPatterns,
) {
    // Process header items bottom-up (least frequent first).
    for rank in (0..item_of_rank.len()).rev() {
        let nodes = &tree.header[rank];
        if nodes.is_empty() {
            continue;
        }
        let support: u64 = nodes.iter().map(|&n| tree.nodes[n].count).sum();
        if support < min_support {
            continue;
        }
        let item = item_of_rank[rank];
        suffix.push(item);
        // Singletons of the *global* tree were recorded up front; every
        // longer suffix is a newly discovered pattern.
        if suffix.len() >= 2 {
            patterns.insert(Itemset::new(suffix.iter().copied()), support);
        }

        // Conditional pattern base: prefix paths of every header node.
        let mut conditional_counts = vec![0u64; rank]; // only ranks above can appear
        let mut paths: Vec<(Vec<u32>, u64)> = Vec::with_capacity(nodes.len());
        for &n in nodes {
            let path = tree.prefix_path(n);
            let count = tree.nodes[n].count;
            for &r in &path {
                conditional_counts[r as usize] += count;
            }
            if !path.is_empty() {
                paths.push((path, count));
            }
        }
        // Re-rank the conditional tree's frequent items.
        let mut cond_items: Vec<u32> = (0..rank as u32)
            .filter(|&r| conditional_counts[r as usize] >= min_support)
            .collect();
        cond_items.sort_by_key(|&r| {
            (
                std::cmp::Reverse(conditional_counts[r as usize]),
                item_of_rank[r as usize],
            )
        });
        if !cond_items.is_empty() {
            let mut new_rank = vec![u32::MAX; rank];
            for (nr, &r) in cond_items.iter().enumerate() {
                new_rank[r as usize] = nr as u32;
            }
            let cond_item_of_rank: Vec<u32> = cond_items
                .iter()
                .map(|&r| item_of_rank[r as usize])
                .collect();
            let mut cond_tree = Tree::new(cond_items.len());
            let mut ranked: Vec<u32> = Vec::new();
            for (path, count) in &paths {
                ranked.clear();
                ranked.extend(path.iter().filter_map(|&r| {
                    let nr = new_rank[r as usize];
                    (nr != u32::MAX).then_some(nr)
                }));
                ranked.sort_unstable();
                if !ranked.is_empty() {
                    cond_tree.insert(&ranked, *count);
                }
            }
            mine_tree(
                &cond_tree,
                &cond_item_of_rank,
                min_support,
                suffix,
                patterns,
            );
        }
        suffix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use ossm_data::gen::{AlarmConfig, QuestConfig, SkewedConfig};

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn mines_the_textbook_example() {
        let d = Dataset::new(
            5,
            vec![
                set(&[0, 1, 4]),
                set(&[1, 3]),
                set(&[1, 2]),
                set(&[0, 1, 3]),
                set(&[0, 2]),
                set(&[1, 2]),
                set(&[0, 2]),
                set(&[0, 1, 2, 4]),
                set(&[0, 1, 2]),
            ],
        );
        let out = FpGrowth::new().mine(&d, 2);
        assert_eq!(out.patterns.len(), 13);
        assert_eq!(out.patterns.support_of(&set(&[0, 1, 2])), Some(2));
        assert_eq!(out.patterns.support_of(&set(&[0, 1, 4])), Some(2));
        assert!(out.patterns.closure_violation().is_none());
    }

    #[test]
    fn agrees_with_apriori_on_quest_data() {
        let d = QuestConfig {
            num_transactions: 300,
            num_items: 30,
            ..QuestConfig::small()
        }
        .generate();
        for min_support in [5, 10, 25] {
            let a = Apriori::new().mine(&d, min_support);
            let f = FpGrowth::new().mine(&d, min_support);
            assert_eq!(a.patterns, f.patterns, "min_support {min_support}");
        }
    }

    #[test]
    fn agrees_with_apriori_on_skewed_and_alarm_data() {
        let d1 = SkewedConfig {
            num_transactions: 300,
            num_items: 20,
            ..SkewedConfig::small()
        }
        .generate();
        assert_eq!(
            Apriori::new().mine(&d1, 10).patterns,
            FpGrowth::new().mine(&d1, 10).patterns
        );
        let d2 = AlarmConfig {
            num_windows: 250,
            num_alarm_types: 18,
            ..AlarmConfig::small()
        }
        .generate();
        assert_eq!(
            Apriori::new().mine(&d2, 15).patterns,
            FpGrowth::new().mine(&d2, 15).patterns
        );
    }

    #[test]
    fn empty_when_nothing_is_frequent() {
        let d = Dataset::new(3, vec![set(&[0]), set(&[1]), set(&[2])]);
        assert!(FpGrowth::new().mine(&d, 2).patterns.is_empty());
    }

    #[test]
    fn handles_identical_transactions_via_path_compression() {
        let d = Dataset::new(3, vec![set(&[0, 1, 2]); 5]);
        let out = FpGrowth::new().mine(&d, 3);
        assert_eq!(
            out.patterns.len(),
            7,
            "all 2³−1 subsets frequent with support 5"
        );
        assert!(out.patterns.iter().all(|(_, s)| s == 5));
    }
}
