//! Disk-resident mining: the OSSM as an I/O saver.
//!
//! The paper's runtimes "include all CPU and I/O costs" — transactions
//! live in 4 KB pages on disk, and a level-wise miner pays one full pass
//! per level. This example packs a workload into a page file, builds the
//! OSSM *from the file's aggregate index alone* (zero data-page reads),
//! and shows the physical-I/O difference between streaming Apriori with
//! and without the map: the level-1 pass disappears (the OSSM's singleton
//! supports are exact), and fully-pruned levels never touch the disk.
//!
//! Run with: `cargo run -p ossm --release --example disk_mining`

use ossm::prelude::*;
use ossm_core::seg::{Greedy, SegmentationAlgorithm};

fn main() -> std::io::Result<()> {
    // 1. Generate and pack a workload into a paged file.
    let dataset = QuestConfig {
        num_transactions: 50_000,
        num_items: 500,
        ..QuestConfig::default()
    }
    .generate();
    let min_support = dataset.absolute_threshold(0.01);
    let dir = std::env::temp_dir().join("ossm-disk-example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("workload.pages");
    ossm_data::disk::write_paged(&path, &dataset, 4096)?;
    drop(dataset); // from here on, the file is the database

    // 2. Open the store and segment using only the aggregate index.
    let mut store = DiskStore::open(&path, 64)?;
    println!(
        "page file: {} pages, {} transactions, {} items",
        store.num_pages(),
        store.num_transactions(),
        store.num_items()
    );
    let aggregates: Vec<Aggregate> = store
        .page_aggregate_vectors()
        .into_iter()
        .map(|(supports, n)| Aggregate::new(supports, n))
        .collect();
    let segmentation = Greedy::default().segment(&aggregates, 40);
    let ossm = Ossm::from_aggregates(segmentation.merge_aggregates(&aggregates));
    println!(
        "OSSM built from the index: {} segments, {} data-page reads so far",
        ossm.num_segments(),
        store.io_stats().page_reads
    );

    // 3. Mine with and without the OSSM; compare passes and page reads.
    let without = StreamingApriori::new().mine(&mut store, min_support, None)?;
    let mut store2 = DiskStore::open(&path, 64)?;
    let with = StreamingApriori::new().mine(&mut store2, min_support, Some(&ossm))?;
    assert_eq!(
        without.patterns, with.patterns,
        "the OSSM never changes the answer"
    );

    println!(
        "\n{:<22} {:>8} {:>12} {:>10}",
        "", "passes", "page reads", "patterns"
    );
    println!(
        "{:<22} {:>8} {:>12} {:>10}",
        "streaming Apriori",
        without.passes,
        without.page_reads,
        without.patterns.len()
    );
    println!(
        "{:<22} {:>8} {:>12} {:>10}",
        "  + OSSM",
        with.passes,
        with.page_reads,
        with.patterns.len()
    );
    println!(
        "\nI/O saved: {:.1}% ({} fewer physical page reads)",
        100.0 * (1.0 - with.page_reads as f64 / without.page_reads.max(1) as f64),
        without.page_reads - with.page_reads
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
