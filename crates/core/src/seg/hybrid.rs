//! Hybrid segmentation strategies (Section 5.4 of the paper).
//!
//! For very large page counts `p`, the p² factor of RC and Greedy is
//! prohibitive. The hybrids run a cheap first phase (the paper always uses
//! Random) to crush `p` down to an intermediate `n_mid` (the paper suggests
//! 100–500), then run the elaborate algorithm from `n_mid` to `n_user`.
//! The paper's Figure 5(b): Random-RC segments 50 000 pages in 521 s where
//! pure RC needed 2791 s for only 500 pages — "yet there is a minimal drop
//! in speedup".

use crate::loss::LossCalculator;
use crate::segmentation::{Aggregate, Segmentation};

use super::{trivial, validate, Greedy, Random, RandomClosest, SegmentationAlgorithm};

/// A two-phase strategy: `first` down to `n_mid` inputs, then `second`
/// down to `n_user`, composed into a single segmentation.
#[derive(Clone, Debug)]
pub struct Hybrid<A, B> {
    first: A,
    second: B,
    n_mid: usize,
}

impl<A: SegmentationAlgorithm, B: SegmentationAlgorithm> Hybrid<A, B> {
    /// Combines two algorithms around the intermediate segment count
    /// `n_mid`.
    ///
    /// # Panics
    /// Panics if `n_mid == 0`.
    pub fn new(first: A, second: B, n_mid: usize) -> Self {
        assert!(n_mid > 0, "intermediate segment count must be positive");
        Hybrid {
            first,
            second,
            n_mid,
        }
    }

    /// The intermediate segment count.
    pub fn n_mid(&self) -> usize {
        self.n_mid
    }
}

/// The paper's Random-RC strategy.
pub fn random_rc(calc: LossCalculator, n_mid: usize, seed: u64) -> Hybrid<Random, RandomClosest> {
    Hybrid::new(
        Random::new(seed),
        RandomClosest::new(calc, seed.wrapping_add(1)),
        n_mid,
    )
}

/// The paper's Random-Greedy strategy.
pub fn random_greedy(calc: LossCalculator, n_mid: usize, seed: u64) -> Hybrid<Random, Greedy> {
    Hybrid::new(Random::new(seed), Greedy::new(calc), n_mid)
}

impl<A: SegmentationAlgorithm, B: SegmentationAlgorithm> SegmentationAlgorithm for Hybrid<A, B> {
    fn name(&self) -> String {
        format!("{}-{}", self.first.name(), self.second.name())
    }

    fn segment(&self, inputs: &[Aggregate], n_user: usize) -> Segmentation {
        validate(inputs, n_user);
        if let Some(t) = trivial(inputs, n_user) {
            return t;
        }
        // Clamp n_mid into [n_user, p]: below n_user the first phase would
        // overshoot the target; above p it is a no-op.
        let n_mid = self.n_mid.clamp(n_user, inputs.len());
        let phase1 = {
            let _span = ossm_obs::phase(format!("core.seg.hybrid.phase1.{}", self.first.name()));
            self.first.segment(inputs, n_mid)
        };
        let mids = phase1.merge_aggregates(inputs);
        let phase2 = {
            let _span = ossm_obs::phase(format!("core.seg.hybrid.phase2.{}", self.second.name()));
            self.second.segment(&mids, n_user)
        };
        phase1.compose(&phase2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::testutil;

    #[test]
    fn satisfies_the_algorithm_contract() {
        testutil::check_contract(&random_rc(LossCalculator::all_items(), 3, 0));
        testutil::check_contract(&random_greedy(LossCalculator::all_items(), 3, 0));
    }

    #[test]
    fn names_compose() {
        assert_eq!(
            random_rc(LossCalculator::all_items(), 10, 0).name(),
            "Random-RC"
        );
        assert_eq!(
            random_greedy(LossCalculator::all_items(), 10, 0).name(),
            "Random-Greedy"
        );
    }

    #[test]
    fn n_mid_clamps_to_target_range() {
        let inputs = testutil::two_config_inputs();
        // n_mid below n_user: phase 1 must stop at n_user, not overshoot.
        let h = random_rc(LossCalculator::all_items(), 1, 0);
        let seg = h.segment(&inputs, 3);
        assert_eq!(seg.num_segments(), 3);
        // n_mid above p: phase 1 is the identity.
        let h = random_greedy(LossCalculator::all_items(), 100, 0);
        assert_eq!(h.segment(&inputs, 2).num_segments(), 2);
    }

    #[test]
    fn with_n_mid_equal_p_matches_pure_second_phase() {
        let inputs = testutil::two_config_inputs();
        let hybrid = random_greedy(LossCalculator::all_items(), inputs.len(), 0);
        let pure = Greedy::default();
        // Phase 1 at n_mid = p is the identity (groups in shuffled order,
        // but each a singleton), so the merged aggregates equal the inputs
        // up to permutation and the final loss matches pure Greedy.
        let calc = LossCalculator::all_items();
        let hl = calc.segmentation_loss(&inputs, &hybrid.segment(&inputs, 2));
        let pl = calc.segmentation_loss(&inputs, &pure.segment(&inputs, 2));
        assert_eq!(hl, pl);
    }

    #[test]
    fn hybrid_output_partitions_all_inputs() {
        let inputs: Vec<Aggregate> = (0..30)
            .map(|i| Aggregate::new(vec![i as u64, 30 - i as u64, (i * i % 7) as u64], 1))
            .collect();
        let h = random_rc(LossCalculator::all_items(), 10, 5);
        let seg = h.segment(&inputs, 4);
        assert_eq!(seg.num_segments(), 4);
        assert_eq!(seg.num_inputs(), 30);
        let mut all: Vec<usize> = seg.groups().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }
}
