//! Runs the design-decision ablation studies of DESIGN.md §6:
//! loss-evaluation timing (A1), heuristic quality vs the exhaustive
//! optimum (A3), the Lemma 1 pre-pass (A4), and incremental maintenance
//! vs full rebuild (A5).
//!
//! Usage: `cargo run -p ossm-bench --release --bin ablation --
//! [--items=…] [--trials=…] [--pages=…] [--nuser=…]
//! [--trace[=chrome|folded] [PATH]]`

use ossm_bench::{ablation, traceio};

fn main() {
    traceio::main_with_trace(|opts| {
        print!("{}", ablation::all(opts));
        0
    });
}
