//! Standard experiment workloads, paper-shaped but scalable.
//!
//! The paper's regular-synthetic experiments fix `m = 1000` items and vary
//! the page count `p` from 200 to 50 000 (one 4 KB page ≈ 100
//! transactions). Experiments here take `p` and derive the transaction
//! count as `p × 100`, so `--pages` scales a run exactly the way the
//! paper's key parameter does. Defaults are chosen so the full suite runs
//! in minutes on a laptop; pass larger `--pages` to approach paper scale.

use ossm_data::gen::{AlarmConfig, QuestConfig, SkewedConfig};
use ossm_data::{Dataset, PageStore};

/// Transactions per page, matching the paper's "roughly 100 transactions"
/// per 4 KB page.
pub const TX_PER_PAGE: usize = 100;

/// Which of the paper's three data sets to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// IBM-Quest-style regular-synthetic data (Section 6.1, data set 2).
    Regular,
    /// Seasonal skewed-synthetic data (Section 6.1, data set 3).
    Skewed,
    /// Alarm-window data standing in for the Nokia set (Section 6.1,
    /// data set 1).
    Alarm,
    /// Dense Quest-style data: long transactions over the same domain
    /// (high bit density), the regime where the bitmap counting back-end
    /// pays. Not one of the paper's three sets; added for baseline
    /// coverage of the AND-popcount kernel.
    Dense,
}

impl std::str::FromStr for WorkloadKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "regular" => Ok(WorkloadKind::Regular),
            "skewed" => Ok(WorkloadKind::Skewed),
            "alarm" | "nokia" => Ok(WorkloadKind::Alarm),
            "dense" => Ok(WorkloadKind::Dense),
            other => Err(format!(
                "unknown workload {other:?} (regular|skewed|alarm|dense)"
            )),
        }
    }
}

/// A fully specified experiment workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Which generator to run.
    pub kind: WorkloadKind,
    /// Number of pages `p` (transactions = `p × TX_PER_PAGE`).
    pub pages: usize,
    /// Item domain size `m`.
    pub items: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Workload {
    /// A workload of the given kind, with the kind's default seed.
    pub fn new(kind: WorkloadKind, pages: usize, items: usize) -> Self {
        match kind {
            WorkloadKind::Regular => Self::regular(pages, items),
            WorkloadKind::Skewed => Self::skewed(pages, items),
            WorkloadKind::Alarm => Self::alarm(pages, items),
            WorkloadKind::Dense => Self::dense(pages, items),
        }
    }

    /// The paper-shaped regular-synthetic workload at a given page count.
    pub fn regular(pages: usize, items: usize) -> Self {
        Workload {
            kind: WorkloadKind::Regular,
            pages,
            items,
            seed: 0x0551_2002,
        }
    }

    /// The skewed-synthetic workload.
    pub fn skewed(pages: usize, items: usize) -> Self {
        Workload {
            kind: WorkloadKind::Skewed,
            pages,
            items,
            seed: 0x5EA5,
        }
    }

    /// The alarm (Nokia-substitute) workload. The paper's set is ~5000
    /// transactions over ~200 alarm types; `pages = 50`, `items = 200`
    /// matches it.
    pub fn alarm(pages: usize, items: usize) -> Self {
        Workload {
            kind: WorkloadKind::Alarm,
            pages,
            items,
            seed: 0xA1A2_2002,
        }
    }

    /// The dense workload: Quest baskets at 2.5× the regular transaction
    /// length, so each item's transaction bitmap is well populated.
    pub fn dense(pages: usize, items: usize) -> Self {
        Workload {
            kind: WorkloadKind::Dense,
            pages,
            items,
            seed: 0xDE45_E001,
        }
    }

    /// Number of transactions this workload generates.
    pub fn num_transactions(&self) -> usize {
        self.pages * TX_PER_PAGE
    }

    /// Generates the dataset.
    pub fn dataset(&self) -> Dataset {
        let n = self.num_transactions();
        match self.kind {
            WorkloadKind::Regular => QuestConfig {
                num_transactions: n,
                num_items: self.items,
                num_patterns: (self.items * 2).max(10),
                seed: self.seed,
                ..QuestConfig::default()
            }
            .generate(),
            WorkloadKind::Skewed => SkewedConfig {
                num_transactions: n,
                num_items: self.items,
                seed: self.seed,
                ..SkewedConfig::default()
            }
            .generate(),
            WorkloadKind::Alarm => AlarmConfig {
                num_windows: n,
                num_alarm_types: self.items,
                seed: self.seed,
                ..AlarmConfig::default()
            }
            .generate(),
            WorkloadKind::Dense => QuestConfig {
                num_transactions: n,
                num_items: self.items,
                num_patterns: (self.items * 2).max(10),
                avg_transaction_len: 25.0,
                avg_pattern_len: 8.0,
                seed: self.seed,
                ..QuestConfig::default()
            }
            .generate(),
        }
    }

    /// Generates the dataset and pages it at exactly `self.pages` pages.
    pub fn store(&self) -> PageStore {
        PageStore::with_page_count(self.dataset(), self.pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_data::Itemset;

    #[test]
    fn page_count_is_exact() {
        let w = Workload::regular(20, 100);
        let s = w.store();
        assert_eq!(s.num_pages(), 20);
        assert_eq!(s.dataset().len(), 2000);
        assert_eq!(s.num_items(), 100);
    }

    #[test]
    fn kinds_parse() {
        assert_eq!(
            "regular".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Regular
        );
        assert_eq!(
            "nokia".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Alarm
        );
        assert_eq!(
            "dense".parse::<WorkloadKind>().unwrap(),
            WorkloadKind::Dense
        );
        assert!("bogus".parse::<WorkloadKind>().is_err());
    }

    #[test]
    fn all_kinds_generate() {
        for kind in [
            WorkloadKind::Regular,
            WorkloadKind::Skewed,
            WorkloadKind::Alarm,
            WorkloadKind::Dense,
        ] {
            let w = Workload {
                kind,
                pages: 3,
                items: 30,
                seed: 1,
            };
            let s = w.store();
            assert_eq!(s.num_pages(), 3);
            assert!(s.dataset().len() == 300);
        }
    }

    #[test]
    fn dense_is_denser_than_regular() {
        let avg_len = |d: &Dataset| {
            let total: usize = d.transactions().iter().map(Itemset::len).sum();
            total as f64 / d.len() as f64
        };
        let regular = Workload::regular(3, 60).dataset();
        let dense = Workload::dense(3, 60).dataset();
        assert!(avg_len(&dense) > 1.5 * avg_len(&regular));
    }
}
