//! Telecom alarm analysis — the paper's Nokia scenario, episode-style.
//!
//! A network's alarm sequence is cut into time windows; each window's set
//! of distinct alarm types is a transaction (footnote 1 of the paper).
//! Frequent itemsets over these windows are exactly the "episodes" the
//! paper cites [13]: alarm types that fire together, betraying a common
//! fault. Alarm storms make the data temporally skewed and the frequent
//! patterns *long*, so this example mines with the DepthProject-style
//! depth-first miner — with the OSSM pruning its lexicographic extensions
//! (Section 7).
//!
//! Run with: `cargo run -p ossm --release --example alarm_episodes`

use ossm::prelude::*;

fn main() {
    use ossm_mining::{SerialEpisodeMiner, WindowLog};
    // The paper's data: ~5000 windows over ~200 alarm types.
    let dataset = AlarmConfig::default().generate();
    let min_support = dataset.absolute_threshold(0.02);
    let store = PageStore::pack_default(dataset);
    println!(
        "alarm log: {} windows, {} alarm types, {} pages, min support {}",
        store.dataset().len(),
        store.num_items(),
        store.num_pages(),
        min_support
    );

    // Storms cluster in time, so consecutive pages share configurations:
    // the RC algorithm finds near-lossless merges quickly.
    let (ossm, report) = OssmBuilder::new(30).strategy(Strategy::Rc).build(&store);
    println!(
        "OSSM: {} segments in {:?} (loss {})",
        report.num_segments, report.segmentation_time, report.total_loss
    );

    let miner = DepthProject::new();
    let without = miner.mine(store.dataset(), min_support);
    let with = miner.mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm));
    assert_eq!(without.patterns, with.patterns);

    println!(
        "frequency tests: {} -> {} ({} pruned by the OSSM)",
        without.metrics.total_counted(),
        with.metrics.total_counted(),
        with.metrics.total_filtered_out()
    );

    // Report the longest episodes: likely fault signatures.
    let max_len = with.patterns.max_len();
    println!("longest frequent alarm combinations ({max_len} alarms):");
    for episode in with.patterns.of_len(max_len).into_iter().take(5) {
        let support = with
            .patterns
            .support_of(episode)
            .expect("pattern is frequent");
        println!("  alarms {episode}: co-fire in {support} windows");
    }

    // How skewed is this data? The OSSM doubles as a variability profile
    // (the paper's Section 8), which also answers the Figure 7 recipe's
    // "is the data skewed?" question empirically.
    let report = ossm::core::variability::analyze(&ossm);
    println!(
        "\nvariability: skew score {:.2} ({}), {} distinct segment configurations",
        report.skew_score,
        if report.is_skewed() {
            "skewed — storms detected"
        } else {
            "uniform"
        },
        report.distinct_configurations
    );

    // Beyond sets: serial episodes — ordered alarm cascades (A before B
    // inside a window). Build a timestamped sequence with two planted
    // cascades, window it with event order preserved, and mine with the
    // same OSSM machinery pruning candidates.
    let mut events = Vec::new();
    for t in 0..30_000u64 {
        events.push(Event {
            time: t,
            kind: (t % 17) as u32,
        });
        if t % 7 == 0 {
            // A root-cause alarm (20) followed by its consequence (21).
            events.push(Event { time: t, kind: 20 });
            events.push(Event {
                time: t + 1,
                kind: 21,
            });
        }
    }
    let sequence = EventSequence::new(22, events);
    let log = WindowLog::from_sequence(&sequence, 10, 10);
    let windows = log.to_dataset();
    let serial_min = windows.absolute_threshold(0.5);
    let window_store = PageStore::with_page_count(windows, 30);
    let (episode_ossm, _) = OssmBuilder::new(10)
        .strategy(Strategy::Rc)
        .build(&window_store);
    let serial =
        SerialEpisodeMiner::new()
            .with_max_len(3)
            .mine(&log, serial_min, Some(&episode_ossm));
    let mut cascades: Vec<_> = serial
        .episodes
        .iter()
        .filter(|(e, _)| e.len() >= 2)
        .collect();
    cascades.sort_by_key(|(_, s)| std::cmp::Reverse(*s));
    println!(
        "\nserial episodes over {} windows ({} candidate tests OSSM-pruned):",
        log.len(),
        serial.metrics.total_filtered_out()
    );
    for (episode, support) in cascades.into_iter().take(5) {
        println!("  {episode}: {support} windows");
    }
}
