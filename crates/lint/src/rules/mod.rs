//! The rule engine: shared context and the five invariant checks.
//!
//! | rule | invariant                                   | introduced by |
//! |------|---------------------------------------------|---------------|
//! | R1   | panic-free disk/WAL/recovery I/O            | PR 3          |
//! | R2   | `obs`/`faults` feature-gate parity + hygiene | PRs 1–3      |
//! | R3   | obs counter/span names match the registry   | PRs 1–2       |
//! | R4   | eq. (1) bound transforms carry `// SOUND:`  | PR 3          |
//! | R5   | format magics/versions defined exactly once | PR 3          |

use std::path::Path;

use crate::diag::Diagnostic;
use crate::regions::FileModel;

mod r1;
mod r2;
mod r3;
mod r4;
mod r5;

/// Checked-in registry of observability names (rule R3).
pub const REGISTRY_PATH: &str = "crates/obs/registry.txt";
/// Checked-in format-constant manifest (rule R5).
pub const FORMAT_CONSTS_PATH: &str = "crates/lint/format-constants.txt";
/// Grandfathered-violation allowlist.
pub const ALLOWLIST_PATH: &str = "crates/lint/allowlist.txt";

/// One registry entry: an observability name and where it is declared.
#[derive(Clone, Debug)]
pub struct RegistryEntry {
    /// The counter/span/phase/histogram (or fault-tag) name.
    pub name: String,
    /// 1-based line in the registry file.
    pub line: u32,
}

/// Parses `registry.txt`: one name per line, `#` comments.
pub fn parse_registry(text: &str) -> Vec<RegistryEntry> {
    text.lines()
        .enumerate()
        .filter_map(|(n, line)| {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                None
            } else {
                Some(RegistryEntry {
                    name: line.to_owned(),
                    line: n as u32 + 1,
                })
            }
        })
        .collect()
}

/// One format-constant manifest entry.
#[derive(Clone, Debug)]
pub enum FormatConst {
    /// `magic <LITERAL> <file>`: the byte-string literal may appear only
    /// in `<file>`, exactly once, outside tests.
    Magic {
        /// Literal contents (e.g. `OSSMPAGE`).
        literal: String,
        /// Canonical defining file.
        file: String,
    },
    /// `const <NAME> <file>`: `const NAME` must be defined exactly once
    /// in `<file>` (version numbers, header sizes).
    Const {
        /// Constant identifier.
        name: String,
        /// Canonical defining file.
        file: String,
    },
}

/// Parses `format-constants.txt`.
pub fn parse_format_consts(text: &str) -> Result<Vec<FormatConst>, String> {
    let mut out = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some("magic"), Some(lit), Some(file), None) => out.push(FormatConst::Magic {
                literal: lit.to_owned(),
                file: file.to_owned(),
            }),
            (Some("const"), Some(name), Some(file), None) => out.push(FormatConst::Const {
                name: name.to_owned(),
                file: file.to_owned(),
            }),
            _ => {
                return Err(format!(
                "format-constants line {}: expected `magic <LIT> <file>` or `const <NAME> <file>`",
                n + 1
            ))
            }
        }
    }
    Ok(out)
}

/// Everything a rule can see.
pub struct Context<'a> {
    /// Workspace root on disk (for manifest reads).
    pub root: &'a Path,
    /// Every analyzed source file.
    pub files: &'a [FileModel],
    /// Parsed obs-name registry.
    pub registry: &'a [RegistryEntry],
    /// Parsed format-constant manifest.
    pub format_consts: &'a [FormatConst],
    /// Full-tree run: enables existence/staleness checks that are
    /// meaningless when linting a single fixture file.
    pub all_mode: bool,
}

/// Runs every rule and returns the combined diagnostics, stably ordered.
pub fn run_all(ctx: &Context<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(r1::check(ctx));
    diags.extend(r2::check(ctx));
    diags.extend(r3::check(ctx));
    diags.extend(r4::check(ctx));
    diags.extend(r5::check(ctx));
    diags.sort_by(|a, b| (a.rule, &a.path, a.line, &a.key).cmp(&(b.rule, &b.path, b.line, &b.key)));
    diags
}
