//! Page storage: the physical organization of the transaction collection.
//!
//! The paper's constrained segmentation starts from the *page* granularity
//! (Section 4.3): transactions are stored in `p` pages, and all the
//! segmentation algorithms see only the aggregate per-page singleton
//! supports. With the paper's 4 KB pages, one page holds roughly 100
//! transactions, so 50 000 pages correspond to 5 million transactions.
//!
//! [`PageStore`] pins each page to a contiguous run of transactions and
//! precomputes the per-page support vector of every singleton — the input
//! to every segmentation algorithm in `ossm-core`.

use crate::item::Itemset;
use crate::transaction::Dataset;

/// Default page capacity, matching the paper's 4-kilobyte pages.
pub const DEFAULT_PAGE_BYTES: usize = 4096;

/// Resident bytes of the most recently packed [`PageStore`] — the input
/// the ROADMAP's buffer-pool item will budget against.
static MEM_PAGES: ossm_obs::Gauge = ossm_obs::Gauge::new("mem.data.pages");

/// On-page cost model of a serialized transaction: a 4-byte length header
/// plus 4 bytes per item id. With the paper's average basket sizes this
/// yields the paper's "roughly 100 transactions" per 4 KB page.
#[inline]
pub fn transaction_bytes(t: &Itemset) -> usize {
    4 + 4 * t.len()
}

/// A contiguous run of transactions plus its aggregate singleton supports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Page {
    /// Range of transaction indices (into the owning dataset) on this page.
    range: std::ops::Range<usize>,
    /// `supports[i]` = number of transactions on this page containing item `i`.
    supports: Vec<u64>,
}

impl Page {
    /// Range of transaction indices stored on this page.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        self.range.clone()
    }

    /// Number of transactions on this page.
    #[inline]
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the page holds no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Aggregate support of every singleton on this page
    /// (direct-addressed by item id).
    #[inline]
    pub fn supports(&self) -> &[u64] {
        &self.supports
    }
}

/// A dataset physically organized into pages.
#[derive(Clone, Debug)]
pub struct PageStore {
    dataset: Dataset,
    pages: Vec<Page>,
    page_bytes: usize,
}

impl PageStore {
    /// Packs `dataset` into pages of at most `page_bytes` bytes each
    /// (first-fit in storage order, at least one transaction per page so a
    /// jumbo transaction still fits somewhere).
    pub fn pack(dataset: Dataset, page_bytes: usize) -> Self {
        // Each page carries a 4-byte transaction-count header — the same
        // cost model as the on-disk layout (`crate::disk`), so both packers
        // produce identical page boundaries.
        const PAGE_HEADER: usize = 4;
        assert!(page_bytes > 0, "page capacity must be positive");
        let _mem = ossm_obs::alloc_scope("data.page");
        let m = dataset.num_items();
        let mut pages = Vec::new();
        let mut start = 0;
        let mut used = PAGE_HEADER;
        let mut supports = vec![0u64; m];
        for (i, t) in dataset.transactions().iter().enumerate() {
            let cost = transaction_bytes(t);
            if i > start && used + cost > page_bytes {
                pages.push(Page {
                    range: start..i,
                    supports,
                });
                supports = vec![0u64; m];
                start = i;
                used = PAGE_HEADER;
            }
            used += cost;
            for item in t.items() {
                supports[item.index()] += 1;
            }
        }
        if start < dataset.len() {
            pages.push(Page {
                range: start..dataset.len(),
                supports,
            });
        }
        let store = PageStore {
            dataset,
            pages,
            page_bytes,
        };
        MEM_PAGES.set(store.memory_bytes() as u64);
        store
    }

    /// Packs with the paper's default 4 KB pages.
    pub fn pack_default(dataset: Dataset) -> Self {
        Self::pack(dataset, DEFAULT_PAGE_BYTES)
    }

    /// Splits `dataset` into exactly `p` pages of near-equal transaction
    /// count, ignoring byte sizes. Useful for experiments that sweep the
    /// page count `p` directly, as the paper does ("the exact number of
    /// transactions is not important, because the key parameter is the
    /// number of pages").
    pub fn with_page_count(dataset: Dataset, p: usize) -> Self {
        assert!(p > 0, "page count must be positive");
        let _mem = ossm_obs::alloc_scope("data.page");
        let m = dataset.num_items();
        let ranges = dataset.partition_ranges(p.min(dataset.len().max(1)));
        let pages = ranges
            .into_iter()
            .map(|range| {
                let mut supports = vec![0u64; m];
                for t in &dataset.transactions()[range.clone()] {
                    for item in t.items() {
                        supports[item.index()] += 1;
                    }
                }
                Page { range, supports }
            })
            .collect();
        let store = PageStore {
            dataset,
            pages,
            page_bytes: usize::MAX,
        };
        MEM_PAGES.set(store.memory_bytes() as u64);
        store
    }

    /// Resident bytes of this store under the on-page cost model: every
    /// transaction's serialized size plus the per-page singleton support
    /// vectors. Deterministic for a given dataset and page layout.
    pub fn memory_bytes(&self) -> usize {
        let tx_bytes: usize = self
            .dataset
            .transactions()
            .iter()
            .map(transaction_bytes)
            .sum();
        tx_bytes + self.pages.len() * self.num_items() * std::mem::size_of::<u64>()
    }

    /// The underlying dataset.
    #[inline]
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Size of the item domain, `m`.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.dataset.num_items()
    }

    /// Number of pages, `p`.
    #[inline]
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The pages, in storage order.
    #[inline]
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// The byte capacity each page was packed with.
    #[inline]
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// The transactions stored on page `p`.
    pub fn page_transactions(&self, p: usize) -> &[Itemset] {
        &self.dataset.transactions()[self.pages[p].range()]
    }

    /// Sum of page support vectors — equals the dataset's singleton supports.
    ///
    /// Pages are chunked across worker threads; the element-wise sums merge
    /// associatively, so the result is identical at any thread count.
    pub fn total_supports(&self) -> Vec<u64> {
        /// Pages per chunk floor for the parallel sum.
        const MIN_PAGES: usize = 16;
        let partials = ossm_par::map_chunks(self.pages.len(), MIN_PAGES, |r| {
            let mut total = vec![0u64; self.num_items()];
            for page in &self.pages[r] {
                for (t, s) in total.iter_mut().zip(page.supports()) {
                    *t += s;
                }
            }
            total
        });
        if partials.is_empty() {
            return vec![0u64; self.num_items()];
        }
        ossm_par::sum_counts(partials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemId;

    fn tx(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    fn sample() -> Dataset {
        Dataset::new(
            3,
            vec![
                tx(&[0]),
                tx(&[0, 1]),
                tx(&[1, 2]),
                tx(&[0, 1, 2]),
                tx(&[2]),
                tx(&[1]),
            ],
        )
    }

    #[test]
    fn pack_respects_capacity_and_covers_all() {
        // Each transaction costs 4 + 4*len bytes: 8,12,12,16,8,8; every
        // page starts with a 4-byte header.
        let store = PageStore::pack(sample(), 24);
        let lens: Vec<usize> = store.pages().iter().map(Page::len).collect();
        // 4+8+12=24 fits; +12 → 36 > 24 → new page; 4+12 then +16 > 24 → new
        // page; 4+16=20, +8 > 24 → new page; 4+8+8=20 fits.
        assert_eq!(lens, vec![2, 1, 1, 2]);
        let covered: usize = lens.iter().sum();
        assert_eq!(covered, store.dataset().len());
        for w in store.pages().windows(2) {
            assert_eq!(w[0].range().end, w[1].range().start, "pages are contiguous");
        }
    }

    #[test]
    fn jumbo_transaction_gets_own_page() {
        let d = Dataset::new(3, vec![tx(&[0, 1, 2]), tx(&[0])]);
        let store = PageStore::pack(d, 4); // smaller than any transaction
        assert_eq!(store.num_pages(), 2);
        assert_eq!(store.pages()[0].len(), 1);
    }

    #[test]
    fn page_supports_are_local_counts() {
        let store = PageStore::with_page_count(sample(), 2);
        assert_eq!(store.num_pages(), 2);
        // First page: {0},{0,1},{1,2} → supports [2,2,1].
        assert_eq!(store.pages()[0].supports(), &[2, 2, 1]);
        // Second page: {0,1,2},{2},{1} → supports [1,2,2].
        assert_eq!(store.pages()[1].supports(), &[1, 2, 2]);
    }

    #[test]
    fn total_supports_matches_dataset() {
        for p in 1..=6 {
            let store = PageStore::with_page_count(sample(), p);
            assert_eq!(store.total_supports(), store.dataset().singleton_supports());
        }
    }

    #[test]
    fn with_page_count_caps_at_transaction_count() {
        let store = PageStore::with_page_count(sample(), 100);
        assert_eq!(store.num_pages(), 6, "no empty pages");
        assert!(store.pages().iter().all(|p| p.len() == 1));
    }

    #[test]
    fn page_transactions_returns_page_rows() {
        let store = PageStore::with_page_count(sample(), 3);
        assert_eq!(store.page_transactions(0), &[tx(&[0]), tx(&[0, 1])]);
    }

    #[test]
    fn singleton_support_per_page_sums_by_item() {
        let store = PageStore::with_page_count(sample(), 3);
        let item1: u64 = store
            .pages()
            .iter()
            .map(|p| p.supports()[ItemId(1).index()])
            .sum();
        assert_eq!(item1, 4);
    }

    #[test]
    fn empty_dataset_packs_to_zero_pages() {
        let store = PageStore::pack_default(Dataset::empty(5));
        assert_eq!(store.num_pages(), 0);
        assert_eq!(store.total_supports(), vec![0; 5]);
    }
}
