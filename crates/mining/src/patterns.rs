//! Condensed pattern representations: maximal and closed frequent sets.
//!
//! The paper's introduction lists *long patterns* [1, 5] and *closed
//! sets* [16] among the pattern classes whose counting the OSSM serves.
//! This module derives both condensed forms from a full
//! [`FrequentPatterns`] result:
//!
//! * a frequent itemset is **maximal** if no proper superset is frequent;
//! * it is **closed** if no proper superset has the same support.
//!
//! Every maximal set is closed; the closed sets plus their supports
//! losslessly determine the support of *every* frequent itemset (the
//! support of `X` is the maximum support among closed supersets of `X`),
//! which [`support_from_closed`] implements and the tests verify.

use ossm_data::Itemset;

use crate::support::FrequentPatterns;

/// The maximal frequent itemsets: those with no frequent proper superset.
pub fn maximal(patterns: &FrequentPatterns) -> Vec<Itemset> {
    patterns
        .iter()
        .filter(|(p, _)| {
            !patterns
                .iter()
                .any(|(q, _)| q.len() > p.len() && p.is_subset_of(q))
        })
        .map(|(p, _)| p.clone())
        .collect()
}

/// The closed frequent itemsets with their supports: those no proper
/// superset matches in support.
pub fn closed(patterns: &FrequentPatterns) -> FrequentPatterns {
    patterns
        .iter()
        .filter(|(p, s)| {
            !patterns
                .iter()
                .any(|(q, t)| q.len() > p.len() && p.is_subset_of(q) && t == *s)
        })
        .map(|(p, s)| (p.clone(), s))
        .collect()
}

/// Reconstructs the support of an arbitrary frequent itemset from the
/// closed sets: `sup(X) = max { sup(C) : C closed, X ⊆ C }`. Returns
/// `None` if `X` is not frequent (no closed superset).
pub fn support_from_closed(closed: &FrequentPatterns, pattern: &Itemset) -> Option<u64> {
    closed
        .iter()
        .filter(|(c, _)| pattern.is_subset_of(c))
        .map(|(_, s)| s)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use ossm_data::gen::QuestConfig;
    use ossm_data::Dataset;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    /// T = {ab, abc, abc, abd}: sup(a)=sup(b)=sup(ab)=4, sup(abc)=2, …
    fn lattice_dataset() -> Dataset {
        Dataset::new(
            4,
            vec![
                set(&[0, 1]),
                set(&[0, 1, 2]),
                set(&[0, 1, 2]),
                set(&[0, 1, 3]),
            ],
        )
    }

    #[test]
    fn maximal_sets_of_the_lattice() {
        let out = Apriori::new().mine(&lattice_dataset(), 1);
        let mut max = maximal(&out.patterns);
        max.sort();
        assert_eq!(max, vec![set(&[0, 1, 2]), set(&[0, 1, 3])]);
    }

    #[test]
    fn closed_sets_of_the_lattice() {
        let out = Apriori::new().mine(&lattice_dataset(), 1);
        let closed = closed(&out.patterns);
        // {a}, {b} are subsumed by {a,b} (same support 4): not closed.
        assert!(!closed.contains(&set(&[0])));
        assert!(!closed.contains(&set(&[1])));
        assert!(closed.contains(&set(&[0, 1])));
        assert_eq!(closed.support_of(&set(&[0, 1])), Some(4));
        assert!(closed.contains(&set(&[0, 1, 2])));
        assert!(closed.contains(&set(&[0, 1, 3])));
        // {c} alone: sup 2, but {a,b,c} also 2 → subsumed.
        assert!(!closed.contains(&set(&[2])));
        assert_eq!(closed.len(), 3);
    }

    #[test]
    fn maximal_is_a_subset_of_closed() {
        let d = QuestConfig {
            num_transactions: 300,
            num_items: 20,
            ..QuestConfig::small()
        }
        .generate();
        let out = Apriori::new().mine(&d, 8);
        let closed = closed(&out.patterns);
        for m in maximal(&out.patterns) {
            assert!(closed.contains(&m), "maximal {m} must be closed");
        }
    }

    #[test]
    fn closed_sets_losslessly_reconstruct_all_supports() {
        let d = QuestConfig {
            num_transactions: 300,
            num_items: 18,
            ..QuestConfig::small()
        }
        .generate();
        let out = Apriori::new().mine(&d, 6);
        let closed = closed(&out.patterns);
        assert!(closed.len() <= out.patterns.len());
        for (p, s) in out.patterns.iter() {
            assert_eq!(
                support_from_closed(&closed, p),
                Some(s),
                "closed sets lost the support of {p}"
            );
        }
        // A non-frequent probe has no closed superset.
        assert_eq!(
            support_from_closed(&closed, &set(&[0, 1, 2, 3, 4, 5, 6])),
            None
        );
    }

    #[test]
    fn empty_input_yields_empty_outputs() {
        let empty = FrequentPatterns::new();
        assert!(maximal(&empty).is_empty());
        assert!(closed(&empty).is_empty());
        assert_eq!(support_from_closed(&empty, &set(&[0])), None);
    }
}
