//! Segmentations: groupings of initial segments (pages) into final segments.
//!
//! Every segmentation algorithm in this crate consumes a slice of
//! [`Aggregate`]s — the per-page singleton supports the page version of the
//! problem starts from (Section 4.3 of the paper) — and produces a
//! [`Segmentation`], a partition of the input indices into groups. Groups
//! compose, which is exactly what the hybrid strategies of Section 5.4 do:
//! `Random` maps `p` pages to `n_mid` groups, then `RC`/`Greedy` maps those
//! `n_mid` merged aggregates to `n_user` groups, and the two segmentations
//! are composed into a single page-to-segment map.

use ossm_data::PageStore;

/// Aggregate view of one (initial or merged) segment: the support of every
/// singleton item inside it, plus the number of transactions it holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aggregate {
    supports: Vec<u64>,
    transactions: u64,
}

impl Aggregate {
    /// Creates an aggregate from a support vector and a transaction count.
    pub fn new(supports: Vec<u64>, transactions: u64) -> Self {
        Aggregate {
            supports,
            transactions,
        }
    }

    /// An all-zero aggregate over `m` items.
    pub fn zero(m: usize) -> Self {
        Aggregate {
            supports: vec![0; m],
            transactions: 0,
        }
    }

    /// Support of every singleton (direct-addressed by item id).
    #[inline]
    pub fn supports(&self) -> &[u64] {
        &self.supports
    }

    /// Number of transactions aggregated.
    #[inline]
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Size of the item domain.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.supports.len()
    }

    /// Adds `other` into `self` (segment merge, the `S_i ∪ S_j` of Fig. 2).
    // SOUND: pointwise sum — every transaction counted by either input
    // stays counted, so each merged per-item support equals the true
    // item support of the union segment, and min_{a∈X}(sup_i + sup_j)
    // ≥ min sup_i + min sup_j means eq. (1) can only widen, never
    // under-count.
    pub fn merge_in(&mut self, other: &Aggregate) {
        assert_eq!(
            self.supports.len(),
            other.supports.len(),
            "item domains must match"
        );
        for (a, b) in self.supports.iter_mut().zip(&other.supports) {
            *a += b;
        }
        self.transactions += other.transactions;
    }

    /// The merged aggregate of `self` and `other`.
    // SOUND: delegates to `merge_in`; same pointwise-sum argument.
    pub fn merged(&self, other: &Aggregate) -> Aggregate {
        let mut out = self.clone();
        out.merge_in(other);
        out
    }

    /// Extracts the aggregates of every page of a [`PageStore`] — the `p`
    /// initial segments of the constrained segmentation problem.
    pub fn from_pages(store: &PageStore) -> Vec<Aggregate> {
        /// Pages per chunk floor for the parallel extraction.
        const MIN_PAGES: usize = 16;
        let pages = store.pages();
        ossm_par::map_chunks(pages.len(), MIN_PAGES, |r| {
            pages[r]
                .iter()
                .map(|p| Aggregate::new(p.supports().to_vec(), p.len() as u64))
                .collect::<Vec<Aggregate>>()
        })
        .concat()
    }
}

/// A partition of `n` input indices (pages or previously merged segments)
/// into non-empty groups. Group order is the final segment order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segmentation {
    groups: Vec<Vec<usize>>,
    num_inputs: usize,
}

impl Segmentation {
    /// Builds a segmentation from explicit groups.
    ///
    /// # Panics
    /// Panics if the groups are not a partition of `0..num_inputs` (every
    /// index exactly once, no empty group).
    pub fn from_groups(groups: Vec<Vec<usize>>, num_inputs: usize) -> Self {
        let mut seen = vec![false; num_inputs];
        let mut covered = 0;
        for g in &groups {
            assert!(!g.is_empty(), "segments must be non-empty");
            for &i in g {
                assert!(i < num_inputs, "index {i} out of range 0..{num_inputs}");
                assert!(!seen[i], "index {i} appears in two segments");
                seen[i] = true;
                covered += 1;
            }
        }
        assert_eq!(covered, num_inputs, "every input must belong to a segment");
        Segmentation { groups, num_inputs }
    }

    /// One group per input — the identity segmentation (`n = p`).
    pub fn identity(num_inputs: usize) -> Self {
        Segmentation {
            groups: (0..num_inputs).map(|i| vec![i]).collect(),
            num_inputs,
        }
    }

    /// All inputs in a single segment (`n = 1`, the no-OSSM baseline).
    pub fn single(num_inputs: usize) -> Self {
        assert!(num_inputs > 0, "cannot build a segment from zero inputs");
        Segmentation {
            groups: vec![(0..num_inputs).collect()],
            num_inputs,
        }
    }

    /// Number of final segments.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.groups.len()
    }

    /// Number of inputs partitioned.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The groups, each a list of input indices.
    #[inline]
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// `assignment()[i]` = index of the segment input `i` belongs to.
    pub fn assignment(&self) -> Vec<usize> {
        let mut a = vec![0usize; self.num_inputs];
        for (s, g) in self.groups.iter().enumerate() {
            for &i in g {
                a[i] = s;
            }
        }
        a
    }

    /// Merges the aggregates of each group — the final segments' supports.
    // SOUND: each output is a `merge_in` fold over a disjoint input
    // group; a partition neither drops nor double-counts transactions,
    // so every output support is exact for its group.
    pub fn merge_aggregates(&self, inputs: &[Aggregate]) -> Vec<Aggregate> {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "aggregate count must match inputs"
        );
        self.groups
            .iter()
            .map(|g| {
                let mut acc = inputs[g[0]].clone();
                for &i in &g[1..] {
                    acc.merge_in(&inputs[i]);
                }
                acc
            })
            .collect()
    }

    /// Composes with an `outer` segmentation of this segmentation's groups:
    /// the result maps original inputs directly to `outer`'s segments.
    /// Used by the hybrid strategies (`Random` then `RC`/`Greedy`).
    ///
    /// # Panics
    /// Panics if `outer` does not partition exactly `self.num_segments()`
    /// inputs.
    pub fn compose(&self, outer: &Segmentation) -> Segmentation {
        assert_eq!(
            outer.num_inputs(),
            self.num_segments(),
            "outer segmentation must partition this segmentation's groups"
        );
        let groups = outer
            .groups
            .iter()
            .map(|og| {
                og.iter()
                    .flat_map(|&mid| self.groups[mid].iter().copied())
                    .collect()
            })
            .collect();
        Segmentation {
            groups,
            num_inputs: self.num_inputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(counts: &[u64]) -> Aggregate {
        Aggregate::new(counts.to_vec(), counts.iter().sum())
    }

    #[test]
    fn merge_adds_pointwise() {
        let mut a = agg(&[1, 2, 0]);
        a.merge_in(&agg(&[4, 0, 1]));
        assert_eq!(a.supports(), &[5, 2, 1]);
        assert_eq!(a.transactions(), 8);
    }

    #[test]
    fn identity_and_single() {
        let id = Segmentation::identity(3);
        assert_eq!(id.num_segments(), 3);
        assert_eq!(id.assignment(), vec![0, 1, 2]);
        let single = Segmentation::single(3);
        assert_eq!(single.num_segments(), 1);
        assert_eq!(single.assignment(), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "appears in two segments")]
    fn rejects_overlapping_groups() {
        Segmentation::from_groups(vec![vec![0, 1], vec![1]], 2);
    }

    #[test]
    #[should_panic(expected = "every input must belong")]
    fn rejects_uncovered_inputs() {
        Segmentation::from_groups(vec![vec![0]], 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_group() {
        Segmentation::from_groups(vec![vec![0, 1], vec![]], 2);
    }

    #[test]
    fn merge_aggregates_sums_groups() {
        let seg = Segmentation::from_groups(vec![vec![0, 2], vec![1]], 3);
        let merged = seg.merge_aggregates(&[agg(&[1, 0]), agg(&[0, 5]), agg(&[2, 2])]);
        assert_eq!(merged[0].supports(), &[3, 2]);
        assert_eq!(merged[1].supports(), &[0, 5]);
    }

    #[test]
    fn compose_flattens_two_levels() {
        // 4 pages → 3 mid groups → 2 final segments.
        let inner = Segmentation::from_groups(vec![vec![0, 3], vec![1], vec![2]], 4);
        let outer = Segmentation::from_groups(vec![vec![0, 2], vec![1]], 3);
        let composed = inner.compose(&outer);
        assert_eq!(composed.num_inputs(), 4);
        assert_eq!(composed.groups(), &[vec![0, 3, 2], vec![1]]);
        assert_eq!(composed.assignment(), vec![0, 1, 0, 0]);
    }

    #[test]
    fn compose_is_equivalent_to_direct_merge() {
        let inner = Segmentation::from_groups(vec![vec![0, 1], vec![2], vec![3]], 4);
        let outer = Segmentation::from_groups(vec![vec![0, 1], vec![2]], 3);
        let inputs = vec![agg(&[1, 2]), agg(&[3, 4]), agg(&[5, 6]), agg(&[7, 8])];
        let two_step = outer.merge_aggregates(&inner.merge_aggregates(&inputs));
        let one_step = inner.compose(&outer).merge_aggregates(&inputs);
        assert_eq!(two_step, one_step);
    }
}
