//! Workspace discovery: which files to lint and what each crate's
//! manifest declares.
//!
//! Only `crates/*/src/**/*.rs` is linted. Integration-test trees
//! (`tests/`, `crates/*/tests/`), examples, and benches are test/harness
//! code by construction — every rule here guards *shipping* paths. The
//! lint crate's own `fixtures/` directory holds deliberately-violating
//! inputs and is likewise outside the scan.

use std::fs;
use std::path::{Path, PathBuf};

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` contains a `[workspace]` table.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Repo-relative paths (forward slashes) of every linted source file.
pub fn source_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    for entry in fs::read_dir(&crates)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    let mut rel: Vec<String> = out
        .iter()
        .filter_map(|p| {
            p.strip_prefix(root)
                .ok()
                .map(|r| r.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The crate directory (`crates/<name>`) a repo-relative source path
/// belongs to, if any.
pub fn crate_dir_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let name = rest.split('/').next()?;
    // `crates/<name>/…` with at least one more component.
    if rest.len() > name.len() {
        Some(&path[..("crates/".len() + name.len())])
    } else {
        None
    }
}

/// Feature names declared in the `[features]` table of a crate manifest.
/// A minimal line-oriented reader — the workspace's manifests are plain
/// `name = [ … ]` entries, and a missed exotic syntax only produces a
/// lint *failure* (never a silent pass), which is the safe direction.
pub fn declared_features(manifest_text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_features = false;
    for line in manifest_text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_features = line == "[features]";
            continue;
        }
        if !in_features || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let name = line[..eq].trim().trim_matches('"');
            if !name.is_empty() {
                out.push(name.to_owned());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_feature_table() {
        let toml = "[package]\nname = \"x\"\n\n[features]\ndefault = [\"obs\"]\n# gate\nobs = []\nfaults = []\n\n[dependencies]\nserde = \"1\"\n";
        assert_eq!(declared_features(toml), vec!["default", "obs", "faults"]);
    }

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(crate_dir_of("crates/data/src/disk.rs"), Some("crates/data"));
        assert_eq!(crate_dir_of("tests/corruption.rs"), None);
    }
}
