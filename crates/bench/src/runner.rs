//! Experiment runner: the measurements every figure/table binary shares.
//!
//! The paper's central metric is the *speedup*: "the ratio of the execution
//! time of the Apriori algorithm without the OSSM, to that with the OSSM
//! produced by algorithm A". We report that ratio and, alongside it, the
//! deterministic quantity that drives it — the number of candidate
//! 2-itemsets that still required counting (Figure 4(b)'s y-axis) — so the
//! experiments are meaningful even under timing noise.

use std::time::{Duration, Instant};

use ossm_core::{Ossm, OssmBuilder};
use ossm_data::PageStore;
use ossm_mining::{Apriori, CountingBackend, MiningOutcome, NoFilter, OssmFilter};

/// Times a closure.
pub fn timed<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// The Apriori configuration used by all timing experiments: hash-tree
/// counting (the strongest baseline — a linear-scan baseline would flatter
/// the OSSM).
pub fn experiment_apriori() -> Apriori {
    Apriori::new().with_backend(CountingBackend::HashTree)
}

/// Result of one Apriori-without-OSSM baseline run.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Full mining outcome (metrics carry candidate counts).
    pub outcome: MiningOutcome,
}

/// Runs the no-OSSM baseline (single run).
pub fn run_baseline(store: &PageStore, min_support: u64) -> Baseline {
    run_baseline_repeated(store, min_support, 1)
}

/// Runs the no-OSSM baseline `repeats` times and keeps the fastest run
/// (standard noise reduction for wall-clock comparisons).
pub fn run_baseline_repeated(store: &PageStore, min_support: u64, repeats: u32) -> Baseline {
    let apriori = experiment_apriori();
    let mut best: Option<Baseline> = None;
    for _ in 0..repeats.max(1) {
        let (elapsed, outcome) =
            timed(|| apriori.mine_filtered(store.dataset(), min_support, &NoFilter));
        if best.as_ref().map_or(true, |b| elapsed < b.elapsed) {
            best = Some(Baseline { elapsed, outcome });
        }
    }
    best.expect("at least one repeat")
}

/// One row of a speedup table.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Workload name ("Regular", "Skewed", "Alarm"); set via
    /// [`Self::stamped`] so serialized rows say where they came from.
    pub workload: String,
    /// Strategy label ("Greedy", "Random-RC", …).
    pub label: String,
    /// Final segment count of the OSSM.
    pub num_segments: usize,
    /// One-time segmentation cost.
    pub segmentation_time: Duration,
    /// Apriori runtime with this OSSM.
    pub mining_time: Duration,
    /// Paper's speedup ratio (baseline time / with-OSSM time).
    pub speedup: f64,
    /// Fraction of the baseline's counted candidate 2-itemsets that still
    /// required counting (Figure 4(b)'s y-axis; 1.0 = no pruning).
    pub c2_fraction: f64,
    /// Absolute number of candidate 2-itemsets counted with this OSSM.
    pub c2_counted: u64,
    /// Total equation-(2) loss of the segmentation.
    pub loss: u64,
    /// OSSM size in bytes.
    pub memory_bytes: usize,
}

/// Builds an OSSM with `builder`, mines with it, and compares against
/// `baseline`. Panics if the filtered run returns different patterns than
/// the baseline (the OSSM must be lossless; this is a live correctness
/// check inside every experiment).
pub fn run_with_ossm(
    store: &PageStore,
    min_support: u64,
    builder: &OssmBuilder,
    label: impl Into<String>,
    baseline: &Baseline,
) -> SpeedupRow {
    let (ossm, report) = builder.build(store);
    let row = measure_ossm(store, min_support, &ossm, label, baseline);
    SpeedupRow {
        segmentation_time: report.segmentation_time,
        loss: report.total_loss,
        ..row
    }
}

/// Mines with an already-built OSSM and compares against `baseline`.
/// The wall time is the fastest of two runs, matching
/// [`run_baseline_repeated`]'s noise reduction.
pub fn measure_ossm(
    store: &PageStore,
    min_support: u64,
    ossm: &Ossm,
    label: impl Into<String>,
    baseline: &Baseline,
) -> SpeedupRow {
    let apriori = experiment_apriori();
    let (mut elapsed, outcome) =
        timed(|| apriori.mine_filtered(store.dataset(), min_support, &OssmFilter::new(ossm)));
    let (second, _) =
        timed(|| apriori.mine_filtered(store.dataset(), min_support, &OssmFilter::new(ossm)));
    elapsed = elapsed.min(second);
    assert_eq!(
        outcome.patterns, baseline.outcome.patterns,
        "OSSM filtering changed the mining result — equation (1) violated"
    );
    let base_c2 = baseline.outcome.metrics.candidate_2_itemsets_counted();
    let c2 = outcome.metrics.candidate_2_itemsets_counted();
    SpeedupRow {
        workload: String::new(),
        label: label.into(),
        num_segments: ossm.num_segments(),
        segmentation_time: Duration::ZERO,
        mining_time: elapsed,
        speedup: ratio(baseline.elapsed, elapsed),
        c2_fraction: if base_c2 == 0 {
            1.0
        } else {
            c2 as f64 / base_c2 as f64
        },
        c2_counted: c2,
        loss: 0,
        memory_bytes: ossm.memory_bytes(),
    }
}

impl SpeedupRow {
    /// Stamps the row with its workload name.
    pub fn stamped(mut self, workload: impl Into<String>) -> Self {
        self.workload = workload.into();
        self
    }

    /// One self-describing JSON object (no trailing newline): every field
    /// is keyed, so rows from different sweeps can be concatenated into one
    /// stream and still identify their workload, strategy, and `n_user`.
    pub fn to_json_row(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        // JSON has no Infinity; an unmeasurably fast run serializes as null.
        let speedup = if self.speedup.is_finite() {
            format!("{:.4}", self.speedup)
        } else {
            "null".to_owned()
        };
        format!(
            "{{\"type\":\"speedup\",\"workload\":\"{}\",\"strategy\":\"{}\",\
             \"n_user\":{},\"segmentation_nanos\":{},\"mining_nanos\":{},\
             \"speedup\":{speedup},\"c2_counted\":{},\"c2_fraction\":{:.6},\
             \"loss\":{},\"memory_bytes\":{}}}",
            esc(&self.workload),
            esc(&self.label),
            self.num_segments,
            self.segmentation_time.as_nanos(),
            self.mining_time.as_nanos(),
            self.c2_counted,
            self.c2_fraction,
            self.loss,
            self.memory_bytes,
        )
    }
}

/// `a / b` as a float, saturating sanely when `b` is ~0.
pub fn ratio(a: Duration, b: Duration) -> f64 {
    let (a, b) = (a.as_secs_f64(), b.as_secs_f64());
    if b <= f64::EPSILON {
        f64::INFINITY
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use ossm_core::Strategy;

    #[test]
    fn speedup_row_carries_consistent_numbers() {
        let store = Workload::regular(10, 60).store();
        let min_support = store.dataset().absolute_threshold(0.02);
        let baseline = run_baseline(&store, min_support);
        let builder = OssmBuilder::new(8).strategy(Strategy::Rc);
        let row = run_with_ossm(&store, min_support, &builder, "RC", &baseline).stamped("Regular");
        assert_eq!(row.label, "RC");
        assert_eq!(row.workload, "Regular");
        assert_eq!(row.num_segments, 8);
        assert!(row.c2_fraction <= 1.0, "pruning cannot add candidates");
        assert!(row.c2_fraction >= 0.0);
        assert!(row.memory_bytes > 0);
        assert!(row.speedup.is_finite() || row.mining_time.is_zero());
    }

    #[test]
    fn json_rows_are_self_describing() {
        let row = SpeedupRow {
            workload: "Skewed".into(),
            label: "Random-RC".into(),
            num_segments: 40,
            segmentation_time: Duration::from_millis(3),
            mining_time: Duration::from_millis(7),
            speedup: 1.5,
            c2_fraction: 0.25,
            c2_counted: 120,
            loss: 9,
            memory_bytes: 4096,
        };
        let json = row.to_json_row();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        for key in [
            "\"workload\":\"Skewed\"",
            "\"strategy\":\"Random-RC\"",
            "\"n_user\":40",
            "\"speedup\":1.5000",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        // Infinite speedups must stay valid JSON.
        let inf = SpeedupRow {
            speedup: f64::INFINITY,
            ..row
        };
        assert!(inf.to_json_row().contains("\"speedup\":null"));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert!(ratio(Duration::from_secs(1), Duration::ZERO).is_infinite());
        assert!((ratio(Duration::from_secs(2), Duration::from_secs(1)) - 2.0).abs() < 1e-9);
    }
}
