//! The Random segmentation algorithm (Section 5.2 of the paper).
//!
//! "Similar to the construction of the SSM structure [10], the Random
//! algorithm constructs the OSSM by arbitrarily/randomly partitioning pages
//! of transactions into segments." It computes no loss values at all, which
//! is why its complexity is O(p) — and why it is the workhorse first phase
//! of the hybrid strategies for very large `p`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::segmentation::{Aggregate, Segmentation};

use super::{trivial, validate, SegmentationAlgorithm};

/// Random segmentation: shuffle the inputs, cut into `n_user` near-equal
/// runs. Deterministic for a fixed seed.
#[derive(Clone, Debug)]
pub struct Random {
    seed: u64,
}

impl Random {
    /// Creates the algorithm with an RNG seed.
    pub fn new(seed: u64) -> Self {
        Random { seed }
    }
}

impl Default for Random {
    fn default() -> Self {
        Random::new(0)
    }
}

impl SegmentationAlgorithm for Random {
    fn name(&self) -> String {
        "Random".to_owned()
    }

    fn segment(&self, inputs: &[Aggregate], n_user: usize) -> Segmentation {
        validate(inputs, n_user);
        if let Some(t) = trivial(inputs, n_user) {
            return t;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        order.shuffle(&mut rng);
        let p = inputs.len();
        let base = p / n_user;
        let extra = p % n_user;
        let mut groups = Vec::with_capacity(n_user);
        let mut start = 0;
        for s in 0..n_user {
            let size = base + usize::from(s < extra);
            groups.push(order[start..start + size].to_vec());
            start += size;
        }
        Segmentation::from_groups(groups, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::testutil;

    #[test]
    fn satisfies_the_algorithm_contract() {
        testutil::check_contract(&Random::new(42));
    }

    #[test]
    fn deterministic_per_seed() {
        let inputs = testutil::two_config_inputs();
        let a = Random::new(7).segment(&inputs, 2);
        let b = Random::new(7).segment(&inputs, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn group_sizes_are_balanced() {
        let inputs: Vec<Aggregate> = (0..10).map(|i| Aggregate::new(vec![i as u64], 1)).collect();
        let seg = Random::new(1).segment(&inputs, 3);
        let mut sizes: Vec<usize> = seg.groups().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3, 4]);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let inputs: Vec<Aggregate> = (0..12)
            .map(|i| Aggregate::new(vec![i as u64, 12 - i as u64], 1))
            .collect();
        let a = Random::new(1).segment(&inputs, 3);
        let b = Random::new(2).segment(&inputs, 3);
        assert_ne!(
            a, b,
            "two seeds should give different shuffles on 12 inputs"
        );
    }
}
