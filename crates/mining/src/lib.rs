//! # ossm-mining — frequent-pattern miners for the OSSM evaluation
//!
//! The miners the paper evaluates the OSSM with, each exposing the same
//! [`filter::CandidateFilter`] hook so "with OSSM" vs "without OSSM" is a
//! one-argument change:
//!
//! * [`apriori::Apriori`] — the classical level-wise miner (Section 6's
//!   test vehicle), with linear-scan and hash-tree counting back-ends;
//! * [`dhp::Dhp`] — the hash-bucket variant of Park–Chen–Yu (Section 7);
//! * [`partition::Partition`] — two-phase partition mining with
//!   per-partition OSSMs (Section 7);
//! * [`depth::DepthProject`] — depth-first lexicographic-tree mining for
//!   long patterns (Section 7);
//! * [`fpgrowth::FpGrowth`] — the candidate-free baseline used to
//!   cross-validate every other miner.
//!
//! ```
//! use ossm_data::gen::QuestConfig;
//! use ossm_core::minimize_segments;
//! use ossm_mining::{apriori::Apriori, filter::OssmFilter};
//!
//! let data = QuestConfig::small().generate();
//! let ossm = minimize_segments(&data).ossm; // exact OSSM
//! let with = Apriori::new().mine_filtered(&data, 20, &OssmFilter::new(&ossm));
//! let without = Apriori::new().mine(&data, 20);
//! assert_eq!(with.patterns, without.patterns);           // always lossless…
//! assert!(with.metrics.total_counted() <= without.metrics.total_counted()); // …and cheaper
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apriori;
pub mod bitmap;
pub mod constraints;
pub mod correlations;
pub mod depth;
pub mod dhp;
pub mod episodes;
pub mod filter;
pub mod fpgrowth;
pub mod hashtree;
pub mod metrics;
mod obs;
pub mod partition;
pub mod patterns;
pub mod sequences;
pub mod streaming;
pub mod support;
pub mod vertical;

pub use apriori::{Apriori, MiningOutcome};
pub use constraints::{ConstrainedApriori, Constraint};
pub use correlations::{CorrelatedPair, CorrelationMiner};
pub use depth::DepthProject;
pub use dhp::Dhp;
pub use episodes::{SerialEpisode, SerialEpisodeMiner, WindowLog};
pub use filter::{CandidateFilter, NoFilter, OssmFilter};
pub use fpgrowth::FpGrowth;
pub use metrics::{LevelMetrics, MiningMetrics};
pub use partition::Partition;
pub use sequences::{SequenceDb, SequenceMiner, SequencePattern};
pub use streaming::{StreamingApriori, StreamingOutcome};
pub use support::{CountingBackend, FrequentPatterns};
pub use vertical::{Charm, Eclat, GenMax, VerticalIndex};
