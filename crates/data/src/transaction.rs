//! Transactions and datasets.
//!
//! A *transaction* is an observation over the item domain — a market basket,
//! or a window of a telecom alarm sequence (footnote 1 of the paper). A
//! *dataset* is the reference collection `T = {t_1, …, t_N}` over a fixed
//! item domain `0..m`.

use crate::item::Itemset;

/// The reference collection of transactions over a fixed item domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dataset {
    num_items: usize,
    transactions: Vec<Itemset>,
}

impl Dataset {
    /// Creates a dataset over the domain `0..num_items`.
    ///
    /// # Panics
    /// Panics if any transaction references an item `>= num_items`.
    pub fn new(num_items: usize, transactions: Vec<Itemset>) -> Self {
        for (i, t) in transactions.iter().enumerate() {
            if let Some(max) = t.items().last() {
                assert!(
                    max.index() < num_items,
                    "transaction {i} references item {max} outside domain 0..{num_items}"
                );
            }
        }
        Dataset {
            num_items,
            transactions,
        }
    }

    /// A dataset with no transactions over `0..num_items`.
    pub fn empty(num_items: usize) -> Self {
        Dataset {
            num_items,
            transactions: Vec::new(),
        }
    }

    /// Size of the item domain, `m`.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of transactions, `N` (written `|T|` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the dataset holds no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions, in storage order.
    #[inline]
    pub fn transactions(&self) -> &[Itemset] {
        &self.transactions
    }

    /// The `idx`-th transaction.
    #[inline]
    pub fn transaction(&self, idx: usize) -> &Itemset {
        &self.transactions[idx]
    }

    /// Actual support `sup(X)`: the number of transactions containing every
    /// item of `X`. This is the ground truth that OSSM bounds from above.
    pub fn support(&self, pattern: &Itemset) -> u64 {
        self.transactions
            .iter()
            .filter(|t| pattern.is_subset_of(t))
            .count() as u64
    }

    /// Support of every singleton, by one pass over the data.
    pub fn singleton_supports(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_items];
        for t in &self.transactions {
            for item in t.items() {
                counts[item.index()] += 1;
            }
        }
        counts
    }

    /// Converts a relative threshold (fraction of `N`, e.g. `0.01` for the
    /// paper's 1 %) to an absolute minimum support count, rounding up so the
    /// semantics "at least this fraction" are preserved.
    pub fn absolute_threshold(&self, fraction: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "support fraction must be in [0,1]"
        );
        (fraction * self.len() as f64).ceil() as u64
    }

    /// Reorders the transactions according to `order`, where `order[i]` is
    /// the index (into the current storage order) of the transaction that
    /// should come `i`-th. Theorem 1 "allows T to be rearranged"; segment
    /// construction uses this to make segments contiguous.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `0..len()`.
    pub fn reordered(&self, order: &[usize]) -> Dataset {
        assert_eq!(
            order.len(),
            self.len(),
            "order must cover every transaction"
        );
        let mut seen = vec![false; self.len()];
        let mut transactions = Vec::with_capacity(self.len());
        for &src in order {
            assert!(
                !seen[src],
                "order must be a permutation (duplicate index {src})"
            );
            seen[src] = true;
            transactions.push(self.transactions[src].clone());
        }
        Dataset {
            num_items: self.num_items,
            transactions,
        }
    }

    /// Splits the dataset into `k` contiguous partitions of near-equal size
    /// (the unit of work of the Partition algorithm [17]). The last
    /// partitions may be one transaction shorter. All `k` partitions are
    /// non-empty iff `k <= len()`.
    pub fn partition_ranges(&self, k: usize) -> Vec<std::ops::Range<usize>> {
        assert!(k > 0, "cannot partition into zero parts");
        let n = self.len();
        let base = n / k;
        let extra = n % k;
        let mut ranges = Vec::with_capacity(k);
        let mut start = 0;
        for i in 0..k {
            let size = base + usize::from(i < extra);
            ranges.push(start..start + size);
            start += size;
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::ItemId;

    fn tx(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    fn sample() -> Dataset {
        Dataset::new(4, vec![tx(&[0, 1]), tx(&[1, 2]), tx(&[0, 1, 2]), tx(&[3])])
    }

    #[test]
    fn support_counts_containing_transactions() {
        let d = sample();
        assert_eq!(d.support(&tx(&[1])), 3);
        assert_eq!(d.support(&tx(&[0, 1])), 2);
        assert_eq!(d.support(&tx(&[0, 3])), 0);
        assert_eq!(
            d.support(&Itemset::empty()),
            4,
            "empty set occurs in every transaction"
        );
    }

    #[test]
    fn singleton_supports_matches_per_item_support() {
        let d = sample();
        let s = d.singleton_supports();
        assert_eq!(s, vec![2, 3, 2, 1]);
        for (i, &c) in s.iter().enumerate() {
            assert_eq!(c, d.support(&Itemset::singleton(ItemId(i as u32))));
        }
    }

    #[test]
    fn absolute_threshold_rounds_up() {
        let d = sample();
        assert_eq!(d.absolute_threshold(0.5), 2);
        assert_eq!(d.absolute_threshold(0.26), 2);
        assert_eq!(d.absolute_threshold(0.0), 0);
        assert_eq!(d.absolute_threshold(1.0), 4);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn new_rejects_out_of_domain_items() {
        Dataset::new(2, vec![tx(&[0, 2])]);
    }

    #[test]
    fn reordered_permutes() {
        let d = sample();
        let r = d.reordered(&[3, 2, 1, 0]);
        assert_eq!(r.transaction(0), &tx(&[3]));
        assert_eq!(r.transaction(3), &tx(&[0, 1]));
        assert_eq!(r.support(&tx(&[1])), 3, "support is order-invariant");
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn reordered_rejects_duplicates() {
        sample().reordered(&[0, 0, 1, 2]);
    }

    #[test]
    fn partition_ranges_cover_disjointly() {
        let d = sample();
        for k in 1..=4 {
            let ranges = d.partition_ranges(k);
            assert_eq!(ranges.len(), k);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, d.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
        // 4 transactions into 3 parts: sizes 2,1,1.
        let sizes: Vec<usize> = d
            .partition_ranges(3)
            .iter()
            .map(std::iter::ExactSizeIterator::len)
            .collect();
        assert_eq!(sizes, vec![2, 1, 1]);
    }
}
