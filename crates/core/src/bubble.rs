//! The bubble list (Section 5.3 of the paper).
//!
//! The `m²` factor in Greedy's and RC's complexity comes from summing
//! equation (2) over all item pairs. The bubble list heuristic keeps only
//! the items "whose frequencies barely satisfy, and are the closest to,
//! the support threshold": the OSSM's filtering matters most for itemsets
//! whose support hovers around the threshold, so the segmentation should
//! optimize for exactly those items.
//!
//! The list is built once, from the *global* singleton supports and a
//! *reference* threshold — which need not equal the threshold later used at
//! query time (the paper builds the list at 0.25 % and queries at 1 %, and
//! the OSSM still helps; Figure 6 reproduces this).

use ossm_data::PageStore;

use crate::loss::LossCalculator;

/// A bubble list: the item ids whose global support is nearest the
/// reference threshold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BubbleList {
    items: Vec<u32>,
    threshold: u64,
}

impl BubbleList {
    /// Selects the `size` items whose support is closest to `threshold`
    /// (absolute distance; ties broken toward the more frequent item, then
    /// by item id, so the selection is deterministic).
    ///
    /// A `size` of `0` yields an empty list; a `size ≥ m` includes every
    /// item, making the scoped loss identical to the full loss.
    pub fn select(global_supports: &[u64], threshold: u64, size: usize) -> Self {
        let mut ranked: Vec<u32> = (0..global_supports.len() as u32).collect();
        ranked.sort_by_key(|&i| {
            let s = global_supports[i as usize];
            let dist = s.abs_diff(threshold);
            // Prefer items "on the bubble from above" (barely satisfying)
            // over equally-distant items below the threshold.
            let below = u8::from(s < threshold);
            (dist, below, i)
        });
        ranked.truncate(size);
        ranked.sort_unstable();
        BubbleList {
            items: ranked,
            threshold,
        }
    }

    /// Builds the list from a page store's total supports.
    pub fn from_store(store: &PageStore, threshold: u64, size: usize) -> Self {
        Self::select(&store.total_supports(), threshold, size)
    }

    /// Selects a list sized as a percentage of the domain (the x-axis of
    /// Figure 6).
    pub fn with_percentage(global_supports: &[u64], threshold: u64, percent: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&percent),
            "percentage must be in [0, 100]"
        );
        let size = ((global_supports.len() as f64) * percent / 100.0).round() as usize;
        Self::select(global_supports, threshold, size)
    }

    /// The selected item ids, ascending.
    #[inline]
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Number of items on the bubble, `k`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The reference threshold the list was built for.
    #[inline]
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// A loss calculator whose pair sum ranges only over this list.
    pub fn loss_calculator(&self) -> LossCalculator {
        LossCalculator::scoped(self.items.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_items_nearest_threshold() {
        // supports: item0=100, item1=9, item2=11, item3=50, item4=10.
        let supports = [100, 9, 11, 50, 10];
        let b = BubbleList::select(&supports, 10, 3);
        assert_eq!(b.items(), &[1, 2, 4], "the three items nearest 10");
        assert_eq!(b.threshold(), 10);
    }

    #[test]
    fn tie_prefers_barely_satisfying_items() {
        // Items at distance 1 on both sides of threshold 10: 11 wins over 9.
        let supports = [9, 11, 100];
        let b = BubbleList::select(&supports, 10, 1);
        assert_eq!(b.items(), &[1]);
    }

    #[test]
    fn size_zero_and_full_size() {
        let supports = [5, 6, 7];
        assert!(BubbleList::select(&supports, 6, 0).is_empty());
        let full = BubbleList::select(&supports, 6, 10);
        assert_eq!(
            full.items(),
            &[0, 1, 2],
            "oversized request clamps to the domain"
        );
    }

    #[test]
    fn percentage_sizing() {
        let supports = vec![1u64; 200];
        assert_eq!(BubbleList::with_percentage(&supports, 1, 10.0).len(), 20);
        assert_eq!(BubbleList::with_percentage(&supports, 1, 0.0).len(), 0);
        assert_eq!(BubbleList::with_percentage(&supports, 1, 100.0).len(), 200);
    }

    #[test]
    fn full_bubble_list_matches_unscoped_loss() {
        use crate::segmentation::Aggregate;
        let a = Aggregate::new(vec![5, 2, 1, 9], 9);
        let b = Aggregate::new(vec![1, 2, 5, 0], 5);
        let full = BubbleList::select(&[6, 4, 6, 9], 5, 4).loss_calculator();
        let unscoped = LossCalculator::all_items();
        assert_eq!(full.merge_loss(&a, &b), unscoped.merge_loss(&a, &b));
    }

    #[test]
    fn selection_is_deterministic() {
        let supports = [3, 3, 3, 3];
        let b = BubbleList::select(&supports, 3, 2);
        assert_eq!(b.items(), &[0, 1], "all tied → lowest ids");
    }
}
