//! OSSM persistence.
//!
//! The OSSM is a compile-time artifact: "a fixed structure that can be
//! computed once at compile-time (pre-processing), and can be used
//! regardless of how the support threshold is changed dynamically"
//! (Section 3). That only pays off if the structure outlives the process —
//! this module gives it a tiny self-describing binary format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "OSSM-MAP", version u32 = 2, m u32, n u64,
//! per segment: transactions u64, m × u64 singleton supports,
//! crc u32 (CRC32C of every preceding byte)
//! ```
//!
//! Version 2 appends the CRC32C trailer; v1 files (no trailer) remain
//! readable. A map whose trailer does not verify is rejected outright —
//! a silently corrupt segment support would turn eq. (1) from an upper
//! bound into a lie, which is worse than no map at all. [`save_atomic`]
//! additionally writes through a `tmp + fsync + rename` sequence so a
//! crash mid-save can never leave a half-written map at the target path.

use std::io::{self, Read, Write};
use std::path::Path;

use ossm_data::checksum::{Crc32cReader, Crc32cWriter};

use crate::segmentation::Aggregate;
use crate::ssm::Ossm;

/// On-disk magic for persisted OSSM maps (lint rule R5: defined once here).
pub const MAGIC: &[u8; 8] = b"OSSM-MAP";
const V1: u32 = 1;
const V2: u32 = 2;
/// Cap on the item-domain size accepted from a header (matches the page
/// store's cap); a corrupt `m` otherwise drives huge allocations.
const MAX_ITEMS: usize = 1 << 24;
/// Cap on the segment count accepted from a header.
const MAX_SEGMENTS: u64 = 1 << 32;

/// Serializes an OSSM to `w` (format v2, checksummed).
pub fn write_ossm<W: Write>(w: &mut W, ossm: &Ossm) -> io::Result<()> {
    let mut w = Crc32cWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&V2.to_le_bytes())?;
    w.write_all(&(ossm.num_items() as u32).to_le_bytes())?;
    w.write_all(&(ossm.num_segments() as u64).to_le_bytes())?;
    for seg in ossm.segments() {
        w.write_all(&seg.transactions().to_le_bytes())?;
        for &s in seg.supports() {
            w.write_all(&s.to_le_bytes())?;
        }
    }
    let crc = w.digest();
    w.get_mut().write_all(&crc.to_le_bytes())
}

/// Deserializes an OSSM from `r` (v2 with checksum verification, or
/// legacy v1 without). Header fields are sanity-capped so a corrupt or
/// hostile header errors instead of OOM-ing.
pub fn read_ossm<R: Read>(r: &mut R) -> io::Result<Ossm> {
    let mut r = Crc32cReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an OSSM file (bad magic)"));
    }
    let version = read_u32(&mut r)?;
    if version != V1 && version != V2 {
        return Err(bad(format!("unsupported OSSM version {version}")));
    }
    let m = read_u32(&mut r)? as usize;
    if m > MAX_ITEMS {
        return Err(bad(format!("implausible item domain m = {m}")));
    }
    let n = read_u64(&mut r)?;
    if n == 0 {
        return Err(bad("an OSSM must have at least one segment"));
    }
    if n > MAX_SEGMENTS {
        return Err(bad(format!("implausible segment count {n}")));
    }
    let n = usize::try_from(n).map_err(|_| bad("segment count overflows usize"))?;
    let mut segments = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let transactions = read_u64(&mut r)?;
        // Grow element-wise with a capped pre-allocation: a lying header
        // runs into EOF, not into a multi-gigabyte reservation.
        let mut supports = Vec::with_capacity(m.min(1 << 20));
        for _ in 0..m {
            supports.push(read_u64(&mut r)?);
        }
        segments.push(Aggregate::new(supports, transactions));
    }
    if version >= V2 {
        let expected = r.digest();
        let mut trailer = [0u8; 4];
        r.get_mut().read_exact(&mut trailer)?;
        if u32::from_le_bytes(trailer) != expected {
            return Err(bad("OSSM checksum mismatch: the map is corrupt"));
        }
    }
    // Anything after the payload (v1) / trailer (v2) is not ours.
    if r.get_mut().read(&mut [0u8; 1])? != 0 {
        return Err(bad("trailing bytes after the OSSM"));
    }
    Ok(Ossm::from_aggregates(segments))
}

/// Writes an OSSM to the file at `path`.
pub fn save(path: &Path, ossm: &Ossm) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_ossm(&mut f, ossm)?;
    f.flush()
}

/// Writes an OSSM to the file at `path` crash-safely: the bytes go to a
/// temporary sibling first, are fsynced, and are renamed into place (with
/// a directory fsync), so at every instant `path` holds either the old
/// complete map or the new complete map — never a torn mixture.
pub fn save_atomic(path: &Path, ossm: &Ossm) -> io::Result<()> {
    let tmp = path.with_extension("ossm-tmp");
    {
        let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
        write_ossm(&mut f, ossm)?;
        f.into_inner()?.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Persist the rename itself; failures are surfaced, except on
        // platforms where directories cannot be fsynced.
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all()?;
        }
    }
    Ok(())
}

/// Reads an OSSM from the file at `path`.
pub fn load(path: &Path) -> io::Result<Ossm> {
    // A loaded map is core.seg memory, same as a freshly built one.
    let _mem = ossm_obs::alloc_scope("core.seg");
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_ossm(&mut f)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OssmBuilder;
    use ossm_data::gen::QuestConfig;
    use ossm_data::PageStore;

    fn sample_ossm() -> Ossm {
        let d = QuestConfig {
            num_transactions: 300,
            num_items: 25,
            ..QuestConfig::small()
        }
        .generate();
        let store = PageStore::with_page_count(d, 12);
        OssmBuilder::new(5).build(&store).0
    }

    /// Serializes in the legacy v1 layout (no trailer).
    fn write_v1(ossm: &Ossm) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&V1.to_le_bytes());
        buf.extend_from_slice(&(ossm.num_items() as u32).to_le_bytes());
        buf.extend_from_slice(&(ossm.num_segments() as u64).to_le_bytes());
        for seg in ossm.segments() {
            buf.extend_from_slice(&seg.transactions().to_le_bytes());
            for &s in seg.supports() {
                buf.extend_from_slice(&s.to_le_bytes());
            }
        }
        buf
    }

    #[test]
    fn roundtrip_preserves_the_map() {
        let ossm = sample_ossm();
        let mut buf = Vec::new();
        write_ossm(&mut buf, &ossm).expect("write");
        let back = read_ossm(&mut buf.as_slice()).expect("read");
        assert_eq!(back, ossm);
        // Bounds agree, of course.
        let probe = ossm_data::Itemset::new([1, 7, 13]);
        assert_eq!(back.upper_bound(&probe), ossm.upper_bound(&probe));
    }

    #[test]
    fn legacy_v1_maps_still_read() {
        let ossm = sample_ossm();
        let buf = write_v1(&ossm);
        assert_eq!(read_ossm(&mut buf.as_slice()).expect("read v1"), ossm);
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let ossm = sample_ossm();
        let mut buf = Vec::new();
        write_ossm(&mut buf, &ossm).expect("write");
        // Flip one bit in a support value deep in the payload.
        let at = buf.len() / 2;
        buf[at] ^= 0x01;
        let err = read_ossm(&mut buf.as_slice())
            .map(|_| ())
            .expect_err("flip detected");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(read_ossm(&mut &b"NOT-OSSM\0\0\0\0"[..]).is_err());
        let ossm = sample_ossm();
        let mut buf = Vec::new();
        write_ossm(&mut buf, &ossm).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(read_ossm(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_zero_segments_and_hostile_headers() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&V1.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_ossm(&mut buf.as_slice()).is_err());
        // A header claiming 4 billion items over a tiny payload must
        // error without attempting the allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&V2.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        let err = read_ossm(&mut buf.as_slice())
            .map(|_| ())
            .expect_err("capped");
        assert!(err.to_string().contains("implausible"), "{err}");
        // Same for the segment count.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&V2.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_ossm(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_trailing_bytes() {
        let ossm = sample_ossm();
        let mut buf = Vec::new();
        write_ossm(&mut buf, &ossm).expect("write");
        buf.extend_from_slice(b"junk");
        let err = read_ossm(&mut buf.as_slice())
            .map(|_| ())
            .expect_err("junk detected");
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ossm-persist-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("map.ossm");
        let ossm = sample_ossm();
        save(&path, &ossm).expect("save");
        assert_eq!(load(&path).expect("load"), ossm);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_save_roundtrips_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("ossm-persist-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("atomic.ossm");
        let ossm = sample_ossm();
        save_atomic(&path, &ossm).expect("save");
        assert_eq!(load(&path).expect("load"), ossm);
        assert!(!path.with_extension("ossm-tmp").exists());
        std::fs::remove_file(&path).ok();
    }
}
