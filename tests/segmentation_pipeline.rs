//! End-to-end pipeline tests: workload → pages → segmentation strategy →
//! OSSM → filtered mining, across all strategies and all three paper
//! workloads. Verifies the qualitative claims the experiments rely on.

use ossm_core::{recommend, ApplicationProfile, Ossm, OssmBuilder, Segmentation, Strategy};
use ossm_data::gen::{AlarmConfig, QuestConfig, SkewedConfig};
use ossm_data::{Dataset, PageStore};
use ossm_mining::{Apriori, CountingBackend, NoFilter, OssmFilter};

fn workloads() -> Vec<(&'static str, Dataset)> {
    vec![
        (
            "regular",
            QuestConfig {
                num_transactions: 1500,
                num_items: 60,
                ..QuestConfig::small()
            }
            .generate(),
        ),
        (
            "skewed",
            SkewedConfig {
                num_transactions: 1500,
                num_items: 60,
                ..SkewedConfig::small()
            }
            .generate(),
        ),
        (
            "alarm",
            AlarmConfig {
                num_windows: 1500,
                num_alarm_types: 60,
                ..AlarmConfig::small()
            }
            .generate(),
        ),
    ]
}

const ALL_STRATEGIES: [Strategy; 5] = [
    Strategy::Random,
    Strategy::Rc,
    Strategy::Greedy,
    Strategy::RandomRc { n_mid: 15 },
    Strategy::RandomGreedy { n_mid: 15 },
];

#[test]
fn every_strategy_produces_a_sound_lossless_ossm() {
    for (name, d) in workloads() {
        let min_support = d.absolute_threshold(0.02);
        let store = PageStore::with_page_count(d, 30);
        let apriori = Apriori::new().with_backend(CountingBackend::HashTree);
        let baseline = apriori.mine_filtered(store.dataset(), min_support, &NoFilter);
        for strategy in ALL_STRATEGIES {
            let (ossm, report) = OssmBuilder::new(8).strategy(strategy).build(&store);
            assert_eq!(ossm.num_segments(), 8, "{name}/{strategy:?}");
            assert_eq!(report.num_segments, 8);
            let filtered =
                apriori.mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm));
            assert_eq!(
                baseline.patterns, filtered.patterns,
                "{name}/{strategy:?} changed the mining result"
            );
            assert!(
                filtered.metrics.total_counted() <= baseline.metrics.total_counted(),
                "{name}/{strategy:?} increased counting work"
            );
        }
    }
}

/// Workloads shaped like the paper's pruning regime: the typical item
/// support sits near the threshold (m large relative to basket mass), so
/// equation (1) has room to discharge candidate pairs. With very frequent
/// items the bound approaches `min(sup(a), sup(b))`, which Apriori's own
/// L1 filter already guarantees is above threshold — no structure can
/// prune there.
fn pruning_workloads() -> Vec<(&'static str, Dataset)> {
    vec![
        (
            "regular",
            QuestConfig {
                num_transactions: 2000,
                num_items: 300,
                ..QuestConfig::small()
            }
            .generate(),
        ),
        (
            "skewed",
            SkewedConfig {
                num_transactions: 2000,
                num_items: 300,
                ..SkewedConfig::small()
            }
            .generate(),
        ),
        (
            "alarm",
            AlarmConfig {
                num_windows: 2000,
                num_alarm_types: 150,
                ..AlarmConfig::small()
            }
            .generate(),
        ),
    ]
}

#[test]
fn more_segments_prune_more() {
    // Section 3: "the upper bound can be made tighter by increasing the
    // number of segments". Measured as counted candidate 2-itemsets under
    // Greedy OSSMs of growing size.
    for (name, d) in pruning_workloads() {
        let min_support = d.absolute_threshold(0.02);
        let store = PageStore::with_page_count(d, 40);
        let apriori = Apriori::new();
        let counted_at = |n: usize| {
            let (ossm, _) = OssmBuilder::new(n).strategy(Strategy::Greedy).build(&store);
            apriori
                .mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm))
                .metrics
                .candidate_2_itemsets_counted()
        };
        let c1 = counted_at(1);
        let c10 = counted_at(10);
        let c40 = counted_at(40);
        assert!(c10 <= c1, "{name}: 10 segments worse than 1 ({c10} > {c1})");
        assert!(
            c40 <= c10,
            "{name}: 40 segments worse than 10 ({c40} > {c10})"
        );
        assert!(c40 < c1, "{name}: the OSSM never helped at all");
    }
}

#[test]
fn greedy_beats_random_on_loss_and_skew_helps_everyone() {
    for (name, d) in workloads() {
        let store = PageStore::with_page_count(d, 30);
        let (_, greedy) = OssmBuilder::new(6).strategy(Strategy::Greedy).build(&store);
        let (_, random) = OssmBuilder::new(6).strategy(Strategy::Random).build(&store);
        assert!(
            greedy.total_loss <= random.total_loss,
            "{name}: Greedy ({}) lost more than Random ({})",
            greedy.total_loss,
            random.total_loss
        );
    }
}

#[test]
fn skewed_data_prunes_better_than_regular_with_random_segments() {
    // "The more skewed the data, the more effective the OSSM" — compare
    // the candidate-2 pruning fraction on the regular vs skewed workloads,
    // both segmented by plain Random (which is exactly the Figure 7 case
    // for skewed data). Seasonal pages differ wildly in configuration, so
    // even arbitrary contiguous grouping separates the seasons.
    let fraction = |d: Dataset| {
        let min_support = d.absolute_threshold(0.02);
        let store = PageStore::with_page_count(d, 40);
        let apriori = Apriori::new();
        let base = apriori.mine(store.dataset(), min_support);
        let (ossm, _) = OssmBuilder::new(10)
            .strategy(Strategy::Random)
            .build(&store);
        let with = apriori.mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm));
        with.metrics.candidate_2_itemsets_counted() as f64
            / base.metrics.candidate_2_itemsets_counted().max(1) as f64
    };
    let regular = fraction(
        QuestConfig {
            num_transactions: 2000,
            num_items: 50,
            ..QuestConfig::small()
        }
        .generate(),
    );
    let skewed = fraction(
        SkewedConfig {
            num_transactions: 2000,
            num_items: 50,
            season_boost: 12.0,
            ..SkewedConfig::small()
        }
        .generate(),
    );
    assert!(
        skewed < regular,
        "skewed data should prune harder: skewed fraction {skewed}, regular {regular}"
    );
}

#[test]
fn recipe_strategies_all_build_end_to_end() {
    let d = SkewedConfig {
        num_transactions: 1000,
        num_items: 40,
        ..SkewedConfig::small()
    }
    .generate();
    let store = PageStore::with_page_count(d, 20);
    for (large_n, skew, cost, large_p) in [
        (true, true, false, false),
        (false, false, false, false),
        (false, false, true, true),
        (false, false, true, false),
    ] {
        let rec = recommend(ApplicationProfile {
            large_n_user: large_n,
            skewed_data: skew,
            segmentation_cost_an_issue: cost,
            very_large_p: large_p,
        });
        let strategy = Strategy::from_recommendation(rec, 10);
        let mut builder = OssmBuilder::new(5).strategy(strategy);
        if rec != ossm_core::RecommendedStrategy::Random {
            builder = builder.bubble(0.01, 25.0);
        }
        let (ossm, report) = builder.build(&store);
        assert_eq!(ossm.num_segments(), 5, "{rec:?}");
        assert!(report.segmentation_time.as_secs() < 30);
    }
}

#[test]
fn bubble_list_cuts_segmentation_time_without_breaking_quality() {
    let d = QuestConfig {
        num_transactions: 3000,
        num_items: 200,
        ..QuestConfig::small()
    }
    .generate();
    let store = PageStore::with_page_count(d, 60);
    let (_, full) = OssmBuilder::new(10)
        .strategy(Strategy::Greedy)
        .build(&store);
    let (ossm_b, bubbled) = OssmBuilder::new(10)
        .strategy(Strategy::Greedy)
        .bubble(0.01, 10.0)
        .build(&store);
    // Quality: the bubbled OSSM must still be sound and useful.
    assert_eq!(ossm_b.num_segments(), 10);
    assert_eq!(bubbled.bubble_len, Some(20));
    // Timing comparisons are noisy in CI; assert the structural effect
    // instead: the bubble-scoped loss computation considers 20 items, the
    // full one 200, and both produce valid segmentations.
    assert!(
        bubbled.total_loss >= full.total_loss || bubbled.total_loss > 0 || full.total_loss == 0
    );
}

#[test]
fn single_segment_ossm_equals_global_support_bound() {
    let d = QuestConfig {
        num_transactions: 500,
        num_items: 30,
        ..QuestConfig::small()
    }
    .generate();
    let store = PageStore::with_page_count(d, 10);
    let single = Ossm::single_segment(&store);
    let via_builder = Ossm::from_pages(&store, &Segmentation::single(10));
    assert_eq!(single, via_builder);
    // Its pair bound is min of the global supports.
    let totals = store.total_supports();
    let x = ossm_data::Itemset::new([0, 1]);
    assert_eq!(single.upper_bound(&x), totals[0].min(totals[1]));
}
