//! The paper's experiments, one function per figure/table.
//!
//! Each function returns the markdown report it also expects the caller to
//! print; `all-experiments` stitches them into `EXPERIMENTS.md` order.
//! Scale defaults are laptop-sized; `--pages` (and `--full` where noted)
//! move toward paper scale. See DESIGN.md §5 for the scaling rationale.

use std::fmt::Write as _;

use ossm_core::{OssmBuilder, Strategy};
use ossm_mining::{Dhp, OssmFilter};

use crate::cli::Options;
use crate::runner::{ratio, run_baseline, run_with_ossm, timed, SpeedupRow};
use crate::table::{fmt_bytes, fmt_duration, fmt_percent, fmt_speedup, Table};
use crate::workloads::{Workload, WorkloadKind};

/// One experiment's output: the markdown report plus the stamped speedup
/// rows behind it, so callers (the `all-experiments` binary) can also emit
/// the rows as self-describing JSON.
#[derive(Clone, Debug)]
pub struct Section {
    /// The human-readable report.
    pub markdown: String,
    /// Every measured row, stamped with workload/strategy/`n_user`.
    pub rows: Vec<SpeedupRow>,
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.markdown)
    }
}

/// Figure 4(a)/(b): Apriori speedup and candidate-2-itemset fraction vs
/// the number of segments, for the Random, RC, and Greedy algorithms on
/// regular-synthetic data at a 1 % support threshold.
pub fn fig4(opts: &Options) -> Section {
    let pages: usize = opts.get("pages", 200);
    let items: usize = opts.get("items", 1000);
    let minsup: f64 = opts.get("minsup", 0.01);
    let seed: u64 = opts.get("seed", 1);
    let kind: WorkloadKind = opts.get("workload", WorkloadKind::Regular);
    let workload = Workload::new(kind, pages, items);
    let store = workload.store();
    let min_support = store.dataset().absolute_threshold(minsup);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 4 — OSSM effectiveness vs number of segments\n\n\
         {kind:?} workload, p = {pages} pages ({} transactions), m = {items} items, \
         minsup = {minsup} ({min_support} abs)\n",
        workload.num_transactions()
    );

    let baseline = run_baseline(&store, min_support);
    let _ = writeln!(
        out,
        "Apriori without the OSSM: {} ({} candidate 2-itemsets counted)\n",
        fmt_duration(baseline.elapsed),
        baseline.outcome.metrics.candidate_2_itemsets_counted()
    );

    let mut rows: Vec<SpeedupRow> = Vec::new();
    let mut speedups = Table::new(["n_user", "Greedy", "RC", "Random", "OSSM size"]);
    let mut fractions = Table::new(["n_user", "Greedy", "RC", "Random"]);
    let mut sweep: Vec<usize> = [20, 40, 60, 80, 100, 120, 140, 160]
        .iter()
        .copied()
        .filter(|&n| n <= pages)
        .collect();
    if sweep.is_empty() {
        // Tiny (smoke-scale) runs: still measure one point.
        sweep.push((pages / 2).max(1));
    }
    for n_user in sweep {
        let greedy = run_with_ossm(
            &store,
            min_support,
            &OssmBuilder::new(n_user)
                .strategy(Strategy::Greedy)
                .seed(seed),
            "Greedy",
            &baseline,
        )
        .stamped(format!("{kind:?}"));
        let rc = run_with_ossm(
            &store,
            min_support,
            &OssmBuilder::new(n_user).strategy(Strategy::Rc).seed(seed),
            "RC",
            &baseline,
        )
        .stamped(format!("{kind:?}"));
        let random = run_with_ossm(
            &store,
            min_support,
            &OssmBuilder::new(n_user)
                .strategy(Strategy::Random)
                .seed(seed),
            "Random",
            &baseline,
        )
        .stamped(format!("{kind:?}"));
        speedups.row([
            n_user.to_string(),
            fmt_speedup(greedy.speedup),
            fmt_speedup(rc.speedup),
            fmt_speedup(random.speedup),
            fmt_bytes(greedy.memory_bytes),
        ]);
        fractions.row([
            n_user.to_string(),
            fmt_percent(greedy.c2_fraction),
            fmt_percent(rc.c2_fraction),
            fmt_percent(random.c2_fraction),
        ]);
        rows.extend([greedy, rc, random]);
    }
    let _ = writeln!(
        out,
        "### (a) Speedup relative to Apriori without the OSSM\n"
    );
    out.push_str(&speedups.to_markdown());
    let _ = writeln!(
        out,
        "\n### (b) Candidate 2-itemsets still counted (fraction of baseline)\n"
    );
    out.push_str(&fractions.to_markdown());
    Section {
        markdown: out,
        rows,
    }
}

/// Figure 5(a)/(b): segmentation cost and speedup of the pure strategies
/// (p = 500) and the hybrid strategies (large p, Random down to n_mid).
pub fn fig5(opts: &Options) -> Section {
    let items: usize = opts.get("items", 1000);
    let minsup: f64 = opts.get("minsup", 0.01);
    let n_user: usize = opts.get("nuser", 40);
    let seed: u64 = opts.get("seed", 1);
    let pure_pages: usize = opts.get("pages", 500);
    // Paper: 50 000 pages for the hybrids. Default to 2 500 for a
    // minutes-scale run; --full restores the paper's value.
    let hybrid_pages: usize = if opts.flag("full") {
        50_000
    } else {
        opts.get("hybrid-pages", 2500)
    };
    let n_mid: usize = opts.get("nmid", 200);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 5 — Segmentation cost: pure and hybrid strategies\n"
    );

    // (a) Pure strategies at p = 500.
    let kind: WorkloadKind = opts.get("workload", WorkloadKind::Regular);
    let workload = Workload::new(kind, pure_pages, items);
    let store = workload.store();
    let min_support = store.dataset().absolute_threshold(minsup);
    let baseline = run_baseline(&store, min_support);
    let _ = writeln!(
        out,
        "### (a) Pure strategies ({kind:?}), p = {pure_pages}, n_user = {n_user} \
         (baseline Apriori {}, {} candidate 2-itemsets)\n",
        fmt_duration(baseline.elapsed),
        baseline.outcome.metrics.candidate_2_itemsets_counted()
    );
    let mut table_a = Table::new([
        "Pure strategy",
        "Segmentation time",
        "Speedup",
        "C2 counted",
        "Loss (eq. 2)",
    ]);
    let mut rows: Vec<SpeedupRow> = Vec::new();
    for strategy in [Strategy::Random, Strategy::Rc, Strategy::Greedy] {
        let builder = OssmBuilder::new(n_user).strategy(strategy).seed(seed);
        // `strategy_label`, not `{strategy:?}`: the Debug form renders
        // `Rc`, which would split this strategy's telemetry keys from
        // fig4's literal "RC" rows in BENCH_obs.json.
        let row = run_with_ossm(
            &store,
            min_support,
            &builder,
            strategy_label(strategy),
            &baseline,
        )
        .stamped(format!("{kind:?}"));
        table_a.row([
            row.label.clone(),
            fmt_duration(row.segmentation_time),
            fmt_speedup(row.speedup),
            row.c2_counted.to_string(),
            row.loss.to_string(),
        ]);
        rows.push(row);
    }
    out.push_str(&table_a.to_markdown());

    // (b) Hybrid strategies at large p.
    let workload = Workload::new(kind, hybrid_pages, items);
    let store = workload.store();
    let min_support = store.dataset().absolute_threshold(minsup);
    let baseline = run_baseline(&store, min_support);
    let _ = writeln!(
        out,
        "\n### (b) Hybrid strategies ({kind:?}), p = {hybrid_pages} ({} transactions), \
         n_mid = {n_mid}, n_user = {n_user} (baseline Apriori {}, {} candidate 2-itemsets)\n",
        workload.num_transactions(),
        fmt_duration(baseline.elapsed),
        baseline.outcome.metrics.candidate_2_itemsets_counted()
    );
    let mut table_b = Table::new([
        "Hybrid strategy",
        "Segmentation time",
        "Speedup",
        "C2 counted",
        "Loss (eq. 2)",
    ]);
    for strategy in [
        Strategy::RandomRc { n_mid },
        Strategy::RandomGreedy { n_mid },
    ] {
        let builder = OssmBuilder::new(n_user).strategy(strategy).seed(seed);
        let row = run_with_ossm(
            &store,
            min_support,
            &builder,
            strategy_label(strategy),
            &baseline,
        )
        .stamped(format!("{kind:?}"));
        table_b.row([
            row.label.clone(),
            fmt_duration(row.segmentation_time),
            fmt_speedup(row.speedup),
            row.c2_counted.to_string(),
            row.loss.to_string(),
        ]);
        rows.push(row);
    }
    out.push_str(&table_b.to_markdown());
    Section {
        markdown: out,
        rows,
    }
}

/// Figure 6(a)/(b): segmentation cost and speedup vs bubble-list size.
/// The bubble list is built at a 0.25 % reference threshold while queries
/// run at 1 % — reproducing the paper's threshold-mismatch setup.
pub fn fig6(opts: &Options) -> Section {
    let items: usize = opts.get("items", 1000);
    let pages: usize = if opts.flag("full") {
        50_000
    } else {
        opts.get("pages", 2500)
    };
    let n_mid: usize = opts.get("nmid", 200);
    let n_user: usize = opts.get("nuser", 40);
    let seed: u64 = opts.get("seed", 1);
    let bubble_threshold: f64 = opts.get("bubble-minsup", 0.0025);
    let query_threshold: f64 = opts.get("minsup", 0.01);

    let kind: WorkloadKind = opts.get("workload", WorkloadKind::Regular);
    let workload = Workload::new(kind, pages, items);
    let store = workload.store();
    let min_support = store.dataset().absolute_threshold(query_threshold);
    let baseline = run_baseline(&store, min_support);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Figure 6 — The bubble list optimization\n\n\
         {kind:?} workload, p = {pages}, m = {items}; bubble built at \
         {bubble_threshold} support, queries at {query_threshold} \
         (baseline Apriori {})\n",
        fmt_duration(baseline.elapsed)
    );

    let mut time_table = Table::new([
        "Bubble size (% of m)",
        "Random-Greedy seg. time",
        "Random-RC seg. time",
    ]);
    let mut speed_table = Table::new([
        "Bubble size (% of m)",
        "Random-Greedy speedup",
        "Random-RC speedup",
        "RG C2 counted",
        "RRC C2 counted",
    ]);
    let mut rows: Vec<SpeedupRow> = Vec::new();
    for percent in [1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0] {
        let rg = run_with_ossm(
            &store,
            min_support,
            &OssmBuilder::new(n_user)
                .strategy(Strategy::RandomGreedy { n_mid })
                .bubble(bubble_threshold, percent)
                .seed(seed),
            format!("Random-Greedy bubble {percent}%"),
            &baseline,
        )
        .stamped(format!("{kind:?}"));
        let rrc = run_with_ossm(
            &store,
            min_support,
            &OssmBuilder::new(n_user)
                .strategy(Strategy::RandomRc { n_mid })
                .bubble(bubble_threshold, percent)
                .seed(seed),
            format!("Random-RC bubble {percent}%"),
            &baseline,
        )
        .stamped(format!("{kind:?}"));
        time_table.row([
            format!("{percent}%"),
            fmt_duration(rg.segmentation_time),
            fmt_duration(rrc.segmentation_time),
        ]);
        speed_table.row([
            format!("{percent}%"),
            fmt_speedup(rg.speedup),
            fmt_speedup(rrc.speedup),
            rg.c2_counted.to_string(),
            rrc.c2_counted.to_string(),
        ]);
        rows.extend([rg, rrc]);
    }
    let _ = writeln!(out, "### (a) Segmentation cost vs bubble-list size\n");
    out.push_str(&time_table.to_markdown());
    let _ = writeln!(out, "\n### (b) Speedup vs bubble-list size\n");
    out.push_str(&speed_table.to_markdown());
    Section {
        markdown: out,
        rows,
    }
}

/// Section 7's table: DHP with and without the OSSM (runtime and number of
/// candidate 2-itemsets), OSSM built by Random-RC with 40 segments and the
/// DHP hash table at 32 768 buckets.
pub fn sec7(opts: &Options) -> Section {
    // Defaults follow the paper's Nokia emphasis: the preliminary table's
    // small |C2| (292 -> 142) matches the ~5000-transaction, ~200-alarm
    // data set, not the 1000-item regular-synthetic one. Our alarm
    // workload reproduces that regime; pass --workload=regular to see the
    // composition on Quest data.
    // Bucket count: DHP's pruning power is set by the ratio of hashed
    // pairs to buckets, and the paper does not give its hash function. At
    // the paper's 32 768 buckets our multiplicative hash makes the table
    // nearly collision-free on this data, leaving the OSSM nothing to add;
    // 2048 buckets put the table in the collision-limited regime the
    // paper's |C2| numbers (292 -> 142) imply. --buckets restores any value.
    let pages: usize = opts.get("pages", 50);
    let items: usize = opts.get("items", 200);
    let minsup: f64 = opts.get("minsup", 0.02);
    let n_user: usize = opts.get("nuser", 40);
    let buckets: usize = opts.get("buckets", 2048);
    let seed: u64 = opts.get("seed", 1);

    let kind: WorkloadKind = opts.get("workload", WorkloadKind::Alarm);
    let workload = Workload::new(kind, pages, items);
    let store = workload.store();
    let min_support = store.dataset().absolute_threshold(minsup);

    let (ossm, report) = OssmBuilder::new(n_user)
        .strategy(Strategy::RandomRc {
            n_mid: (pages / 2).clamp(n_user, 200),
        })
        .seed(seed)
        .build(&store);

    let dhp = Dhp::new(buckets);
    let (t_plain, plain) = timed(|| dhp.mine(store.dataset(), min_support));
    let (t_ossm, with_ossm) =
        timed(|| dhp.mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm)));
    assert_eq!(
        plain.patterns, with_ossm.patterns,
        "OSSM must not change DHP's result"
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Section 7 — DHP with and without the OSSM\n\n\
         {kind:?} workload, p = {pages}, m = {items}, minsup = {minsup}; \
         DHP buckets = {buckets}; OSSM = {} with {n_user} segments \
         (built in {})\n",
        report.algorithm,
        fmt_duration(report.segmentation_time)
    );
    let mut table = Table::new(["Algorithm", "Runtime", "No. of C2", "Speedup vs DHP"]);
    table.row([
        "DHP without the OSSM".to_owned(),
        fmt_duration(t_plain),
        plain.metrics.candidate_2_itemsets_counted().to_string(),
        "1.00x".to_owned(),
    ]);
    table.row([
        "DHP with the OSSM".to_owned(),
        fmt_duration(t_ossm),
        with_ossm.metrics.candidate_2_itemsets_counted().to_string(),
        fmt_speedup(ratio(t_plain, t_ossm)),
    ]);
    out.push_str(&table.to_markdown());
    // DHP timing doesn't flow through SpeedupRow; the markdown is the record.
    Section {
        markdown: out,
        rows: Vec::new(),
    }
}

/// Runs every experiment (figures 4–6, the section-7 table) in
/// EXPERIMENTS.md order against one option set, resetting the
/// instrumentation registry first so the snapshot describes exactly this
/// run. Returns the stitched markdown report and all measured rows.
pub fn run_all(opts: &Options) -> (String, Vec<SpeedupRow>) {
    ossm_obs::registry().reset();
    let mut markdown = String::from("# OSSM reproduction — experiment report\n\n");
    let mut rows = Vec::new();
    for section in [fig4(opts), fig5(opts), fig6(opts), sec7(opts)] {
        markdown.push_str(&section.markdown);
        markdown.push('\n');
        rows.extend(section.rows);
    }
    markdown.push_str(
        "# Coverage sweep — extra regression baselines\n\n\
         Figure-4 reruns that widen the `BENCH_obs.json` key set beyond the\n\
         paper's defaults: the dense workload (bitmap-counting regime) and a\n\
         second segmentation seed on the default workload.\n\n",
    );
    // Dense baskets are ~2.5× longer, so the same relative threshold
    // admits far more candidates; raise it to keep the sweep smoke-fast.
    let mut dense = opts.clone();
    dense.set("workload", "dense");
    dense.set("minsup", "0.2");
    let section = fig4(&dense);
    markdown.push_str(&section.markdown);
    markdown.push('\n');
    rows.extend(section.rows);
    // The flattened speedup key is `speedup[{workload}/{strategy}/n{N}]`,
    // which does not include the seed — restamp the workload so the
    // reseeded rows don't collide with (and silently overwrite) the
    // first run's metrics.
    let mut reseeded = opts.clone();
    reseeded.set("seed", "2");
    let mut section = fig4(&reseeded);
    for row in &mut section.rows {
        row.workload.push_str("+seed2");
    }
    markdown.push_str(&section.markdown);
    markdown.push('\n');
    rows.extend(section.rows);
    (markdown, rows)
}

/// The `BENCH_obs.json` body for a finished run: one self-describing JSON
/// line per speedup row, then the current instrumentation snapshot
/// (counters, phase timings, histograms). This is the format
/// `regress::parse_obs_lines` consumes.
pub fn obs_json_body(rows: &[SpeedupRow]) -> String {
    let mut body = String::new();
    for row in rows {
        body.push_str(&row.to_json_row());
        body.push('\n');
    }
    body.push_str(
        &ossm_obs::Reporter::new(ossm_obs::StatsFormat::Json)
            .render(&ossm_obs::registry().snapshot()),
    );
    body
}

/// Fills measured-result placeholders in a document, idempotently.
///
/// Each `(tag, content)` pair replaces either the bare `<!-- TAG -->`
/// marker or a previously filled `<!-- TAG --> … <!-- /TAG -->` block with
/// a fresh block, so re-running `--write-experiments` updates results in
/// place instead of stacking them. Errors if a tag has no marker.
pub fn patch_placeholders(doc: &str, sections: &[(&str, &str)]) -> Result<String, String> {
    let mut out = doc.to_owned();
    for (tag, content) in sections {
        let open = format!("<!-- {tag} -->");
        let close = format!("<!-- /{tag} -->");
        let start = out
            .find(&open)
            .ok_or_else(|| format!("placeholder {open} not found in document"))?;
        let after_open = start + open.len();
        let end = match out[after_open..].find(&close) {
            Some(rel) => after_open + rel + close.len(),
            None => after_open,
        };
        let block = format!("{open}\n\n{}\n\n{close}", content.trim());
        out.replace_range(start..end, &block);
    }
    Ok(out)
}

fn strategy_label(s: Strategy) -> String {
    match s {
        Strategy::Random => "Random".into(),
        Strategy::Rc => "RC".into(),
        Strategy::Greedy => "Greedy".into(),
        Strategy::RandomRc { .. } => "Random-RC".into(),
        Strategy::RandomGreedy { .. } => "Random-Greedy".into(),
    }
}

/// Smoke-scale options used by the tests below and by `all-experiments
/// --smoke`.
pub fn smoke_options() -> Options {
    Options::parse(
        [
            "--pages=12",
            "--items=60",
            "--hybrid-pages=30",
            "--nmid=16",
            "--nuser=6",
        ]
        .iter()
        .map(|s| (*s).to_owned()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_smoke() {
        let section = fig4(&smoke_options());
        assert!(section.markdown.contains("Figure 4"));
        assert!(section.markdown.contains("Speedup"));
        assert!(section.markdown.contains("| n_user"));
        assert!(!section.rows.is_empty());
        for row in &section.rows {
            assert_eq!(row.workload, "Regular", "rows must be stamped");
            assert!(row.to_json_row().contains("\"workload\":\"Regular\""));
        }
    }

    #[test]
    fn fig5_smoke() {
        let section = fig5(&smoke_options());
        assert!(section.markdown.contains("Pure strategies"));
        assert!(section.markdown.contains("Hybrid strategies"));
        assert!(section.markdown.contains("Random-Greedy"));
        assert_eq!(section.rows.len(), 5, "3 pure + 2 hybrid strategies");
    }

    #[test]
    fn fig6_smoke() {
        let section = fig6(&smoke_options());
        assert!(section.markdown.contains("bubble"));
        assert!(section.markdown.contains("60%"));
        assert_eq!(section.rows.len(), 14, "2 strategies × 7 bubble sizes");
    }

    #[test]
    fn sec7_smoke() {
        let section = sec7(&smoke_options());
        assert!(section.markdown.contains("DHP with the OSSM"));
        assert!(section.markdown.contains("No. of C2"));
    }

    #[test]
    fn obs_json_body_round_trips_through_the_regress_parser() {
        let section = fig4(&smoke_options());
        let body = obs_json_body(&section.rows);
        let parsed = crate::regress::parse_obs_lines(&body).expect("body parses");
        assert!(
            parsed
                .metrics
                .keys()
                .any(|k| k.starts_with("speedup[Regular/Greedy/")),
            "speedup rows flatten: {:?}",
            parsed.metrics.keys().take(5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn patch_placeholders_fills_markers_idempotently() {
        let doc = "intro\n\n<!-- FIG4_REGULAR -->\n\nmiddle\n\n<!-- FIG5 -->\n\nend\n";
        let once = patch_placeholders(doc, &[("FIG4_REGULAR", "|a|b|"), ("FIG5", "five")])
            .expect("both tags present");
        assert!(once.contains("<!-- FIG4_REGULAR -->\n\n|a|b|\n\n<!-- /FIG4_REGULAR -->"));
        assert!(once.contains("<!-- FIG5 -->\n\nfive\n\n<!-- /FIG5 -->"));
        assert!(once.contains("intro") && once.contains("middle") && once.contains("end"));
        // Re-patching replaces the filled block instead of nesting it.
        let twice = patch_placeholders(&once, &[("FIG4_REGULAR", "updated")]).unwrap();
        assert!(twice.contains("<!-- FIG4_REGULAR -->\n\nupdated\n\n<!-- /FIG4_REGULAR -->"));
        assert!(!twice.contains("|a|b|"));
        assert_eq!(
            twice.matches("FIG4_REGULAR").count(),
            2,
            "one open, one close"
        );
        // Unfilled tags stay untouched; unknown tags error.
        assert!(twice.contains("<!-- FIG5 -->\n\nfive"));
        assert!(patch_placeholders(doc, &[("NOPE", "x")]).is_err());
    }

    #[test]
    fn run_all_resets_the_registry_before_measuring() {
        ossm_obs::registry().reset();
        let (markdown, rows) = run_all(&smoke_options());
        for heading in ["Figure 4", "Figure 5", "Figure 6", "Section 7"] {
            assert!(markdown.contains(heading), "missing {heading}");
        }
        assert!(!rows.is_empty());
        assert!(
            rows.iter().any(|r| r.workload == "Dense"),
            "coverage sweep adds dense-workload rows"
        );
        assert!(
            rows.iter().any(|r| r.workload == "Regular+seed2"),
            "coverage sweep adds reseeded rows under a distinct key"
        );
        let body = obs_json_body(&rows);
        if ossm_obs::ENABLED {
            assert!(
                body.contains("core.seg.greedy.merges"),
                "snapshot follows the rows"
            );
        }
    }
}
