//! Segmentation-algorithm cost comparison: Random vs RC vs Greedy vs the
//! hybrids, with and without the bubble list — the compile-time side of
//! the paper's Figure 5/6 trade-off, at microbenchmark scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ossm_bench::workloads::Workload;
use ossm_core::seg::{hybrid::random_greedy, hybrid::random_rc, Greedy, Random, RandomClosest};
use ossm_core::{Aggregate, BubbleList, LossCalculator, SegmentationAlgorithm};

fn bench_segmentation(c: &mut Criterion) {
    let store = Workload::regular(60, 300).store();
    let inputs = Aggregate::from_pages(&store);
    let n_user = 10;

    let mut group = c.benchmark_group("segment_60_pages");
    group.sample_size(10);

    let calc = LossCalculator::all_items();
    let algos: Vec<(&str, Box<dyn SegmentationAlgorithm>)> = vec![
        ("random", Box::new(Random::new(1))),
        ("rc", Box::new(RandomClosest::new(calc.clone(), 1))),
        ("greedy", Box::new(Greedy::new(calc.clone()))),
        ("random_rc", Box::new(random_rc(calc.clone(), 30, 1))),
        (
            "random_greedy",
            Box::new(random_greedy(calc.clone(), 30, 1)),
        ),
    ];
    for (name, algo) in &algos {
        group.bench_with_input(BenchmarkId::new(name, "full_loss"), algo, |bench, a| {
            bench.iter(|| black_box(a.segment(black_box(&inputs), n_user)));
        });
    }

    // Same algorithms with a 10 % bubble list.
    let threshold = store.dataset().absolute_threshold(0.01);
    let bubble = BubbleList::from_store(&store, threshold, store.num_items() / 10);
    let scoped = bubble.loss_calculator();
    let bubbled: Vec<(&str, Box<dyn SegmentationAlgorithm>)> = vec![
        ("rc", Box::new(RandomClosest::new(scoped.clone(), 1))),
        ("greedy", Box::new(Greedy::new(scoped.clone()))),
        (
            "random_greedy",
            Box::new(random_greedy(scoped.clone(), 30, 1)),
        ),
    ];
    for (name, algo) in &bubbled {
        group.bench_with_input(BenchmarkId::new(name, "bubble_10pct"), algo, |bench, a| {
            bench.iter(|| black_box(a.segment(black_box(&inputs), n_user)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_segmentation);
criterion_main!(benches);
