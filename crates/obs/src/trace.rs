//! Hierarchical span traces and their exporters.
//!
//! A [`Trace`] is the flat list of completed [`SpanEvent`]s collected
//! between `trace_begin()` and `trace_take()`. Hierarchy lives in the
//! parent links (assigned from a thread-local span stack at span creation),
//! so the flat list reconstructs into a tree per thread. Two export
//! formats cover the standard tooling:
//!
//! * [`Trace::to_chrome_json`] — Chrome trace-event JSON (an array of
//!   complete `"ph":"X"` events), loadable in `chrome://tracing` and
//!   [Perfetto](https://ui.perfetto.dev);
//! * [`Trace::to_folded`] — folded-stack text (`root;child;leaf <nanos>`),
//!   the input format of Brendan Gregg's `flamegraph.pl` and of
//!   [speedscope](https://speedscope.app). Values are **self-time
//!   nanoseconds**, so the values of all lines sum to the total duration
//!   of the root spans.
//!
//! This module is compiled in both feature configurations: with
//! instrumentation disabled a [`Trace`] is simply always empty, and both
//! exporters render the corresponding empty document.

use std::fmt::Write as _;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (dotted, e.g. `mining.apriori.count`).
    pub name: String,
    /// Small dense id of the recording thread (not the OS tid).
    pub thread: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_nanos: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_nanos: u64,
    /// Attached key/value pairs (explicit attachments and counter deltas).
    pub args: Vec<(String, u64)>,
}

/// A collected span trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Completed spans, in drop order (children precede parents).
    pub events: Vec<SpanEvent>,
}

/// Trace export format, parsed from `--trace[=chrome|folded]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// Chrome trace-event JSON (`chrome://tracing`, Perfetto).
    #[default]
    Chrome,
    /// Folded stacks (flamegraph.pl / speedscope input).
    Folded,
}

impl TraceFormat {
    /// Conventional file name for this format (`trace.json` /
    /// `trace.folded`), used when no output path is given.
    pub fn default_file_name(self) -> &'static str {
        match self {
            TraceFormat::Chrome => "trace.json",
            TraceFormat::Folded => "trace.folded",
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceFormat::Chrome => "chrome",
            TraceFormat::Folded => "folded",
        })
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "chrome" => Ok(TraceFormat::Chrome),
            "folded" => Ok(TraceFormat::Folded),
            other => Err(format!(
                "unknown trace format {other:?} (expected chrome or folded)"
            )),
        }
    }
}

impl Trace {
    /// Number of spans.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no spans were recorded (or instrumentation is compiled
    /// out).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total duration of the root spans — spans with no parent, plus spans
    /// whose parent never completed inside the trace window. This is the
    /// quantity the folded export's values sum to.
    pub fn root_duration_nanos(&self) -> u64 {
        let ids: std::collections::HashSet<u64> = self.events.iter().map(|e| e.id).collect();
        self.events
            .iter()
            .filter(|e| e.parent.map_or(true, |p| !ids.contains(&p)))
            .map(|e| e.duration_nanos)
            .sum()
    }

    /// Renders the trace in `format`.
    pub fn render(&self, format: TraceFormat) -> String {
        match format {
            TraceFormat::Chrome => self.to_chrome_json(),
            TraceFormat::Folded => self.to_folded(),
        }
    }

    /// Chrome trace-event JSON: one complete (`"ph":"X"`) event per span,
    /// timestamps and durations in fractional microseconds, attachments in
    /// `args`. The whole document is a JSON array, which both
    /// `chrome://tracing` and Perfetto accept.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{",
                escape(&e.name),
                e.thread,
                e.start_nanos / 1_000,
                e.start_nanos % 1_000,
                e.duration_nanos / 1_000,
                e.duration_nanos % 1_000,
            );
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", escape(k));
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }

    /// Folded stacks: `root;child;leaf <self-nanos>` per line, identical
    /// stacks aggregated, lines sorted for determinism. Self time is a
    /// span's duration minus its children's durations (saturating, so
    /// clock granularity can only under-report), which makes the values of
    /// all lines sum to [`Self::root_duration_nanos`] — a flamegraph of
    /// the output has the same total width as the traced run.
    pub fn to_folded(&self) -> String {
        use std::collections::{BTreeMap, HashMap};
        let by_id: HashMap<u64, &SpanEvent> = self.events.iter().map(|e| (e.id, e)).collect();
        let mut child_nanos: HashMap<u64, u64> = HashMap::new();
        for e in &self.events {
            if let Some(p) = e.parent {
                if by_id.contains_key(&p) {
                    *child_nanos.entry(p).or_insert(0) += e.duration_nanos;
                }
            }
        }
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for e in &self.events {
            let self_nanos = e
                .duration_nanos
                .saturating_sub(child_nanos.get(&e.id).copied().unwrap_or(0));
            // Build the frame path by walking the parent chain.
            let mut frames = vec![e.name.as_str()];
            let mut cur = e.parent;
            while let Some(p) = cur {
                match by_id.get(&p) {
                    Some(parent) => {
                        frames.push(parent.name.as_str());
                        cur = parent.parent;
                    }
                    None => break,
                }
            }
            frames.reverse();
            *stacks.entry(frames.join(";")).or_insert(0) += self_nanos;
        }
        let mut out = String::new();
        for (stack, nanos) in stacks {
            let _ = writeln!(out, "{stack} {nanos}");
        }
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root (10µs) ├─ child_a (4µs) ─ leaf (1µs)
    ///              └─ child_b (3µs)       … plus a second-thread root (2µs).
    fn sample() -> Trace {
        let ev = |id, parent, name: &str, thread, start, dur| SpanEvent {
            id,
            parent,
            name: name.into(),
            thread,
            start_nanos: start,
            duration_nanos: dur,
            args: Vec::new(),
        };
        Trace {
            events: vec![
                ev(3, Some(2), "leaf", 1, 1_500, 1_000),
                ev(2, Some(1), "child_a", 1, 1_000, 4_000),
                ev(4, Some(1), "child_b", 1, 6_000, 3_000),
                ev(1, None, "root", 1, 0, 10_000),
                ev(5, None, "other", 2, 0, 2_000),
            ],
        }
    }

    #[test]
    fn folded_values_sum_to_root_duration() {
        let t = sample();
        let folded = t.to_folded();
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, t.root_duration_nanos());
        assert_eq!(total, 12_000, "10µs root + 2µs second-thread root");
    }

    #[test]
    fn folded_paths_follow_parent_links() {
        let folded = sample().to_folded();
        assert!(folded.contains("root;child_a;leaf 1000\n"), "{folded}");
        assert!(folded.contains("root;child_a 3000\n"), "4µs − 1µs leaf");
        assert!(folded.contains("root;child_b 3000\n"), "{folded}");
        assert!(folded.contains("root 3000\n"), "10µs − 4µs − 3µs");
        assert!(folded.contains("other 2000\n"), "{folded}");
    }

    #[test]
    fn folded_aggregates_identical_stacks() {
        let mut t = sample();
        // A second leaf under child_a with the same name.
        t.events.push(SpanEvent {
            id: 6,
            parent: Some(2),
            name: "leaf".into(),
            thread: 1,
            start_nanos: 3_000,
            duration_nanos: 500,
            args: Vec::new(),
        });
        let folded = t.to_folded();
        assert!(folded.contains("root;child_a;leaf 1500\n"), "{folded}");
        assert_eq!(
            folded.matches("root;child_a;leaf").count(),
            1,
            "identical stacks must merge: {folded}"
        );
    }

    #[test]
    fn orphaned_spans_become_roots() {
        // A span whose parent id is not in the trace (parent outlived the
        // trace window) roots its own stack and counts toward the total.
        let t = Trace {
            events: vec![SpanEvent {
                id: 9,
                parent: Some(1234),
                name: "orphan".into(),
                thread: 1,
                start_nanos: 0,
                duration_nanos: 7,
                args: Vec::new(),
            }],
        };
        assert_eq!(t.root_duration_nanos(), 7);
        assert_eq!(t.to_folded(), "orphan 7\n");
    }

    #[test]
    fn chrome_json_is_an_array_of_complete_events() {
        let mut t = sample();
        t.events[0].args = vec![("page".into(), 3)];
        let json = crate::json::parse(&t.to_chrome_json()).expect("valid JSON");
        let events = json.as_array().expect("top-level array");
        assert_eq!(events.len(), 5);
        for e in events {
            assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
            assert!(e.get("name").is_some());
            assert!(e
                .get("ts")
                .and_then(super::super::json::Json::as_f64)
                .is_some());
            assert!(e
                .get("dur")
                .and_then(super::super::json::Json::as_f64)
                .is_some());
        }
        // The leaf's attachment survives as a Chrome `args` entry.
        let leaf = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("leaf"))
            .expect("leaf event");
        let page = leaf.get("args").and_then(|a| a.get("page"));
        assert_eq!(page.and_then(super::super::json::Json::as_f64), Some(3.0));
    }

    #[test]
    fn chrome_timestamps_are_microseconds() {
        let t = sample();
        let json = crate::json::parse(&t.to_chrome_json()).expect("valid JSON");
        let root = json
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("root"))
            .expect("root event");
        assert_eq!(
            root.get("dur").and_then(super::super::json::Json::as_f64),
            Some(10.0)
        );
    }

    #[test]
    fn golden_chrome_event() {
        let t = Trace {
            events: vec![SpanEvent {
                id: 1,
                parent: None,
                name: "root".into(),
                thread: 1,
                start_nanos: 1_234,
                duration_nanos: 10_000,
                args: vec![("page".into(), 3)],
            }],
        };
        assert_eq!(
            t.to_chrome_json(),
            "[\n{\"name\":\"root\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
             \"ts\":1.234,\"dur\":10.000,\"args\":{\"page\":3}}\n]\n"
        );
    }

    #[test]
    fn golden_folded_document() {
        assert_eq!(
            sample().to_folded(),
            "other 2000\n\
             root 3000\n\
             root;child_a 3000\n\
             root;child_a;leaf 1000\n\
             root;child_b 3000\n"
        );
    }

    #[test]
    fn empty_trace_renders_empty_documents() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.root_duration_nanos(), 0);
        assert_eq!(t.to_folded(), "");
        let json = crate::json::parse(&t.to_chrome_json()).expect("valid JSON");
        assert_eq!(json.as_array().map(<[_]>::len), Some(0));
    }

    #[test]
    fn trace_format_parses_and_names_files() {
        assert_eq!(
            "chrome".parse::<TraceFormat>().unwrap(),
            TraceFormat::Chrome
        );
        assert_eq!(
            "folded".parse::<TraceFormat>().unwrap(),
            TraceFormat::Folded
        );
        assert!("svg".parse::<TraceFormat>().is_err());
        assert_eq!(TraceFormat::Chrome.default_file_name(), "trace.json");
        assert_eq!(TraceFormat::Folded.default_file_name(), "trace.folded");
    }

    #[test]
    fn names_are_escaped_in_chrome_json() {
        let t = Trace {
            events: vec![SpanEvent {
                id: 1,
                parent: None,
                name: "weird\"name".into(),
                thread: 1,
                start_nanos: 0,
                duration_nanos: 1,
                args: Vec::new(),
            }],
        };
        let text = t.to_chrome_json();
        assert!(text.contains("weird\\\"name"), "{text}");
        assert!(crate::json::parse(&text).is_ok());
    }
}
