//! Property tests for Section 4: segment minimization (Theorem 1) and its
//! page version (Corollary 1).
//!
//! The central claims: grouping transactions by configuration yields an
//! OSSM whose equation-(1) bound is *exact* for every itemset; the number
//! of groups never exceeds `min(|T|, 2^m − m)`; and the same holds at page
//! granularity relative to the page-level map.

mod testkit;

use testkit::{case_rng, mask_itemset, random_dataset};

use ossm_core::minimize::{
    exactness_violations, minimize_page_segments, minimize_segments, relative_violations,
};
use ossm_core::{theorem1_bound, Ossm, Segmentation};
use ossm_data::{Dataset, Itemset, PageStore};

const CASES: u64 = 64;

/// A random small dataset: up to 40 transactions over `m ≤ 8` items.
fn dataset(case: u64, salt: u64) -> Dataset {
    random_dataset(&mut case_rng(salt, case), 2, 8, 1, 40, false)
}

#[test]
fn minimized_ossm_is_exact_for_every_itemset() {
    for case in 0..CASES {
        let d = dataset(case, 0xE0E1);
        let min = minimize_segments(&d);
        assert!(
            exactness_violations(&min.ossm, &d).is_empty(),
            "case {case}"
        );
    }
}

#[test]
fn segment_count_respects_theorem_1() {
    for case in 0..CASES {
        let d = dataset(case, 0xE0E2);
        let min = minimize_segments(&d);
        assert!(
            min.num_segments as u64 <= theorem1_bound(d.len() as u64, d.num_items()),
            "case {case}: {} segments exceeds min({}, 2^{} - {})",
            min.num_segments,
            d.len(),
            d.num_items(),
            d.num_items()
        );
        // The assignment must be a valid dense segmentation.
        assert!(min.assignment.iter().all(|&s| s < min.num_segments));
        for s in 0..min.num_segments {
            assert!(
                min.assignment.contains(&s),
                "case {case}: segment {s} is empty"
            );
        }
    }
}

#[test]
fn page_minimization_loses_nothing_relative_to_pages() {
    for case in 0..CASES {
        let d = dataset(case, 0xE0E3);
        for pages in [1usize, 3, 7] {
            let store = PageStore::with_page_count(d.clone(), pages);
            let p = store.num_pages();
            let fine = Ossm::from_pages(&store, &Segmentation::identity(p));
            let seg = minimize_page_segments(&store);
            let coarse = Ossm::from_pages(&store, &seg);
            assert!(seg.num_segments() <= p);
            assert!(
                relative_violations(&coarse, &fine).is_empty(),
                "case {case}: page grouping changed a bound at p = {pages}"
            );
        }
    }
}

#[test]
fn exact_ossm_filters_apriori_to_its_frequent_sets() {
    for case in 0..CASES {
        // With an exact OSSM every counted candidate at level ≥ 2 is truly
        // frequent: the structure subsumes the counting for pruning.
        let d = dataset(case, 0xE0E4);
        let min = minimize_segments(&d);
        let filter = ossm_mining::OssmFilter::new(&min.ossm);
        let out = ossm_mining::Apriori::new().mine_filtered(&d, 2, &filter);
        for level in &out.metrics.levels {
            if level.level >= 2 {
                assert_eq!(
                    level.counted, level.frequent,
                    "case {case}: level {}",
                    level.level
                );
            }
        }
    }
}

/// Deterministic regression: duplicate transactions always collapse into
/// one segment per distinct configuration.
#[test]
fn duplicates_collapse() {
    let t = Itemset::new([0, 2]);
    let d = Dataset::new(3, vec![t.clone(), t.clone(), t.clone(), t]);
    let min = minimize_segments(&d);
    assert_eq!(min.num_segments, 1);
    assert!(exactness_violations(&min.ossm, &d).is_empty());
}

/// Deterministic regression: the worst case realizes the 2^m − m bound.
#[test]
fn all_configurations_realized_hits_the_bound() {
    let m = 4;
    // One transaction per non-empty subset of 4 items.
    let transactions: Vec<Itemset> = (1u32..(1 << m)).map(|mask| mask_itemset(m, mask)).collect();
    let d = Dataset::new(m, transactions);
    let min = minimize_segments(&d);
    assert_eq!(min.num_segments as u64, theorem1_bound(d.len() as u64, m));
    assert_eq!(
        min.num_segments,
        (1 << m) - m,
        "2^4 − 4 = 12 configurations"
    );
    assert!(exactness_violations(&min.ossm, &d).is_empty());
}
