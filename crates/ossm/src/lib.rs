//! # ossm — facade crate for the OSSM reproduction
//!
//! One `use ossm::prelude::*` away from the whole system: the transaction
//! substrate ([`ossm_data`]), the optimized segment support map
//! ([`ossm_core`]), and the miners it accelerates ([`ossm_mining`]).
//!
//! Reproduces *Leung, Ng, Mannila: "OSSM: A Segmentation Approach to
//! Optimize Frequency Counting" (ICDE 2002)*. See the repository README for
//! the architecture tour and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! ```
//! use ossm::prelude::*;
//!
//! // Generate a workload, page it, build an OSSM, mine with and without.
//! let data = QuestConfig::small().generate();
//! let min_support = data.absolute_threshold(0.02);
//! let store = PageStore::with_page_count(data, 50);
//! let (ossm, report) = OssmBuilder::new(10).strategy(Strategy::Greedy).build(&store);
//!
//! let without = Apriori::new().mine(store.dataset(), min_support);
//! let with = Apriori::new().mine_filtered(store.dataset(), min_support, &OssmFilter::new(&ossm));
//! assert_eq!(without.patterns, with.patterns);
//! assert!(with.metrics.total_counted() <= without.metrics.total_counted());
//! assert!(report.memory_bytes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ossm_core as core;
pub use ossm_data as data;
pub use ossm_mining as mining;

/// The most commonly used types across all three crates.
pub mod prelude {
    pub use ossm_core::{
        minimize_segments, recommend, theorem1_bound, Aggregate, ApplicationProfile, BubbleList,
        BuildReport, Configuration, GeneralizedOssm, IncrementalOssm, LossCalculator, Ossm,
        OssmBuilder, RecommendedStrategy, Segmentation, SegmentationAlgorithm, Strategy,
    };
    pub use ossm_data::{
        disk::{DiskStore, DiskStoreWriter},
        gen::{AlarmConfig, QuestConfig, SkewedConfig},
        sequence::{Event, EventSequence},
        Dataset, ItemId, Itemset, PageStore,
    };
    pub use ossm_mining::{
        Apriori, CandidateFilter, Charm, ConstrainedApriori, Constraint, CorrelationMiner,
        CountingBackend, DepthProject, Dhp, Eclat, FpGrowth, FrequentPatterns, GenMax,
        MiningOutcome, NoFilter, OssmFilter, Partition, SequenceDb, SequenceMiner, SequencePattern,
        SerialEpisode, SerialEpisodeMiner, StreamingApriori, WindowLog,
    };
}
