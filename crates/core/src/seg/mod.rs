//! Heuristic algorithms for the constrained segmentation problem
//! (Section 5.2 of the paper).
//!
//! Each algorithm consumes the `p` initial aggregates (pages, or the output
//! of a previous stage) and produces a [`Segmentation`] with `n_user`
//! segments that tries to minimize the total accuracy loss of
//! equation (2):
//!
//! | Algorithm | Figure | Complexity (paper) | Module |
//! |---|---|---|---|
//! | Greedy    | Fig. 2 | O(p²m² + p² log p) | [`greedy`] |
//! | RC        | Fig. 3 | O(p²m²)            | [`rc`] |
//! | Random    | —      | O(p)               | [`random`] |
//! | hybrids   | §5.4   | Random to `n_mid`, then RC/Greedy | [`hybrid`] |
//!
//! The `m²` factor is tamed two ways: the bubble list (Section 5.3,
//! [`crate::bubble`]) shrinks the item scope, and our sorted loss
//! evaluation ([`crate::loss`]) turns each `m²` into `m log m` outright.

use crate::segmentation::{Aggregate, Segmentation};

pub mod greedy;
pub mod hybrid;
pub mod optimal;
pub mod random;
pub mod rc;

pub use greedy::Greedy;
pub use hybrid::Hybrid;
pub use optimal::Optimal;
pub use random::Random;
pub use rc::RandomClosest;

/// A constrained-segmentation heuristic: partitions `inputs` into at most
/// `n_user` segments.
pub trait SegmentationAlgorithm {
    /// Short display name used in experiment tables ("Greedy", "RC", …).
    fn name(&self) -> String;

    /// Produces a segmentation with `min(n_user, inputs.len())` segments.
    ///
    /// # Panics
    /// Implementations panic if `n_user == 0` or `inputs` is empty.
    fn segment(&self, inputs: &[Aggregate], n_user: usize) -> Segmentation;
}

/// Shared argument validation for all algorithms.
pub(crate) fn validate(inputs: &[Aggregate], n_user: usize) {
    assert!(n_user > 0, "cannot segment into zero segments");
    assert!(!inputs.is_empty(), "cannot segment zero inputs");
}

/// When `n_user >= p` no merging is needed: the identity segmentation is
/// optimal (zero loss).
pub(crate) fn trivial(inputs: &[Aggregate], n_user: usize) -> Option<Segmentation> {
    (n_user >= inputs.len()).then(|| Segmentation::identity(inputs.len()))
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::loss::LossCalculator;

    /// Aggregates with two clearly distinct configurations; any sensible
    /// algorithm asked for two segments should separate them losslessly.
    pub fn two_config_inputs() -> Vec<Aggregate> {
        vec![
            Aggregate::new(vec![10, 5, 1], 10),
            Aggregate::new(vec![1, 5, 10], 10),
            Aggregate::new(vec![20, 10, 2], 20),
            Aggregate::new(vec![2, 10, 20], 20),
        ]
    }

    /// Checks an algorithm against shared contract properties.
    pub fn check_contract<A: SegmentationAlgorithm>(algo: &A) {
        let inputs = two_config_inputs();
        // Requesting more segments than inputs yields the identity.
        let id = algo.segment(&inputs, 100);
        assert_eq!(id.num_segments(), inputs.len());
        // Requesting one segment puts everything together.
        let one = algo.segment(&inputs, 1);
        assert_eq!(one.num_segments(), 1);
        assert_eq!(one.groups()[0].len(), inputs.len());
        // Exact request is honoured.
        for n in 1..=inputs.len() {
            let seg = algo.segment(&inputs, n);
            assert_eq!(seg.num_segments(), n, "requested {n}");
            assert_eq!(seg.num_inputs(), inputs.len());
        }
    }

    /// The loss of a segmentation produced by `algo` at `n_user = 2` on the
    /// two-configuration inputs. Zero means the algorithm found the
    /// lossless split.
    pub fn two_config_loss<A: SegmentationAlgorithm>(algo: &A) -> u64 {
        let inputs = two_config_inputs();
        let seg = algo.segment(&inputs, 2);
        LossCalculator::all_items().segmentation_loss(&inputs, &seg)
    }
}
