//! Point-in-time copies of the registry's state.
//!
//! Snapshots use `BTreeMap` so iteration order — and therefore rendered
//! reports — is deterministic for a given set of recorded metrics.

use std::collections::BTreeMap;

/// One histogram's state at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values (for computing the mean).
    pub sum: u64,
    /// `(bucket_lower_bound, count)` for every non-empty bucket, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest non-empty bucket's lower bound — a cheap "max is at least
    /// this" indicator.
    pub fn max_bucket_bound(&self) -> u64 {
        self.buckets.last().map_or(0, |&(lo, _)| lo)
    }
}

/// One gauge's state at snapshot time: the level it sits at now and the
/// highest level it reached since the last reset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Current level (bytes, entries, …).
    pub current: u64,
    /// Peak level since process start or the last registry reset.
    pub peak: u64,
}

/// One phase timer's accumulated state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Total wall-clock nanoseconds across all spans.
    pub nanos: u64,
    /// Number of spans recorded.
    pub calls: u64,
}

/// A deterministic point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter name → value. Static counters and dynamic scope counters
    /// share this namespace.
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → state.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Phase name → accumulated time.
    pub phases: BTreeMap<String, PhaseSnapshot>,
    /// Gauge name → current/peak level. Static gauges and the dynamic
    /// `mem.alloc.*` / `mem.rss` rows injected by allocation accounting
    /// share this namespace.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
}

impl Snapshot {
    /// True when nothing has been recorded (or instrumentation is
    /// compiled out).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.phases.is_empty()
            && self.gauges.is_empty()
    }

    /// Convenience lookup for tests and assertions.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Convenience lookup for tests and assertions.
    pub fn gauge(&self, name: &str) -> GaugeSnapshot {
        self.gauges.get(name).copied().unwrap_or_default()
    }
}
