//! DHP — the hash-based Apriori variant of Park, Chen, and Yu [15].
//!
//! During the first counting pass, every 2-subset of every transaction is
//! hashed into a bucket table; a pair can only be a candidate 2-itemset if
//! its bucket accumulated at least `min_support` hits. This attacks the
//! same bottleneck the OSSM does — the explosion of candidate 2-itemsets —
//! which is why Section 7 of the paper composes the two: the OSSM filters
//! the pairs *before* the hash check would have admitted them, and the
//! paper's preliminary table shows |C2| roughly halving.
//!
//! DHP also trims the database between levels: items that appear in no
//! frequent `k`-itemset cannot appear in a frequent `(k+1)`-itemset, and
//! transactions with fewer than `k+1` surviving items cannot support one.
//! Both reductions are exact, so DHP's output always equals Apriori's.

use std::collections::HashSet;
use std::time::Instant;

use ossm_data::{Dataset, ItemId, Itemset};

use crate::apriori::{generate_candidates, MiningOutcome};
use crate::filter::{CandidateFilter, NoFilter};
use crate::metrics::{LevelMetrics, MiningMetrics};
use crate::obs;
use crate::support::{count_with, CountingBackend, FrequentPatterns};

/// DHP configuration.
#[derive(Clone, Copy, Debug)]
pub struct Dhp {
    /// Number of hash buckets for the pair table (the paper's Section 7
    /// experiment uses 32 768).
    pub num_buckets: usize,
    /// Counting back-end for levels ≥ 2.
    pub backend: CountingBackend,
    /// Whether to trim items/transactions between levels.
    pub trimming: bool,
}

impl Default for Dhp {
    fn default() -> Self {
        Dhp {
            num_buckets: 32_768,
            backend: CountingBackend::LinearScan,
            trimming: true,
        }
    }
}

#[inline]
fn pair_bucket(a: ItemId, b: ItemId, num_buckets: usize) -> usize {
    // The multiplicative pair hash of the DHP paper's spirit; exact choice
    // only affects collision rates, not correctness.
    (a.index()
        .wrapping_mul(2_654_435_761)
        .wrapping_add(b.index()))
        % num_buckets
}

impl Dhp {
    /// DHP with `num_buckets` hash buckets.
    ///
    /// # Panics
    /// Panics if `num_buckets == 0`.
    pub fn new(num_buckets: usize) -> Self {
        assert!(num_buckets > 0, "need at least one hash bucket");
        Dhp {
            num_buckets,
            ..Dhp::default()
        }
    }

    /// Mines without a candidate filter.
    pub fn mine(&self, dataset: &Dataset, min_support: u64) -> MiningOutcome {
        self.mine_filtered(dataset, min_support, &NoFilter)
    }

    /// Mines with a candidate filter (the OSSM) applied to every candidate
    /// the hash table admits — "DHP with the OSSM" of Section 7.
    ///
    /// Metrics note: at level 2, `generated` counts the pairs admitted by
    /// the bucket table (the paper's `|C2|` before OSSM filtering),
    /// `filtered_out` the ones the filter then removed.
    ///
    /// # Panics
    /// Panics if `min_support == 0`.
    pub fn mine_filtered(
        &self,
        dataset: &Dataset,
        min_support: u64,
        filter: &dyn CandidateFilter,
    ) -> MiningOutcome {
        assert!(min_support > 0, "support threshold must be at least 1");
        let _mine_span = ossm_obs::span("mining.dhp");
        let start = Instant::now();
        let mut patterns = FrequentPatterns::new();
        let mut metrics = MiningMetrics::default();
        let m = dataset.num_items();

        // Pass 1: singleton counts + pair bucket counts in one scan.
        let pass1_span = ossm_obs::span("mining.dhp.pass1");
        let mut singles = vec![0u64; m];
        let mut buckets = vec![0u64; self.num_buckets];
        for t in dataset.transactions() {
            let items = t.items();
            for (i, &a) in items.iter().enumerate() {
                singles[a.index()] += 1;
                for &b in &items[i + 1..] {
                    buckets[pair_bucket(a, b, self.num_buckets)] += 1;
                }
            }
        }
        let mut l1: Vec<ItemId> = Vec::new();
        for i in 0..m as u32 {
            let item = ItemId(i);
            if singles[item.index()] >= min_support {
                l1.push(item);
                patterns.insert(Itemset::singleton(item), singles[item.index()]);
            }
        }
        let level1 = LevelMetrics {
            level: 1,
            generated: m as u64,
            filtered_out: 0,
            counted: m as u64,
            frequent: l1.len() as u64,
        };
        obs::record_level("dhp", &level1);
        metrics.push_level(level1);
        drop(pass1_span);

        // Level 2: the hash table admits a pair only if its bucket count
        // reaches the threshold; the filter (OSSM) then prunes further.
        let _level2_span = ossm_obs::span("mining.dhp.level2");
        let admitted: Vec<Itemset> = {
            let _s = ossm_obs::span("mining.dhp.hash_admit");
            let mut admitted = Vec::new();
            for (i, &a) in l1.iter().enumerate() {
                for &b in &l1[i + 1..] {
                    if buckets[pair_bucket(a, b, self.num_buckets)] >= min_support {
                        admitted.push(Itemset::from_sorted(vec![a, b]));
                    }
                }
            }
            admitted
        };
        let mut level2 = LevelMetrics {
            level: 2,
            generated: admitted.len() as u64,
            ..Default::default()
        };
        let candidates: Vec<Itemset> = {
            let _s = ossm_obs::span("mining.dhp.prune");
            admitted
                .into_iter()
                .filter(|c| filter.may_be_frequent(c, min_support))
                .collect()
        };
        level2.filtered_out = level2.generated - candidates.len() as u64;
        level2.counted = candidates.len() as u64;

        // Working copy of the data for trimming between levels.
        let mut work: Vec<Itemset> = dataset.transactions().to_vec();
        let counts = {
            let mut s = ossm_obs::span("mining.dhp.count");
            s.attach("candidates", candidates.len() as u64);
            count_with(self.backend, &work, &candidates)
        };
        let mut frequent: Vec<Itemset> = Vec::new();
        for (c, sup) in candidates.into_iter().zip(counts) {
            obs::record_bound_outcome(filter, &c, sup, min_support);
            if sup >= min_support {
                patterns.insert(c.clone(), sup);
                frequent.push(c);
            }
        }
        level2.frequent = frequent.len() as u64;
        obs::record_level("dhp", &level2);
        metrics.push_level(level2);
        drop(_level2_span);

        // Levels ≥ 3: Apriori generation over trimmed data.
        let mut k = 3;
        while !frequent.is_empty() {
            let _level_span = ossm_obs::span(format!("mining.dhp.level{k}"));
            if self.trimming {
                let _s = ossm_obs::span("mining.dhp.trim");
                work = trim(&work, &frequent, k);
            }
            let generated = {
                let _s = ossm_obs::span("mining.dhp.gen");
                generate_candidates(&frequent)
            };
            if generated.is_empty() {
                break;
            }
            let mut level = LevelMetrics {
                level: k,
                generated: generated.len() as u64,
                ..Default::default()
            };
            let candidates: Vec<Itemset> = {
                let _s = ossm_obs::span("mining.dhp.prune");
                generated
                    .into_iter()
                    .filter(|c| filter.may_be_frequent(c, min_support))
                    .collect()
            };
            level.filtered_out = level.generated - candidates.len() as u64;
            level.counted = candidates.len() as u64;
            let counts = {
                let mut s = ossm_obs::span("mining.dhp.count");
                s.attach("candidates", candidates.len() as u64);
                count_with(self.backend, &work, &candidates)
            };
            let mut next = Vec::new();
            for (c, sup) in candidates.into_iter().zip(counts) {
                obs::record_bound_outcome(filter, &c, sup, min_support);
                if sup >= min_support {
                    patterns.insert(c.clone(), sup);
                    next.push(c);
                }
            }
            level.frequent = next.len() as u64;
            obs::record_level("dhp", &level);
            metrics.push_level(level);
            frequent = next;
            k += 1;
        }

        metrics.elapsed = start.elapsed();
        MiningOutcome { patterns, metrics }
    }
}

/// DHP's inter-level trimming: keep only items that occur in some frequent
/// `(k−1)`-itemset, then drop transactions left with fewer than `k` items.
/// Exact for all levels ≥ `k` (see module docs).
fn trim(transactions: &[Itemset], frequent: &[Itemset], k: usize) -> Vec<Itemset> {
    let keep: HashSet<ItemId> = frequent
        .iter()
        .flat_map(|f| f.items().iter().copied())
        .collect();
    transactions
        .iter()
        .filter_map(|t| {
            let kept: Vec<ItemId> = t
                .items()
                .iter()
                .copied()
                .filter(|i| keep.contains(i))
                .collect();
            (kept.len() >= k).then(|| Itemset::from_sorted(kept))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::filter::OssmFilter;
    use ossm_core::minimize_segments;
    use ossm_data::gen::QuestConfig;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    fn quest(n: usize, m: usize) -> Dataset {
        QuestConfig {
            num_transactions: n,
            num_items: m,
            ..QuestConfig::small()
        }
        .generate()
    }

    #[test]
    fn agrees_with_apriori() {
        let d = quest(300, 30);
        for min_support in [5, 10, 25] {
            let a = Apriori::new().mine(&d, min_support);
            let h = Dhp::default().mine(&d, min_support);
            assert_eq!(a.patterns, h.patterns, "min_support {min_support}");
        }
    }

    #[test]
    fn small_bucket_tables_stay_correct() {
        // Heavy collisions weaken pruning but must not change results.
        let d = quest(200, 25);
        let a = Apriori::new().mine(&d, 6);
        for buckets in [1, 7, 64] {
            let h = Dhp::new(buckets).mine(&d, 6);
            assert_eq!(a.patterns, h.patterns, "buckets {buckets}");
        }
    }

    #[test]
    fn hash_pruning_reduces_candidate_pairs() {
        let d = quest(400, 60);
        let apriori = Apriori::new().mine(&d, 12);
        let dhp = Dhp::default().mine(&d, 12);
        assert!(
            dhp.metrics.candidate_2_itemsets_counted()
                <= apriori.metrics.candidate_2_itemsets_counted(),
            "the bucket table can only remove pairs"
        );
        assert_eq!(apriori.patterns, dhp.patterns);
    }

    #[test]
    fn ossm_composes_with_dhp_as_in_section_7() {
        let d = quest(300, 40);
        let min = minimize_segments(&d);
        let plain = Dhp::default().mine(&d, 8);
        let with_ossm = Dhp::default().mine_filtered(&d, 8, &OssmFilter::new(&min.ossm));
        assert_eq!(
            plain.patterns, with_ossm.patterns,
            "OSSM must not change the result"
        );
        assert!(
            with_ossm.metrics.candidate_2_itemsets_counted()
                <= plain.metrics.candidate_2_itemsets_counted(),
            "Section 7: the OSSM removes candidates the hash table admits"
        );
    }

    #[test]
    fn trimming_off_is_still_correct() {
        let d = quest(250, 25);
        let on = Dhp {
            trimming: true,
            ..Dhp::default()
        }
        .mine(&d, 6);
        let off = Dhp {
            trimming: false,
            ..Dhp::default()
        }
        .mine(&d, 6);
        assert_eq!(on.patterns, off.patterns);
    }

    #[test]
    fn trim_drops_dead_items_and_short_transactions() {
        let txs = vec![set(&[0, 1, 2]), set(&[0, 3]), set(&[1, 2, 3])];
        // Frequent 2-itemsets reference items {0, 1, 2} only.
        let frequent = vec![set(&[0, 1]), set(&[1, 2])];
        let trimmed = trim(&txs, &frequent, 3);
        // t1 keeps {0,1,2} (len 3 ✓); t2 shrinks to {0} (dropped);
        // t3 shrinks to {1,2} (dropped at k=3).
        assert_eq!(trimmed, vec![set(&[0, 1, 2])]);
    }

    #[test]
    fn bucket_hash_is_stable_and_in_range() {
        for n in [1usize, 13, 32_768] {
            for (a, b) in [(0u32, 1u32), (5, 9), (100, 2000)] {
                let h = pair_bucket(ItemId(a), ItemId(b), n);
                assert!(h < n);
                assert_eq!(h, pair_bucket(ItemId(a), ItemId(b), n));
            }
        }
    }
}
