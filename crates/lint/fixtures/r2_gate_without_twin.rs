//@path: crates/data/src/gates.rs
//@expect: R2
//! Seeded violation for rule R2: a `#[cfg(feature = "obs")]` item with
//! no `#[cfg(not(feature = "obs"))]` twin anywhere in the file — a
//! `--no-default-features` build silently loses `live_counters`.

#[cfg(feature = "obs")]
pub mod live_counters {
    pub fn incr() {}
}

pub fn always_present() {}
