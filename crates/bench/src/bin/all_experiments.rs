//! Runs every reproduced table and figure in EXPERIMENTS.md order and
//! prints one consolidated markdown report.
//!
//! Usage: `cargo run -p ossm-bench --release --bin all-experiments --
//! [--smoke] [--pages=…] [--items=…]`
//!
//! `--smoke` runs everything at tiny scale (seconds, debug-build friendly);
//! default scale matches the per-binary defaults.

use ossm_bench::cli::Options;
use ossm_bench::experiments::{fig4, fig5, fig6, sec7, smoke_options};

fn main() {
    let opts = Options::from_env();
    let opts = if opts.flag("smoke") { smoke_options() } else { opts };
    println!("# OSSM reproduction — experiment report\n");
    for section in [fig4(&opts), fig5(&opts), fig6(&opts), sec7(&opts)] {
        println!("{section}");
    }
}
