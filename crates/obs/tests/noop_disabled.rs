//! Compile-and-behavior test of the disabled (no-op) build: the default
//! feature set of `ossm-obs` is empty, so a bare `cargo test -p ossm-obs`
//! runs this file. Everything must compile against the same API as the
//! live build and record nothing.
#![cfg(not(feature = "enabled"))]

use ossm_obs::{phase, registry, Counter, Gauge, Histogram, Reporter, StatsFormat};

static COUNTER: Counter = Counter::new("noop.counter");
static HISTOGRAM: Histogram = Histogram::new("noop.histogram");
static GAUGE: Gauge = Gauge::new("noop.gauge");

#[test]
#[allow(clippy::assertions_on_constants)] // the constant IS the subject under test
fn stubs_are_zero_sized() {
    assert!(!ossm_obs::ENABLED);
    assert_eq!(std::mem::size_of::<Counter>(), 0);
    assert_eq!(std::mem::size_of::<Histogram>(), 0);
    assert_eq!(std::mem::size_of::<Gauge>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::GaugeCharge>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::AllocScope>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::MetricsRegistry>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::Scope>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::PhaseGuard>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::SpanGuard>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::Latency>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::LatencyTimer>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::IntervalTracker>(), 0);
    assert_eq!(std::mem::size_of::<ossm_obs::MetricsServer>(), 0);
}

#[test]
fn recording_is_compiled_away() {
    // The full instrumentation surface must be callable…
    COUNTER.incr();
    COUNTER.add(42);
    HISTOGRAM.record(7);
    registry().add("noop.dynamic", 3);
    let scope = registry().scope("noop.scope");
    scope.add("x", 1);
    drop(scope.phase("span"));
    drop(phase("noop.phase"));
    // The span-tracing surface too: open spans, attach data, record a
    // "trace" — all of it must compile away and yield an empty trace.
    ossm_obs::trace_begin();
    assert!(!ossm_obs::trace_active(), "tracing can never activate");
    {
        let mut s = ossm_obs::span("noop.span");
        s.attach("page", 3);
        s.watch(&COUNTER);
        drop(ossm_obs::detail_span("noop.detail"));
    }
    let trace = ossm_obs::trace_take();
    assert!(trace.is_empty(), "disabled builds collect no spans");
    assert_eq!(trace.to_folded(), "");
    // …and leave no trace.
    assert_eq!(COUNTER.get(), 0);
    let snap = registry().snapshot();
    assert!(snap.is_empty(), "disabled builds must record nothing");
    assert!(Reporter::new(StatsFormat::Table).render(&snap).is_empty());
    assert!(Reporter::new(StatsFormat::Json).render(&snap).is_empty());
    registry().reset(); // must also be a no-op, not a panic
}

#[test]
fn resource_accounting_is_compiled_away() {
    // Gauges, charges, and alloc scopes all accept the full API…
    GAUGE.add(100);
    GAUGE.sub(30);
    GAUGE.set(7);
    drop(GAUGE.charge(4096));
    {
        let _scope = ossm_obs::alloc_scope("noop.scope");
        let _v: Vec<u64> = Vec::with_capacity(512);
    }
    // …and record nothing.
    assert_eq!(GAUGE.current(), 0);
    assert_eq!(GAUGE.peak(), 0);
    assert!(!ossm_obs::alloc::tracking_active());
    assert_eq!(ossm_obs::alloc::rss_bytes(), None);
    let snap = registry().snapshot();
    assert!(snap.is_empty(), "disabled builds carry no gauge rows");
}

#[test]
fn live_telemetry_is_compiled_away() {
    static LATENCY: ossm_obs::Latency = ossm_obs::Latency::new("noop.latency");
    // The timing surface must be callable and record nothing…
    drop(LATENCY.time());
    LATENCY.record_nanos(1_000_000);
    assert!(registry().snapshot().is_empty());
    // …interval ticks are always empty, and watch frames render to
    // nothing (the frame format would otherwise embed a marker literal
    // that must not reach disabled binaries).
    let mut tracker = ossm_obs::IntervalTracker::new();
    let d = tracker.tick();
    assert!(d.is_empty());
    assert_eq!(d.resets, 0);
    assert_eq!(d.render_watch(), "");
    // The metrics endpoint refuses to start rather than serving blanks.
    let err = ossm_obs::MetricsServer::start("127.0.0.1:0")
        .err()
        .expect("disabled builds cannot serve");
    assert!(
        err.to_string().contains("instrumentation compiled out"),
        "{err}"
    );
}

#[test]
fn flight_recorder_is_inert() {
    use ossm_obs::recorder::{self, EventKind};
    recorder::install_panic_hook();
    recorder::record_event("noop.event", EventKind::Fault, 1);
    recorder::dump_on_fault(); // must not touch the filesystem
    assert_eq!(recorder::total_recorded(), 0);
    assert!(recorder::events().is_empty(), "no ring exists to read");
    // dump_to is a no-op that must not create its target file.
    let path = std::env::temp_dir()
        .join("ossm-obs-tests")
        .join("noop-recorder-dump.jsonl");
    std::fs::remove_file(&path).ok();
    recorder::dump_to(&path).expect("no-op dump succeeds");
    assert!(!path.exists(), "disabled builds never write dump files");
    // The timeline renderer stays available for `ossm obs dump` even in
    // disabled builds: it reads files, not the (absent) ring.
    let dump = "{\"type\":\"ossm-flightrec\",\"version\":1,\"total\":1,\"events\":1}\n\
                {\"type\":\"event\",\"seq\":0,\"nanos\":5,\"thread\":0,\"kind\":\"fault\",\"name\":\"x\",\"value\":0}\n";
    let timeline = recorder::render_timeline(dump).expect("renderer works");
    assert!(timeline.contains("flight recorder timeline (1 events)"));
}
