//! Ablation A2: candidate counting back-ends — linear scan vs the
//! classical Apriori hash tree, across candidate-set sizes.
//!
//! Counting dominates Apriori's cost; the OSSM's value is reducing how
//! many candidates reach this step at all, so the baseline must use the
//! stronger back-end for the speedups to be honest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ossm_bench::workloads::Workload;
use ossm_data::Itemset;
use ossm_mining::hashtree::count_hash_tree;
use ossm_mining::support::count_linear;

fn bench_counting(c: &mut Criterion) {
    let store = Workload::regular(20, 200).store();
    let txs = store.dataset().transactions();

    let mut group = c.benchmark_group("count_pairs");
    group.sample_size(20);
    for &num_candidates in &[100usize, 1000, 5000] {
        // Deterministic spread of pair candidates over the domain.
        let mut candidates = Vec::with_capacity(num_candidates);
        let m = store.num_items() as u32;
        let mut a = 0u32;
        let mut b = 1u32;
        while candidates.len() < num_candidates {
            candidates.push(Itemset::new([a % m, (a % m + 1 + b % (m - 1)) % m]));
            a = a.wrapping_add(7);
            b = b.wrapping_add(13);
        }
        candidates.sort();
        candidates.dedup();

        group.bench_with_input(
            BenchmarkId::new("linear", num_candidates),
            &candidates,
            |bench, cands| bench.iter(|| black_box(count_linear(black_box(txs), cands))),
        );
        group.bench_with_input(
            BenchmarkId::new("hash_tree", num_candidates),
            &candidates,
            |bench, cands| bench.iter(|| black_box(count_hash_tree(black_box(txs), cands))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_counting);
criterion_main!(benches);
