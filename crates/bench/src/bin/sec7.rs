//! Reproduces Section 7's preliminary table: the DHP algorithm with and
//! without an OSSM (built by Random-RC with 40 segments), reporting
//! runtime and the number of candidate 2-itemsets.
//!
//! Usage: `cargo run -p ossm-bench --release --bin sec7 -- [--pages=200]
//! [--items=1000] [--minsup=0.01] [--nuser=40] [--buckets=32768]`

use ossm_bench::cli::Options;
use ossm_bench::experiments::sec7;

fn main() {
    print!("{}", sec7(&Options::from_env()));
}
