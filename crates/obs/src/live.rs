//! The real implementation, compiled when the `enabled` feature is on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::snapshot::{HistogramSnapshot, PhaseSnapshot, Snapshot};
use crate::{bucket_index, bucket_lower_bound, NUM_BUCKETS};

/// A monotonic event counter.
///
/// Declare as a `static` so the hot path is a single relaxed `fetch_add`;
/// the counter registers itself with the global [`MetricsRegistry`] on
/// first use.
///
/// ```
/// static BOUND_EVALS: ossm_obs::Counter = ossm_obs::Counter::new("core.bound.evals");
/// BOUND_EVALS.incr();
/// ```
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A counter named `name`. `const`, so it can initialize a `static`.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[cold]
    fn register(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            registry()
                .counters
                .lock()
                .expect("counter list poisoned")
                .push(self);
        }
    }
}

/// A log2-bucketed histogram of `u64` values.
///
/// Bucket 0 counts zeros; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`. Used for quantities whose *scale* matters more than
/// exact quantiles — e.g. the bound slack `ub(X) − sup(X)`.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// A histogram named `name`. `const`, so it can initialize a `static`.
    pub const fn new(name: &'static str) -> Self {
        // A `const` local is the array-repeat idiom for non-Copy elements.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&'static self, value: u64) {
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    #[cold]
    fn register(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            registry()
                .histograms
                .lock()
                .expect("histogram list poisoned")
                .push(self);
        }
    }
}

#[derive(Default)]
struct Dynamic {
    counters: BTreeMap<String, u64>,
    phases: BTreeMap<String, PhaseSnapshot>,
}

/// The global sink every metric registers with.
///
/// Obtain it with [`registry`]. Static [`Counter`]s and [`Histogram`]s
/// register themselves on first use; dynamic (string-named) counters and
/// phase timings land in an internal map, optionally namespaced through a
/// [`Scope`].
pub struct MetricsRegistry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    dynamic: Mutex<Dynamic>,
}

static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry.
pub fn registry() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(|| MetricsRegistry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        dynamic: Mutex::new(Dynamic::default()),
    })
}

/// Starts timing a phase; the span is recorded when the guard drops.
pub fn phase(name: impl Into<String>) -> PhaseGuard {
    PhaseGuard {
        name: name.into(),
        start: Instant::now(),
    }
}

impl MetricsRegistry {
    /// A scope that prefixes every dynamic metric name with `label.`.
    pub fn scope(&'static self, label: impl Into<String>) -> Scope {
        Scope {
            prefix: label.into(),
        }
    }

    /// Adds `n` to the dynamic counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        let mut dyn_ = self.dynamic_lock();
        *dyn_.counters.entry(name.to_string()).or_insert(0) += n;
    }

    fn dynamic_lock(&self) -> MutexGuard<'_, Dynamic> {
        self.dynamic.lock().expect("dynamic metrics poisoned")
    }

    fn record_phase(&self, name: String, nanos: u64) {
        let mut dyn_ = self.dynamic_lock();
        let p = dyn_.phases.entry(name).or_default();
        p.nanos += nanos;
        p.calls += 1;
    }

    /// A deterministic copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for c in self.counters.lock().expect("counter list poisoned").iter() {
            let v = c.get();
            if v > 0 {
                *snap.counters.entry(c.name.to_string()).or_insert(0) += v;
            }
        }
        for h in self
            .histograms
            .lock()
            .expect("histogram list poisoned")
            .iter()
        {
            let s = h.snapshot();
            if s.count > 0 {
                snap.histograms.insert(h.name.to_string(), s);
            }
        }
        let dyn_ = self.dynamic_lock();
        for (name, v) in &dyn_.counters {
            if *v > 0 {
                *snap.counters.entry(name.clone()).or_insert(0) += v;
            }
        }
        for (name, p) in &dyn_.phases {
            snap.phases.insert(name.clone(), *p);
        }
        snap
    }

    /// Zeroes every registered metric. Call at the start of a measured
    /// run so the snapshot reflects only that run.
    pub fn reset(&self) {
        for c in self.counters.lock().expect("counter list poisoned").iter() {
            c.value.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .lock()
            .expect("histogram list poisoned")
            .iter()
        {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
        }
        let mut dyn_ = self.dynamic_lock();
        dyn_.counters.clear();
        dyn_.phases.clear();
    }
}

/// Prefixes dynamic metric names, e.g. `mining.apriori` →
/// `mining.apriori.level2.generated`.
pub struct Scope {
    prefix: String,
}

impl Scope {
    /// Adds `n` to the scoped dynamic counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        registry().add(&format!("{}.{name}", self.prefix), n);
    }

    /// Starts timing a scoped phase.
    pub fn phase(&self, name: &str) -> PhaseGuard {
        phase(format!("{}.{name}", self.prefix))
    }
}

/// RAII span: records elapsed wall-clock time into the registry on drop.
#[must_use = "the span ends when the guard drops"]
pub struct PhaseGuard {
    name: String,
    start: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        registry().record_phase(std::mem::take(&mut self.name), nanos);
    }
}
