//! The real implementation, compiled when the `enabled` feature is on.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::snapshot::{HistogramSnapshot, PhaseSnapshot, Snapshot};
use crate::trace::{SpanEvent, Trace};
use crate::{bucket_index, bucket_lower_bound, NUM_BUCKETS};

/// A monotonic event counter.
///
/// Declare as a `static` so the hot path is a single relaxed `fetch_add`;
/// the counter registers itself with the global [`MetricsRegistry`] on
/// first use.
///
/// ```
/// static BOUND_EVALS: ossm_obs::Counter = ossm_obs::Counter::new("core.bound.evals");
/// BOUND_EVALS.incr();
/// ```
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A counter named `name`. `const`, so it can initialize a `static`.
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Adds `n`. Deltas of at least
    /// [`COUNTER_EVENT_THRESHOLD`](crate::recorder::COUNTER_EVENT_THRESHOLD)
    /// also land in the flight recorder.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        if n >= crate::recorder::COUNTER_EVENT_THRESHOLD {
            crate::recorder::record_event(self.name, crate::recorder::EventKind::Counter, n);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    #[cold]
    fn register(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            registry()
                .counters
                .lock()
                .expect("counter list poisoned")
                .push(self);
        }
    }
}

/// A log2-bucketed histogram of `u64` values.
///
/// Bucket 0 counts zeros; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i)`. Used for quantities whose *scale* matters more than
/// exact quantiles — e.g. the bound slack `ub(X) − sup(X)`.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// A histogram named `name`. `const`, so it can initialize a `static`.
    pub const fn new(name: &'static str) -> Self {
        // A `const` local is the array-repeat idiom for non-Copy elements.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&'static self, value: u64) {
        if !self.registered.load(Ordering::Relaxed) {
            self.register();
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    #[cold]
    fn register(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            registry()
                .histograms
                .lock()
                .expect("histogram list poisoned")
                .push(self);
        }
    }
}

/// A latency recorder: a [`Histogram`] of elapsed nanoseconds fed by
/// RAII [`LatencyTimer`]s, for per-request spans (insert acks, `ub(X)`
/// queries) whose *distribution* matters — quantiles are derived from
/// the log2 buckets (see [`crate::quantile`]).
///
/// ```
/// static UB_LATENCY: ossm_obs::Latency = ossm_obs::Latency::new("req.ub.latency");
/// let _timer = UB_LATENCY.time(); // records on drop
/// ```
pub struct Latency {
    hist: Histogram,
}

impl Latency {
    /// A latency recorder named `name`. `const`, so it can initialize a
    /// `static`.
    pub const fn new(name: &'static str) -> Self {
        Latency {
            hist: Histogram::new(name),
        }
    }

    /// Starts timing; the elapsed nanoseconds are recorded when the
    /// returned guard drops.
    #[inline]
    pub fn time(&'static self) -> LatencyTimer {
        LatencyTimer {
            latency: self,
            start: Instant::now(),
        }
    }

    /// Records an already-measured duration in nanoseconds.
    #[inline]
    pub fn record_nanos(&'static self, nanos: u64) {
        self.hist.record(nanos);
    }
}

/// RAII guard from [`Latency::time`]: records the elapsed nanoseconds
/// into the latency histogram on drop.
#[must_use = "the measured span ends when the timer drops"]
pub struct LatencyTimer {
    latency: &'static Latency,
    start: Instant,
}

impl Drop for LatencyTimer {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.latency.hist.record(nanos);
    }
}

#[derive(Default)]
struct Dynamic {
    counters: BTreeMap<String, u64>,
    phases: BTreeMap<String, PhaseSnapshot>,
}

/// The global sink every metric registers with.
///
/// Obtain it with [`registry`]. Static [`Counter`]s and [`Histogram`]s
/// register themselves on first use; dynamic (string-named) counters and
/// phase timings land in an internal map, optionally namespaced through a
/// [`Scope`].
pub struct MetricsRegistry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    gauges: Mutex<Vec<&'static crate::Gauge>>,
    dynamic: Mutex<Dynamic>,
}

static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry.
pub fn registry() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(|| MetricsRegistry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        dynamic: Mutex::new(Dynamic::default()),
    })
}

/// Registers a static gauge on its first use (called from `Gauge`).
pub(crate) fn register_gauge(gauge: &'static crate::Gauge) {
    registry()
        .gauges
        .lock()
        .expect("gauge list poisoned")
        .push(gauge);
}

/// Starts timing a phase; the span is recorded when the guard drops.
///
/// Alias of [`span`], kept for the flat-metrics vocabulary of PR 1: every
/// phase *is* a span, and the aggregated per-name wall-clock totals in the
/// snapshot are unchanged.
pub fn phase(name: impl Into<String>) -> SpanGuard {
    span(name)
}

/// Opens a hierarchical span: an RAII guard that, on drop, adds its
/// elapsed wall-clock time to the phase aggregate under `name` and — when
/// a trace is being recorded (see [`trace_begin`]) — emits a
/// [`SpanEvent`] whose parent is the span enclosing it on the same thread.
pub fn span(name: impl Into<String>) -> SpanGuard {
    SpanGuard {
        inner: Some(Box::new(SpanInner::open(name.into(), true))),
    }
}

/// Opens a span only while a trace is being recorded; otherwise returns an
/// inert guard that costs a single atomic load. For hot loops (per
/// merge-round, per page-read) where even the phase-aggregate mutex would
/// be too much overhead in untraced runs.
pub fn detail_span(name: impl Into<String>) -> SpanGuard {
    if !trace_active() {
        return SpanGuard { inner: None };
    }
    SpanGuard {
        inner: Some(Box::new(SpanInner::open(name.into(), false))),
    }
}

impl MetricsRegistry {
    /// A scope that prefixes every dynamic metric name with `label.`.
    pub fn scope(&'static self, label: impl Into<String>) -> Scope {
        Scope {
            prefix: label.into(),
        }
    }

    /// Adds `n` to the dynamic counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        let mut dyn_ = self.dynamic_lock();
        *dyn_.counters.entry(name.to_string()).or_insert(0) += n;
    }

    fn dynamic_lock(&self) -> MutexGuard<'_, Dynamic> {
        self.dynamic.lock().expect("dynamic metrics poisoned")
    }

    fn record_phase(&self, name: String, nanos: u64) {
        let mut dyn_ = self.dynamic_lock();
        let p = dyn_.phases.entry(name).or_default();
        p.nanos += nanos;
        p.calls += 1;
    }

    /// A deterministic copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for c in self.counters.lock().expect("counter list poisoned").iter() {
            let v = c.get();
            if v > 0 {
                *snap.counters.entry(c.name.to_string()).or_insert(0) += v;
            }
        }
        for h in self
            .histograms
            .lock()
            .expect("histogram list poisoned")
            .iter()
        {
            let s = h.snapshot();
            if s.count > 0 {
                snap.histograms.insert(h.name.to_string(), s);
            }
        }
        for g in self.gauges.lock().expect("gauge list poisoned").iter() {
            let s = g.snapshot();
            if s.current > 0 || s.peak > 0 {
                snap.gauges.insert(g.name().to_string(), s);
            }
        }
        crate::alloc::snapshot_into(&mut snap);
        let dyn_ = self.dynamic_lock();
        for (name, v) in &dyn_.counters {
            if *v > 0 {
                *snap.counters.entry(name.clone()).or_insert(0) += v;
            }
        }
        for (name, p) in &dyn_.phases {
            snap.phases.insert(name.clone(), *p);
        }
        snap
    }

    /// Zeroes every registered metric. Call at the start of a measured
    /// run so the snapshot reflects only that run.
    pub fn reset(&self) {
        for c in self.counters.lock().expect("counter list poisoned").iter() {
            c.value.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .lock()
            .expect("histogram list poisoned")
            .iter()
        {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().expect("gauge list poisoned").iter() {
            g.reset();
        }
        crate::alloc::reset_peaks();
        let mut dyn_ = self.dynamic_lock();
        dyn_.counters.clear();
        dyn_.phases.clear();
    }
}

/// Prefixes dynamic metric names, e.g. `mining.apriori` →
/// `mining.apriori.level2.generated`.
pub struct Scope {
    prefix: String,
}

impl Scope {
    /// Adds `n` to the scoped dynamic counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        registry().add(&format!("{}.{name}", self.prefix), n);
    }

    /// Starts timing a scoped phase.
    pub fn phase(&self, name: &str) -> SpanGuard {
        span(format!("{}.{name}", self.prefix))
    }
}

/// Former name of [`SpanGuard`], kept so PR 1 call sites and docs read
/// unchanged.
pub type PhaseGuard = SpanGuard;

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

/// Monotonic process-unique span ids (0 is never issued, so it can never
/// collide with a parent reference).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Dense per-thread ids for trace `tid` fields.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
/// Whether a trace is currently being collected. Checked with a relaxed
/// load on every span open, so untraced runs pay almost nothing extra.
static TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Collected events plus the shared time origin. Lives behind a mutex that
/// spans touch only at *drop* (one push), never per nested child.
static TRACE_BUF: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
/// The instant all span timestamps are measured from. Set once per
/// process: traces within one run share an origin, and Perfetto/Chrome
/// normalize to the earliest event anyway.
static TRACE_EPOCH: OnceLock<Instant> = OnceLock::new();

fn trace_buf() -> &'static Mutex<Vec<SpanEvent>> {
    TRACE_BUF.get_or_init(|| Mutex::new(Vec::new()))
}

fn trace_epoch() -> Instant {
    *TRACE_EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's shared trace epoch — the timebase the
/// flight recorder stamps events with, so dumps and traces line up.
pub(crate) fn epoch_nanos() -> u64 {
    u64::try_from(trace_epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// This thread's dense trace id (0 during thread-local teardown).
pub(crate) fn current_thread_id() -> u64 {
    THREAD_ID.try_with(|t| *t).unwrap_or(0)
}

thread_local! {
    /// This thread's dense trace id.
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    /// Ids of the currently open traced spans on this thread; the top is
    /// the parent of the next span opened here.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Starts collecting a span trace. Any previously collected (but not yet
/// taken) events are discarded.
pub fn trace_begin() {
    trace_epoch(); // pin the time origin before the first span
    trace_buf().lock().expect("trace buffer poisoned").clear();
    TRACE_ACTIVE.store(true, Ordering::SeqCst);
}

/// True while a trace is being collected.
#[inline]
pub fn trace_active() -> bool {
    TRACE_ACTIVE.load(Ordering::Relaxed)
}

/// Stops collecting and returns everything recorded since
/// [`trace_begin`]. Spans still open at this point are simply absent from
/// the trace (their completed children appear as roots).
pub fn trace_take() -> Trace {
    TRACE_ACTIVE.store(false, Ordering::SeqCst);
    let events = std::mem::take(&mut *trace_buf().lock().expect("trace buffer poisoned"));
    Trace { events }
}

/// Live state of an open span. Boxed inside the guard's `Option` so the
/// inert [`detail_span`] path moves nothing bigger than a pointer.
struct SpanInner {
    name: String,
    start: Instant,
    /// Add the elapsed time to the phase aggregates on drop (true for
    /// [`span`]/[`phase`], false for [`detail_span`], which only exists
    /// while tracing).
    record_phase: bool,
    /// Trace bookkeeping, present when tracing was active at open.
    trace: Option<TraceState>,
}

struct TraceState {
    id: u64,
    parent: Option<u64>,
    start_nanos: u64,
    args: Vec<(String, u64)>,
    /// Counters watched via [`SpanGuard::watch`]: their value at watch
    /// time, turned into a delta attachment at drop.
    watches: Vec<(&'static Counter, u64)>,
}

impl SpanInner {
    fn open(name: String, record_phase: bool) -> Self {
        if record_phase {
            crate::recorder::record_event(&name, crate::recorder::EventKind::SpanEnter, 0);
        }
        let trace = trace_active().then(|| {
            let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
            let parent = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                let parent = s.last().copied();
                s.push(id);
                parent
            });
            TraceState {
                id,
                parent,
                start_nanos: u64::try_from(trace_epoch().elapsed().as_nanos()).unwrap_or(u64::MAX),
                args: Vec::new(),
                watches: Vec::new(),
            }
        });
        SpanInner {
            name,
            start: Instant::now(),
            record_phase,
            trace,
        }
    }
}

/// RAII span guard returned by [`span`], [`phase`] and [`detail_span`]:
/// records elapsed wall-clock time into the registry (and the active
/// trace, if any) on drop.
#[must_use = "the span ends when the guard drops"]
pub struct SpanGuard {
    inner: Option<Box<SpanInner>>,
}

impl SpanGuard {
    /// Attaches a key/value pair to the span's trace event. No-op when no
    /// trace is being recorded.
    pub fn attach(&mut self, key: &str, value: u64) {
        if let Some(trace) = self.inner.as_mut().and_then(|i| i.trace.as_mut()) {
            trace.args.push((key.to_string(), value));
        }
    }

    /// Watches `counter`: at drop, the counter's delta over the span's
    /// lifetime is attached as `<counter name>.delta`. No-op when no trace
    /// is being recorded.
    pub fn watch(&mut self, counter: &'static Counter) {
        if let Some(trace) = self.inner.as_mut().and_then(|i| i.trace.as_mut()) {
            trace.watches.push((counter, counter.get()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut inner) = self.inner.take() else {
            return;
        };
        let nanos = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(mut trace) = inner.trace.take() {
            // Always rebalance the thread stack, even if collection
            // stopped while this span was open.
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                debug_assert_eq!(s.last().copied(), Some(trace.id), "span drop order");
                s.pop();
            });
            if trace_active() {
                for (counter, start_value) in trace.watches.drain(..) {
                    let delta = counter.get().saturating_sub(start_value);
                    trace.args.push((format!("{}.delta", counter.name), delta));
                }
                let event = SpanEvent {
                    id: trace.id,
                    parent: trace.parent,
                    name: inner.name.clone(),
                    thread: THREAD_ID.with(|t| *t),
                    start_nanos: trace.start_nanos,
                    duration_nanos: nanos,
                    args: trace.args,
                };
                trace_buf()
                    .lock()
                    .expect("trace buffer poisoned")
                    .push(event);
            }
        }
        if inner.record_phase {
            crate::recorder::record_event(&inner.name, crate::recorder::EventKind::SpanExit, nanos);
            registry().record_phase(std::mem::take(&mut inner.name), nanos);
        }
    }
}
