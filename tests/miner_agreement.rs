//! Cross-miner agreement: Apriori (both counting back-ends), DHP,
//! Partition, DepthProject, and FP-growth must return identical frequent
//! patterns on any input — and plugging in an OSSM filter must never
//! change any of their answers.
//!
//! FP-growth shares no candidate-generation code with the others, which
//! makes this the strongest correctness oracle in the repository.

mod testkit;

use rand::Rng;
use testkit::{case_rng, random_dataset};

use ossm_core::{minimize_segments, OssmBuilder, Strategy as SegStrategy};
use ossm_data::{Dataset, PageStore};
use ossm_mining::{Apriori, CountingBackend, DepthProject, Dhp, FpGrowth, OssmFilter, Partition};

const CASES: u64 = 48;

fn dataset(case: u64, salt: u64) -> Dataset {
    random_dataset(&mut case_rng(salt, case), 2, 10, 1, 60, false)
}

#[test]
fn all_miners_agree() {
    for case in 0..CASES {
        let mut rng = case_rng(0x3141, case);
        let d = random_dataset(&mut rng, 2, 10, 1, 60, false);
        let min_support = rng.gen_range(1..=(d.len() as u64).max(1));
        let reference = Apriori::new().mine(&d, min_support).patterns;
        let hash = Apriori::new()
            .with_backend(CountingBackend::HashTree)
            .mine(&d, min_support)
            .patterns;
        assert_eq!(reference, hash, "case {case}: hash-tree backend diverged");
        let dhp = Dhp::new(64).mine(&d, min_support).patterns;
        assert_eq!(reference, dhp, "case {case}: DHP diverged");
        let partition = Partition::new(3).mine(&d, min_support).patterns;
        assert_eq!(reference, partition, "case {case}: Partition diverged");
        let depth = DepthProject::new().mine(&d, min_support).patterns;
        assert_eq!(reference, depth, "case {case}: DepthProject diverged");
        let fp = FpGrowth::new().mine(&d, min_support).patterns;
        assert_eq!(reference, fp, "case {case}: FP-growth diverged");
        let eclat = ossm_mining::Eclat::new().mine(&d, min_support).patterns;
        assert_eq!(reference, eclat, "case {case}: Eclat diverged");
        // The condensed miners must agree with post-hoc condensation.
        let charm = ossm_mining::Charm::new().mine(&d, min_support).patterns;
        assert_eq!(
            charm,
            ossm_mining::patterns::closed(&reference),
            "case {case}: CHARM diverged"
        );
        // Downward closure must hold for whatever was produced.
        assert!(reference.closure_violation().is_none(), "case {case}");
    }
}

#[test]
fn ossm_filter_never_changes_any_miner() {
    for case in 0..CASES {
        let d = dataset(case, 0x3142);
        let min_support = (d.len() as u64 / 5).max(2);
        // Two OSSMs: the exact minimized one and a deliberately coarse one.
        let exact = minimize_segments(&d).ossm;
        let store = PageStore::with_page_count(d.clone(), 4);
        let coarse = OssmBuilder::new(2)
            .strategy(SegStrategy::Random)
            .build(&store)
            .0;

        let plain = Apriori::new().mine(&d, min_support);
        for ossm in [&exact, &coarse] {
            let filter = OssmFilter::new(ossm);
            let a = Apriori::new().mine_filtered(&d, min_support, &filter);
            assert_eq!(
                plain.patterns, a.patterns,
                "case {case}: Apriori+OSSM diverged"
            );
            assert!(a.metrics.total_counted() <= plain.metrics.total_counted());
            let h = Dhp::new(64).mine_filtered(&d, min_support, &filter);
            assert_eq!(plain.patterns, h.patterns, "case {case}: DHP+OSSM diverged");
            let dp = DepthProject::new().mine_filtered(&d, min_support, &filter);
            assert_eq!(
                plain.patterns, dp.patterns,
                "case {case}: DepthProject+OSSM diverged"
            );
        }
        let pm = Partition::new(3).mine_with_ossms(&d, min_support, 2);
        assert_eq!(
            plain.patterns, pm.patterns,
            "case {case}: Partition+OSSMs diverged"
        );
    }
}

#[test]
fn reported_supports_are_true_supports() {
    for case in 0..CASES {
        let d = dataset(case, 0x3143);
        let min_support = (d.len() as u64 / 4).max(1);
        let out = FpGrowth::new().mine(&d, min_support);
        for (pattern, support) in out.patterns.iter() {
            assert_eq!(
                support,
                d.support(pattern),
                "case {case}: wrong support for {pattern}"
            );
            assert!(support >= min_support, "case {case}");
        }
    }
}

/// Deterministic check on realistic generated data (bigger than the
/// randomized inputs, one fixed seed per generator).
#[test]
fn agreement_on_all_three_paper_workloads() {
    use ossm_data::gen::{AlarmConfig, QuestConfig, SkewedConfig};
    let workloads: Vec<(Dataset, u64)> = vec![
        (
            QuestConfig {
                num_transactions: 500,
                num_items: 40,
                ..QuestConfig::small()
            }
            .generate(),
            10,
        ),
        (
            SkewedConfig {
                num_transactions: 500,
                num_items: 30,
                ..SkewedConfig::small()
            }
            .generate(),
            15,
        ),
        (
            AlarmConfig {
                num_windows: 400,
                num_alarm_types: 25,
                ..AlarmConfig::small()
            }
            .generate(),
            25,
        ),
    ];
    for (d, min_support) in workloads {
        let reference = Apriori::new().mine(&d, min_support).patterns;
        assert_eq!(reference, Dhp::default().mine(&d, min_support).patterns);
        assert_eq!(reference, Partition::new(4).mine(&d, min_support).patterns);
        assert_eq!(
            reference,
            DepthProject::new().mine(&d, min_support).patterns
        );
        assert_eq!(reference, FpGrowth::new().mine(&d, min_support).patterns);
        assert!(
            !reference.is_empty(),
            "workload should produce some patterns"
        );
    }
}
