//! Candidate filters: the hook through which the OSSM plugs into miners.
//!
//! The OSSM's pruning is sound — equation (1) never *under*estimates a
//! support — so filtering with it can only remove candidates that are
//! certainly infrequent. Every miner in this crate takes a
//! [`CandidateFilter`], which makes "Apriori with the OSSM" vs "Apriori
//! without" a one-argument difference, exactly how the paper frames its
//! experiments (and likewise for DHP, Partition, and DepthProject in
//! Section 7).

use ossm_core::Ossm;
use ossm_data::Itemset;

/// Decides, before counting, whether a candidate can still be frequent.
pub trait CandidateFilter {
    /// Returns `true` if `candidate` might reach `min_support` and must be
    /// counted; `false` prunes it.
    fn may_be_frequent(&self, candidate: &Itemset, min_support: u64) -> bool;

    /// The numeric support upper bound this filter judged `candidate` by,
    /// if it has one. Instrumentation compares it with the true support to
    /// measure bound tightness; filters without a bound (like [`NoFilter`])
    /// keep the default `None`.
    fn bound(&self, _candidate: &Itemset) -> Option<u64> {
        None
    }

    /// Display name for experiment tables.
    fn name(&self) -> &str;
}

/// The no-op filter: every candidate is counted (the paper's "without the
/// OSSM" baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFilter;

impl CandidateFilter for NoFilter {
    #[inline]
    fn may_be_frequent(&self, _candidate: &Itemset, _min_support: u64) -> bool {
        true
    }

    fn name(&self) -> &str {
        "none"
    }
}

/// Filters through an OSSM's equation-(1) upper bound.
#[derive(Clone, Debug)]
pub struct OssmFilter<'a> {
    ossm: &'a Ossm,
}

impl<'a> OssmFilter<'a> {
    /// Wraps an OSSM as a filter.
    pub fn new(ossm: &'a Ossm) -> Self {
        OssmFilter { ossm }
    }

    /// The wrapped map.
    pub fn ossm(&self) -> &Ossm {
        self.ossm
    }
}

impl CandidateFilter for OssmFilter<'_> {
    #[inline]
    fn may_be_frequent(&self, candidate: &Itemset, min_support: u64) -> bool {
        self.ossm.upper_bound(candidate) >= min_support
    }

    fn bound(&self, candidate: &Itemset) -> Option<u64> {
        Some(self.ossm.upper_bound(candidate))
    }

    fn name(&self) -> &str {
        "OSSM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_core::Aggregate;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn no_filter_keeps_everything() {
        assert!(NoFilter.may_be_frequent(&set(&[1, 2, 3]), u64::MAX));
        assert_eq!(NoFilter.name(), "none");
        assert_eq!(NoFilter.bound(&set(&[1, 2, 3])), None, "no bound to report");
    }

    #[test]
    fn ossm_filter_prunes_by_upper_bound() {
        // Example 1's OSSM: ub({0,1}) = 80, ub({0,1,2}) = 60.
        let seg = |a: u64, b: u64, c: u64| Aggregate::new(vec![a, b, c], a.max(b).max(c));
        let ossm = Ossm::from_aggregates(vec![
            seg(20, 40, 40),
            seg(10, 40, 20),
            seg(40, 40, 20),
            seg(40, 10, 20),
        ]);
        let f = OssmFilter::new(&ossm);
        assert!(f.may_be_frequent(&set(&[0, 1]), 80));
        assert!(!f.may_be_frequent(&set(&[0, 1]), 81));
        assert!(!f.may_be_frequent(&set(&[0, 1, 2]), 61));
        assert!(f.may_be_frequent(&set(&[0, 1, 2]), 60));
        assert_eq!(f.bound(&set(&[0, 1])), Some(80));
        assert_eq!(f.bound(&set(&[0, 1, 2])), Some(60));
        assert_eq!(f.name(), "OSSM");
    }
}
