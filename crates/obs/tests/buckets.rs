//! Histogram bucket math, valid with or without the `enabled` feature.

use ossm_obs::{bucket_index, bucket_lower_bound, NUM_BUCKETS};

#[test]
fn zero_gets_its_own_bucket() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_lower_bound(0), 0);
}

#[test]
fn power_of_two_boundaries() {
    // Bucket i ≥ 1 covers [2^(i-1), 2^i): each power of two starts a new
    // bucket, and the value just below it closes the previous one. Bucket
    // 64, the last one, is covered too — its top is u64::MAX, so the
    // `lo * 2 - 1` upper-edge expression must not be computed for it.
    for i in 1..NUM_BUCKETS {
        let lo = 1u64 << (i - 1);
        assert_eq!(bucket_index(lo), i, "2^{} must open bucket {i}", i - 1);
        let top = if i == NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            lo * 2 - 1
        };
        assert_eq!(bucket_index(top), i, "top of bucket {i}");
        assert_eq!(bucket_lower_bound(i), lo);
    }
}

#[test]
fn lower_bound_and_index_round_trip() {
    // bucket_lower_bound is a section of bucket_index: the lower bound of
    // every bucket indexes back into that bucket, exactly.
    for i in 0..NUM_BUCKETS {
        assert_eq!(
            bucket_index(bucket_lower_bound(i)),
            i,
            "round trip through bucket {i}"
        );
    }
    // And values one below a bucket's lower bound fall in an earlier
    // bucket (strict monotonicity at every boundary).
    for i in 2..NUM_BUCKETS {
        assert_eq!(bucket_index(bucket_lower_bound(i) - 1), i - 1);
    }
    assert_eq!(bucket_index(bucket_lower_bound(1) - 1), 0, "1 - 1 = 0");
}

#[test]
#[should_panic(expected = "out of range")]
fn lower_bound_rejects_out_of_range_indices() {
    // Pre-fix, `1u64 << (NUM_BUCKETS - 1)` wrapped the shift amount in
    // release builds and silently returned 1; now it must panic clearly.
    let _ = bucket_lower_bound(NUM_BUCKETS);
}

#[test]
fn max_values_saturate_in_the_last_bucket() {
    assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    assert_eq!(bucket_index(u64::MAX - 1), NUM_BUCKETS - 1);
    assert_eq!(bucket_index(1u64 << 63), NUM_BUCKETS - 1);
    assert_eq!(bucket_index((1u64 << 63) - 1), NUM_BUCKETS - 2);
}

#[test]
fn extremes_stay_in_range() {
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    assert_eq!(bucket_lower_bound(NUM_BUCKETS - 1), 1u64 << 63);
}

#[test]
fn index_is_monotone_in_the_value() {
    let mut last = 0;
    for v in [0u64, 1, 2, 3, 5, 8, 100, 1 << 20, u64::MAX / 2, u64::MAX] {
        let i = bucket_index(v);
        assert!(i >= last, "bucket_index must be monotone ({v} -> {i})");
        last = i;
    }
}

#[test]
fn every_value_lands_at_or_above_its_bucket_lower_bound() {
    for v in [0u64, 1, 2, 7, 63, 64, 999, 1 << 33, u64::MAX] {
        let i = bucket_index(v);
        assert!(
            bucket_lower_bound(i) <= v,
            "{v} below its bucket's lower bound"
        );
        if i + 1 < NUM_BUCKETS {
            assert!(v < bucket_lower_bound(i + 1), "{v} reaches the next bucket");
        }
    }
}
