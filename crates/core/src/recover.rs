//! Rebuilding sound aggregates from a damaged page store.
//!
//! [`ossm_data::repair::scan_store`] classifies each page of an
//! `OSSMPAGE` file as intact or corrupt. This module turns that triage
//! into OSSM inputs without ever under-counting:
//!
//! * a page with intact data, or with an intact index summary, yields its
//!   **exact** aggregate;
//! * a page with neither is **quarantined**: its aggregate is widened to
//!   the physical maximum a page of that size can hold
//!   ([`ossm_data::repair::widened_summary`]), so any segment containing
//!   it over-estimates.
//!
//! Per eq. (1), an itemset's bound is `Σ_i min_{a∈X} sup_i({a})` — it is
//! monotone in every segment support, so replacing a lost page's unknown
//! true aggregate with a dominating one can only raise bounds. Pruning
//! stays correct (no frequent itemset is ever pruned); it merely prunes
//! less until the data is re-ingested. Quarantined pages are counted on
//! `core.recover.pages_quarantined`.

use ossm_data::repair::{widened_summary, StoreScan};

use crate::segmentation::Aggregate;
use crate::ssm::Ossm;

/// Pages whose aggregate had to be widened because neither their data
/// nor their index summary survived.
static PAGES_QUARANTINED: ossm_obs::Counter =
    ossm_obs::Counter::new("core.recover.pages_quarantined");

/// Aggregates recovered from a (possibly damaged) store scan.
#[derive(Debug)]
pub struct Recovery {
    /// One aggregate per page, in page order. Sound inputs for any
    /// segmentation or incremental append.
    pub aggregates: Vec<Aggregate>,
    /// Pages whose exact aggregate survived (from data or index).
    pub exact_pages: usize,
    /// Pages replaced by a widened, sound over-estimate.
    pub widened_pages: usize,
}

impl Recovery {
    /// Whether every page recovered exactly (bounds are as tight as an
    /// undamaged store's).
    pub fn is_exact(&self) -> bool {
        self.widened_pages == 0
    }

    /// Builds a one-segment-per-page OSSM from the recovered aggregates,
    /// or `None` for an empty store.
    pub fn into_ossm(self) -> Option<Ossm> {
        if self.aggregates.is_empty() {
            return None;
        }
        Some(Ossm::from_aggregates(self.aggregates))
    }
}

/// Extracts one sound aggregate per page from `scan`, widening where
/// corruption destroyed the exact value (see the module docs).
// SOUND: every arm dominates the page's true supports — checksummed
// index summaries and recounts from intact data are exact, and a lost
// page takes `widened_summary`'s physical maxima, which over-estimate
// every support. Eq. (1) is monotone in each segment support, so the
// recovered map's bounds dominate the uncorrupted map's.
pub fn aggregates_from_scan(scan: &StoreScan) -> Recovery {
    let mut recovery = Recovery {
        aggregates: Vec::with_capacity(scan.pages.len()),
        exact_pages: 0,
        widened_pages: 0,
    };
    for page in &scan.pages {
        let summary = if let Some(summary) = &page.index_summary {
            recovery.exact_pages += 1;
            summary.clone()
        } else if let Some(txs) = &page.data {
            // Index lost, data intact: recompute the aggregate directly.
            recovery.exact_pages += 1;
            let mut supports = vec![0u64; scan.m];
            for t in txs {
                for item in t.items() {
                    supports[item.index()] += 1;
                }
            }
            recovery
                .aggregates
                .push(Aggregate::new(supports, txs.len() as u64));
            continue;
        } else {
            recovery.widened_pages += 1;
            PAGES_QUARANTINED.incr();
            widened_summary(scan.m, scan.page_bytes)
        };
        recovery.aggregates.push(Aggregate::new(
            summary.dense(scan.m),
            u64::from(summary.transactions),
        ));
    }
    recovery
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossm_data::disk::write_paged;
    use ossm_data::gen::QuestConfig;
    use ossm_data::repair::scan_store;
    use ossm_data::{Dataset, Itemset};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ossm-recover-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn sample() -> Dataset {
        QuestConfig {
            num_transactions: 300,
            num_items: 20,
            ..QuestConfig::small()
        }
        .generate()
    }

    #[test]
    fn clean_scan_recovers_exactly() {
        let d = sample();
        let path = tmp("clean.pages");
        write_paged(&path, &d, 1024).expect("write");
        let recovery = aggregates_from_scan(&scan_store(&path).expect("scan"));
        assert!(recovery.is_exact());
        let ossm = recovery.into_ossm().expect("non-empty");
        assert_eq!(ossm.num_transactions(), d.len() as u64);
        for a in 0..5u32 {
            for b in (a + 1)..5u32 {
                let probe = Itemset::new([a, b]);
                assert!(ossm.upper_bound(&probe) >= d.support(&probe));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn total_corruption_of_a_page_widens_but_stays_sound() {
        let d = sample();
        let path = tmp("widened.pages");
        write_paged(&path, &d, 1024).expect("write");
        // Destroy page 0's data and the whole index region.
        let mut bytes = std::fs::read(&path).expect("read");
        let hdr = 44usize;
        for b in bytes.iter_mut().skip(hdr).take(50) {
            *b ^= 0xFF;
        }
        let tail = bytes.len() - 10;
        for b in bytes.iter_mut().skip(tail) {
            *b ^= 0xFF;
        }
        std::fs::write(&path, &bytes).expect("rewrite");

        let scan = scan_store(&path).expect("scan");
        assert!(!scan.index_intact);
        let recovery = aggregates_from_scan(&scan);
        assert!(!recovery.is_exact());
        assert!(recovery.widened_pages >= 1);
        let ossm = recovery.into_ossm().expect("non-empty");
        // Every pair bound still dominates the true support of the full
        // original dataset — the widened page over-covers its share.
        for a in 0..6u32 {
            for b in (a + 1)..6u32 {
                let probe = Itemset::new([a, b]);
                assert!(
                    ossm.upper_bound(&probe) >= d.support(&probe),
                    "bound for {{{a},{b}}} under-counts after recovery"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
