//! Soundness and monotonicity of the equation-(1) upper bound.
//!
//! Whatever the segmentation — random, adversarial, or degenerate — the
//! OSSM bound must never undercount any itemset's support (that is what
//! makes OSSM filtering lossless), and refining a segmentation must never
//! loosen the bound.

use proptest::prelude::*;

use ossm_core::{Aggregate, Ossm, Segmentation};
use ossm_data::{Dataset, ItemId, Itemset, PageStore};

/// Random dataset + random transaction-to-segment assignment.
fn assigned_dataset() -> impl Strategy<Value = (Dataset, Vec<usize>, usize)> {
    (2usize..=8, 1usize..=5).prop_flat_map(|(m, segs)| {
        let tx = proptest::collection::vec((1u32..(1 << m), 0..segs), 1..40);
        tx.prop_map(move |rows| {
            let mut transactions = Vec::with_capacity(rows.len());
            let mut assignment = Vec::with_capacity(rows.len());
            for (mask, seg) in rows {
                transactions
                    .push(Itemset::new((0..m as u32).filter(|&i| mask & (1 << i) != 0)));
                assignment.push(seg);
            }
            (Dataset::new(m, transactions), assignment, segs)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bound_never_undercounts((d, assignment, segs) in assigned_dataset()) {
        let ossm = Ossm::from_transaction_assignment(&d, &assignment, segs);
        let m = d.num_items();
        for mask in 1u32..(1u32 << m) {
            let x = Itemset::new((0..m as u32).filter(|&i| mask & (1 << i) != 0));
            prop_assert!(
                ossm.upper_bound(&x) >= d.support(&x),
                "bound {} < support {} for {}", ossm.upper_bound(&x), d.support(&x), x
            );
        }
    }

    #[test]
    fn refining_a_segmentation_tightens_bounds((d, assignment, segs) in assigned_dataset()) {
        // Coarse = everything in one segment; fine = the random assignment.
        let coarse = Ossm::from_transaction_assignment(&d, &vec![0; d.len()], 1);
        let fine = Ossm::from_transaction_assignment(&d, &assignment, segs);
        let m = d.num_items();
        for mask in 1u32..(1u32 << m) {
            let x = Itemset::new((0..m as u32).filter(|&i| mask & (1 << i) != 0));
            prop_assert!(
                fine.upper_bound(&x) <= coarse.upper_bound(&x),
                "refinement loosened the bound for {}", x
            );
        }
    }

    #[test]
    fn singleton_bounds_are_exact((d, assignment, segs) in assigned_dataset()) {
        let ossm = Ossm::from_transaction_assignment(&d, &assignment, segs);
        for i in 0..d.num_items() as u32 {
            let item = ItemId(i);
            prop_assert_eq!(
                ossm.upper_bound(&Itemset::singleton(item)),
                d.support(&Itemset::singleton(item))
            );
            prop_assert_eq!(ossm.singleton_support(item), d.support(&Itemset::singleton(item)));
        }
    }

    #[test]
    fn pair_specialization_matches_general_bound((d, assignment, segs) in assigned_dataset()) {
        let ossm = Ossm::from_transaction_assignment(&d, &assignment, segs);
        let m = d.num_items() as u32;
        for a in 0..m {
            for b in (a + 1)..m {
                prop_assert_eq!(
                    ossm.upper_bound_pair(ItemId(a), ItemId(b)),
                    ossm.upper_bound(&Itemset::new([a, b]))
                );
            }
        }
    }
}

/// Per-transaction segments give the exact support for every itemset — the
/// paper's "hypothetical extreme case" where `n = |T|`.
#[test]
fn one_transaction_per_segment_is_exact() {
    let d = Dataset::new(
        4,
        vec![
            Itemset::new([0, 1]),
            Itemset::new([1, 2, 3]),
            Itemset::new([0, 3]),
            Itemset::new([2]),
        ],
    );
    let assignment: Vec<usize> = (0..d.len()).collect();
    let ossm = Ossm::from_transaction_assignment(&d, &assignment, d.len());
    for mask in 1u32..16 {
        let x = Itemset::new((0..4u32).filter(|&i| mask & (1 << i) != 0));
        assert_eq!(ossm.upper_bound(&x), d.support(&x), "itemset {x}");
    }
}

/// The page-store construction and the aggregate construction agree.
#[test]
fn page_and_aggregate_constructions_agree() {
    let d = ossm_data::gen::QuestConfig {
        num_transactions: 300,
        num_items: 20,
        ..ossm_data::gen::QuestConfig::small()
    }
    .generate();
    let store = PageStore::with_page_count(d, 12);
    let seg = Segmentation::from_groups(
        vec![vec![0, 3, 6, 9], vec![1, 4, 7, 10], vec![2, 5, 8, 11]],
        12,
    );
    let via_pages = Ossm::from_pages(&store, &seg);
    let via_aggregates =
        Ossm::from_aggregates(seg.merge_aggregates(&Aggregate::from_pages(&store)));
    assert_eq!(via_pages, via_aggregates);
    assert_eq!(via_pages.num_transactions(), store.dataset().len() as u64);
}
