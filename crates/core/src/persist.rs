//! OSSM persistence.
//!
//! The OSSM is a compile-time artifact: "a fixed structure that can be
//! computed once at compile-time (pre-processing), and can be used
//! regardless of how the support threshold is changed dynamically"
//! (Section 3). That only pays off if the structure outlives the process —
//! this module gives it a tiny self-describing binary format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "OSSM-MAP", version u32, m u32, n u64,
//! per segment: transactions u64, m × u64 singleton supports
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use crate::segmentation::Aggregate;
use crate::ssm::Ossm;

const MAGIC: &[u8; 8] = b"OSSM-MAP";
const VERSION: u32 = 1;

/// Serializes an OSSM to `w`.
pub fn write_ossm<W: Write>(w: &mut W, ossm: &Ossm) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(ossm.num_items() as u32).to_le_bytes())?;
    w.write_all(&(ossm.num_segments() as u64).to_le_bytes())?;
    for seg in ossm.segments() {
        w.write_all(&seg.transactions().to_le_bytes())?;
        for &s in seg.supports() {
            w.write_all(&s.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserializes an OSSM from `r`.
pub fn read_ossm<R: Read>(r: &mut R) -> io::Result<Ossm> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an OSSM file (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported OSSM version {version}")));
    }
    let m = read_u32(r)? as usize;
    let n = read_u64(r)?;
    if n == 0 {
        return Err(bad("an OSSM must have at least one segment"));
    }
    let n = usize::try_from(n).map_err(|_| bad("segment count overflows usize"))?;
    let mut segments = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let transactions = read_u64(r)?;
        let mut supports = Vec::with_capacity(m);
        for _ in 0..m {
            supports.push(read_u64(r)?);
        }
        segments.push(Aggregate::new(supports, transactions));
    }
    Ok(Ossm::from_aggregates(segments))
}

/// Writes an OSSM to the file at `path`.
pub fn save(path: &Path, ossm: &Ossm) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_ossm(&mut f, ossm)?;
    f.flush()
}

/// Reads an OSSM from the file at `path`.
pub fn load(path: &Path) -> io::Result<Ossm> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_ossm(&mut f)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::OssmBuilder;
    use ossm_data::gen::QuestConfig;
    use ossm_data::PageStore;

    fn sample_ossm() -> Ossm {
        let d = QuestConfig {
            num_transactions: 300,
            num_items: 25,
            ..QuestConfig::small()
        }
        .generate();
        let store = PageStore::with_page_count(d, 12);
        OssmBuilder::new(5).build(&store).0
    }

    #[test]
    fn roundtrip_preserves_the_map() {
        let ossm = sample_ossm();
        let mut buf = Vec::new();
        write_ossm(&mut buf, &ossm).expect("write");
        let back = read_ossm(&mut buf.as_slice()).expect("read");
        assert_eq!(back, ossm);
        // Bounds agree, of course.
        let probe = ossm_data::Itemset::new([1, 7, 13]);
        assert_eq!(back.upper_bound(&probe), ossm.upper_bound(&probe));
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(read_ossm(&mut &b"NOT-OSSM\0\0\0\0"[..]).is_err());
        let ossm = sample_ossm();
        let mut buf = Vec::new();
        write_ossm(&mut buf, &ossm).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(read_ossm(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_zero_segments() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_ossm(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ossm-persist-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("map.ossm");
        let ossm = sample_ossm();
        save(&path, &ossm).expect("save");
        assert_eq!(load(&path).expect("load"), ossm);
        std::fs::remove_file(&path).ok();
    }
}
