//! Segment configurations (Section 4 of the paper).
//!
//! The *configuration* of a segment is the descriptor
//! `(a_{i1} ≥ a_{i2} ≥ … ≥ a_{im})`: the permutation of the `m` items in
//! non-increasing order of their supports inside the segment, with ties
//! broken by the canonical item enumeration (footnote 4: smaller item id
//! first). Lemma 1 shows that merging two segments of the *same*
//! configuration changes no upper bound, which is what makes configurations
//! the unit of lossless merging in segment minimization.

use ossm_data::{ItemId, Itemset};

/// The support-rank permutation of the items within a segment.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Configuration {
    /// Item ids in non-increasing support order, canonical tie-break.
    order: Vec<u32>,
}

impl Configuration {
    /// Computes the configuration of a segment from its support vector.
    pub fn of_supports(supports: &[u64]) -> Self {
        let mut order: Vec<u32> = (0..supports.len() as u32).collect();
        // Descending support; ties by ascending item id. `sort_by_key` with
        // Reverse(support) is stable, and the initial order is ascending id,
        // so the canonical tie-break comes for free.
        order.sort_by_key(|&i| std::cmp::Reverse(supports[i as usize]));
        Configuration { order }
    }

    /// The configuration of a *single-transaction* segment over the domain
    /// `0..m`: members of the transaction first (support 1), non-members
    /// after (support 0), each group in canonical (ascending id) order.
    pub fn of_transaction(t: &Itemset, m: usize) -> Self {
        let mut order = Vec::with_capacity(m);
        order.extend(t.items().iter().map(|i| i.0));
        let mut member = vec![false; m];
        for i in t.items() {
            member[i.index()] = true;
        }
        order.extend((0..m as u32).filter(|&i| !member[i as usize]));
        Configuration { order }
    }

    /// The item ids in configuration (non-increasing support) order.
    #[inline]
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Number of items.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.order.len()
    }

    /// `rank()[i]` = position of item `i` in the configuration (0 = most
    /// frequent).
    pub fn rank(&self) -> Vec<usize> {
        let mut rank = vec![0usize; self.order.len()];
        for (pos, &item) in self.order.iter().enumerate() {
            rank[item as usize] = pos;
        }
        rank
    }

    /// Whether a support vector *realizes* this configuration, i.e. is
    /// non-increasing along the configuration's order with canonical
    /// tie-break (equal supports must appear in ascending item id).
    pub fn is_realized_by(&self, supports: &[u64]) -> bool {
        if supports.len() != self.order.len() {
            return false;
        }
        self.order.windows(2).all(|w| {
            let (a, b) = (w[0] as usize, w[1] as usize);
            supports[a] > supports[b] || (supports[a] == supports[b] && a < b)
        })
    }
}

/// The compact grouping key for single-transaction configurations.
///
/// Distinct transactions have distinct configurations **except** that the
/// canonical prefixes `{0}, {0,1}, …, {0,…,m−1}` all share the canonical
/// configuration `(0, 1, …, m−1)` — which is why there are `2^m − m`
/// possible configurations rather than `2^m − 1` (Section 4.2). Grouping by
/// this key is therefore equivalent to grouping by full configuration while
/// staying O(|t|) per transaction instead of O(m).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransactionConfigKey {
    /// The transaction is a canonical prefix `{0, …, k−1}` (for some k ≥ 0,
    /// including the empty transaction): canonical configuration.
    CanonicalPrefix,
    /// Any other transaction: the configuration is unique to its itemset.
    Itemset(Vec<u32>),
}

impl TransactionConfigKey {
    /// Computes the key for a transaction over the domain `0..m`.
    pub fn of(t: &Itemset, _m: usize) -> Self {
        let is_prefix = t
            .items()
            .iter()
            .enumerate()
            .all(|(pos, item)| item.index() == pos);
        if is_prefix {
            TransactionConfigKey::CanonicalPrefix
        } else {
            TransactionConfigKey::Itemset(t.items().iter().map(|i| i.0).collect())
        }
    }
}

/// Upper bound of Theorem 1 on the number of distinct configurations:
/// `2^m − m`, saturating at `u64::MAX` for large `m` (the point of the
/// theorem is precisely that this is astronomically large).
pub fn max_configurations(m: usize) -> u64 {
    if m == 0 {
        return 0;
    }
    if m >= 64 {
        return u64::MAX;
    }
    (1u64 << m) - m as u64
}

/// Exhaustively enumerates the distinct single-transaction configurations
/// over `0..m` (test/analysis helper; exponential in `m`).
///
/// # Panics
/// Panics if `m > 20` to avoid accidental blow-ups.
pub fn enumerate_transaction_configurations(m: usize) -> Vec<Configuration> {
    assert!(m <= 20, "enumeration is exponential; refusing m > 20");
    let mut seen = std::collections::BTreeSet::new();
    for mask in 1u32..(1u32 << m) {
        let items: Vec<u32> = (0..m as u32).filter(|&i| mask & (1 << i) != 0).collect();
        let t = Itemset::new(items);
        seen.insert(Configuration::of_transaction(&t, m));
    }
    seen.into_iter().collect()
}

/// Convenience: the configuration of a segment aggregate.
pub fn configuration_of(aggregate: &crate::segmentation::Aggregate) -> Configuration {
    Configuration::of_supports(aggregate.supports())
}

/// Convenience re-export of footnote 4's tie-break as a comparator:
/// orders items by `(support desc, id asc)`.
pub fn canonical_item_cmp(supports: &[u64], a: ItemId, b: ItemId) -> std::cmp::Ordering {
    supports[b.index()]
        .cmp(&supports[a.index()])
        .then_with(|| a.index().cmp(&b.index()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    #[test]
    fn of_supports_orders_descending_with_canonical_ties() {
        let c = Configuration::of_supports(&[5, 9, 5, 0]);
        assert_eq!(c.order(), &[1, 0, 2, 3], "ties 0 and 2 broken by id");
        assert!(c.is_realized_by(&[5, 9, 5, 0]));
        assert!(!c.is_realized_by(&[9, 5, 5, 0]));
    }

    #[test]
    fn rank_inverts_order() {
        let c = Configuration::of_supports(&[1, 3, 2]);
        assert_eq!(c.order(), &[1, 2, 0]);
        assert_eq!(c.rank(), vec![2, 0, 1]);
    }

    #[test]
    fn transaction_configuration_lists_members_first() {
        let c = Configuration::of_transaction(&set(&[1, 3]), 5);
        assert_eq!(c.order(), &[1, 3, 0, 2, 4]);
    }

    #[test]
    fn transaction_config_matches_support_config() {
        // of_transaction must agree with of_supports on the indicator vector.
        for items in [
            vec![],
            vec![0],
            vec![2],
            vec![0, 1],
            vec![1, 3],
            vec![0, 1, 2, 3, 4],
        ] {
            let t = set(&items.iter().map(|&i| i as u32).collect::<Vec<_>>());
            let mut indicator = vec![0u64; 5];
            for i in t.items() {
                indicator[i.index()] = 1;
            }
            assert_eq!(
                Configuration::of_transaction(&t, 5),
                Configuration::of_supports(&indicator),
                "mismatch for {t}"
            );
        }
    }

    #[test]
    fn canonical_prefixes_share_configuration() {
        let m = 4;
        let c1 = Configuration::of_transaction(&set(&[0]), m);
        let c2 = Configuration::of_transaction(&set(&[0, 1]), m);
        let c3 = Configuration::of_transaction(&set(&[0, 1, 2, 3]), m);
        assert_eq!(c1, c2);
        assert_eq!(c2, c3);
        let other = Configuration::of_transaction(&set(&[1]), m);
        assert_ne!(c1, other);
    }

    #[test]
    fn key_groups_exactly_like_full_configuration() {
        // For every pair of non-empty itemsets over m=5: same key ⇔ same
        // configuration.
        let m = 5;
        let sets: Vec<Itemset> = (1u32..(1 << m))
            .map(|mask| {
                set(&(0..m as u32)
                    .filter(|&i| mask & (1 << i) != 0)
                    .collect::<Vec<_>>())
            })
            .collect();
        for a in &sets {
            for b in &sets {
                let same_cfg =
                    Configuration::of_transaction(a, m) == Configuration::of_transaction(b, m);
                let same_key = TransactionConfigKey::of(a, m) == TransactionConfigKey::of(b, m);
                assert_eq!(same_cfg, same_key, "disagreement for {a} vs {b}");
            }
        }
    }

    #[test]
    fn distinct_configuration_count_is_2m_minus_m() {
        for m in 1..=10 {
            let count = enumerate_transaction_configurations(m).len() as u64;
            assert_eq!(count, max_configurations(m), "m = {m}");
        }
    }

    #[test]
    fn max_configurations_edge_cases() {
        assert_eq!(max_configurations(0), 0);
        assert_eq!(max_configurations(1), 1);
        assert_eq!(max_configurations(2), 2);
        assert_eq!(max_configurations(3), 5);
        assert_eq!(max_configurations(63), (1u64 << 63) - 63);
        assert_eq!(max_configurations(64), u64::MAX);
        assert_eq!(
            max_configurations(1000),
            u64::MAX,
            "saturates for paper-scale m"
        );
    }

    #[test]
    fn canonical_cmp_orders_by_support_then_id() {
        use std::cmp::Ordering::*;
        let sup = [3, 7, 3];
        assert_eq!(canonical_item_cmp(&sup, ItemId(1), ItemId(0)), Less);
        assert_eq!(
            canonical_item_cmp(&sup, ItemId(0), ItemId(2)),
            Less,
            "tie → smaller id first"
        );
        assert_eq!(canonical_item_cmp(&sup, ItemId(2), ItemId(0)), Greater);
        assert_eq!(canonical_item_cmp(&sup, ItemId(1), ItemId(1)), Equal);
    }
}
