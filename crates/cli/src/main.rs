//! `ossm` — command-line front door to the OSSM reproduction.
//!
//! Run `ossm help` for the subcommand list.
//!
//! Exit codes: 0 success, 1 argument/parse/IO error, 2 a gate failed
//! (`ossm obs diff` with a breached threshold).

#![forbid(unsafe_code)]

fn main() {
    // If this process panics (or a `faults`-injected error fires), the
    // flight recorder dumps its last events as JSONL for `ossm obs dump`.
    ossm_obs::recorder::install_panic_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ossm_cli::run_with_code(&args) {
        Ok(outcome) => {
            print!("{}", outcome.report);
            std::process::exit(outcome.code);
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", ossm_cli::USAGE);
            std::process::exit(1);
        }
    }
}
