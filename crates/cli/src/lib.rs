//! # ossm-cli — the `ossm` command-line tool
//!
//! A thin, scriptable front end over the whole reproduction: generate
//! paper-shaped workloads, pack them into page files, build and persist
//! OSSMs with any of the paper's segmentation strategies, and mine with
//! any of the implemented algorithms — with or without the map.
//!
//! ```console
//! $ ossm generate --kind=skewed --transactions=20000 --items=500 --out=data.db
//! $ ossm pack --in=data.db --out=data.pages
//! $ ossm segment --in=data.pages --nuser=40 --strategy=random-greedy --out=map.ossm
//! $ ossm mine --in=data.db --minsup=0.01 --ossm=map.ossm --top=5
//! $ ossm recipe --nuser=150 --pages=50000 --skewed
//! ```
//!
//! Every subcommand is a pure function from arguments to a report string,
//! so the whole surface is unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ossm_bench::cli::Options;
use ossm_bench::regress;
use ossm_bench::table::{fmt_bytes, fmt_duration, Table};
use ossm_bench::traceio::TraceConfig;
use ossm_core::{
    persist, recommend, ApplicationProfile, Ossm, OssmBuilder, RecommendedStrategy, Strategy,
};
use ossm_data::disk::DiskStore;
use ossm_data::gen::{AlarmConfig, QuestConfig, SkewedConfig};
use ossm_data::{Dataset, Itemset};
use ossm_mining::{
    Apriori, CountingBackend, DepthProject, Dhp, FpGrowth, MiningOutcome, OssmFilter, Partition,
    StreamingApriori,
};
use ossm_obs::{Reporter, StatsFormat};

/// Usage text printed on errors and by `ossm help`.
pub const USAGE: &str = "\
usage: ossm <command> [--key=value ...]

commands:
  generate  --kind=regular|skewed|alarm --transactions=N --items=M
            [--seed=S] --out=FILE
  pack      --in=FILE --out=FILE.pages [--page-bytes=4096]
  inspect   --in=FILE            (flat .db or paged .pages file)
  segment   --in=FILE.pages --nuser=N [--strategy=greedy|rc|random|
            random-rc|random-greedy|auto] [--nmid=200] [--seed=S]
            [--bubble-pct=P --bubble-minsup=F] [--out=FILE.ossm]
  mine      --in=FILE --minsup=F [--algo=apriori|dhp|partition|depth|
            fpgrowth|eclat|charm|genmax|streaming] [--ossm=FILE.ossm]
            [--backend=linear|hashtree|bitmap] [--top=K]
  recipe    --nuser=N --pages=P [--skewed] [--cost-sensitive]
  verify    --in=FILE             (check every checksum of a paged store
            or OSSM map; exits non-zero on any corruption)
  repair    --in=FILE.pages [--out=FILE.pages]   (rewrite a damaged
            paged store from its intact pages and index; lost pages keep
            their exact index aggregate or a widened sound one)
  obs       diff BASELINE.json CURRENT.json [--count-drift=0.05]
            [--max-time-regress=F]   (compare two instrumentation
            snapshots, e.g. BENCH_baseline.json vs a fresh BENCH_obs.json;
            exits 2 when a gate fails, 1 on unreadable input)
  obs       dump FILE.jsonl       (render a flight-recorder dump — the
            JSONL file written on panic or injected fault — as a
            human-readable timeline)
  obs       serve [ADDR] [--duration=SECS] [--port-file=PATH]
            [--batch=64] [--pace-ms=2] [--items=100] [--queries=8]
            (run a live ingest workload and expose the registry over
            HTTP: Prometheus text at /metrics, JSON at /metrics.json,
            with per-second rates and p50/p95/p99 latency quantiles;
            default 127.0.0.1:9185, port 0 picks a free port,
            --duration=0 serves until interrupted)
  obs       top [--interval=SECS] [--intervals=N] [--batch=64]
            [--pace-ms=2]   (watch mode: print interval-delta frames —
            totals, deltas, rates, quantiles — while a live ingest
            workload runs)
  help

global flags:
  --stats=table|json   append an instrumentation report (bound
                       evaluations, pruned candidates, phase timings,
                       and — with the `obs-alloc` feature — per-subsystem
                       memory gauges) to the command's output; bare
                       --stats means --stats=table. Needs the default
                       `obs` feature.
  --trace[=chrome|folded] [PATH]
                       record a hierarchical span trace of the command
                       and write it to PATH (or --trace-out=PATH, or
                       trace.json / trace.folded). chrome traces open in
                       Perfetto / chrome://tracing; folded stacks feed
                       flamegraph.pl. Needs the default `obs` feature.
  --threads=N          worker threads for parallel counting / segmentation
                       (default: OSSM_THREADS, else the CPU count). Results
                       are bit-identical at any thread count.";

/// Resets the process-wide thread override on drop, so one invocation's
/// `--threads` cannot leak into the next (library callers and tests drive
/// [`run`] repeatedly in one process).
struct ThreadsOverride(bool);

impl Drop for ThreadsOverride {
    fn drop(&mut self) {
        if self.0 {
            ossm_par::set_threads(None);
        }
    }
}

/// When the `obs-alloc` feature is on, every heap allocation of the
/// process is counted and attributed to the active `alloc_scope`, and the
/// `--stats` report grows `mem.alloc.*` / `mem.rss.*` rows. Opt-in because
/// the count costs two atomic ops per allocation.
#[cfg(feature = "obs-alloc")]
#[global_allocator]
static ALLOC: ossm_alloc::CountingAlloc = ossm_alloc::CountingAlloc::new();

/// A finished CLI invocation: the report to print and the process exit
/// code. `code` is 0 except for commands that gate (today only `obs diff`,
/// which exits 2 when a regression gate fails). Argument, parse, and IO
/// errors surface as `Err` from [`run_with_code`] and exit 1, so scripts
/// can tell "the comparison ran and failed" from "the comparison never
/// ran".
#[derive(Debug)]
pub struct Outcome {
    /// The report text to print on stdout.
    pub report: String,
    /// Process exit code: 0 = success, 2 = a gate failed.
    pub code: i32,
}

/// Runs a CLI invocation; returns the report to print. Gate failures that
/// [`run_with_code`] reports as exit code 2 still return `Ok` here — use
/// `run_with_code` when the distinction matters.
pub fn run(args: &[String]) -> Result<String, String> {
    run_with_code(args).map(|o| o.report)
}

/// Runs a CLI invocation; returns the report and the exit code.
pub fn run_with_code(args: &[String]) -> Result<Outcome, String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let (opts, positionals) = Options::parse_with_positionals(rest.iter().cloned());
    // `obs diff` consumes its positionals itself (they are input files, so
    // a trace path there must go through --trace-out); for every other
    // command the only legal positional is the --trace output path.
    let trace = if command == "obs" {
        TraceConfig::from_options(&opts, None)?
    } else {
        let tc = TraceConfig::from_options(&opts, positionals.first().map(String::as_str))?;
        match (&tc, positionals.len()) {
            (None, 1..) => {
                return Err(format!(
                    "unexpected argument {:?}: positional paths are only used with --trace",
                    positionals[0]
                ))
            }
            (Some(_), 2..) => {
                return Err(format!(
                    "unexpected argument {:?}: --trace takes at most one output path",
                    positionals[1]
                ))
            }
            _ => {}
        }
        tc
    };
    let _threads_guard = match opts.raw("threads") {
        None => ThreadsOverride(false),
        Some(v) => {
            let n = v
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("--threads={v}: expected a positive integer"))?;
            ossm_par::set_threads(Some(n));
            ThreadsOverride(true)
        }
    };
    let stats = stats_format(&opts)?;
    if stats.is_some() {
        // Report only what *this* invocation records.
        ossm_obs::registry().reset();
    }
    if let Some(tc) = &trace {
        tc.begin();
    }
    // The root span covers the whole command, so every miner/builder span
    // hangs off `cli.<command>` in the exported trace. Scoped so it closes
    // before `finish()` drains the buffer.
    let ok0 = |report: String| (report, 0);
    let (report, code) = {
        let _cmd_span = ossm_obs::span(format!("cli.{command}"));
        match command.as_str() {
            "generate" => generate(&opts).map(ok0),
            "pack" => pack(&opts).map(ok0),
            "inspect" => inspect(&opts).map(ok0),
            "segment" => segment(&opts).map(ok0),
            "mine" => mine(&opts).map(ok0),
            "recipe" => recipe(&opts).map(ok0),
            "verify" => verify(&opts).map(ok0),
            "repair" => repair(&opts).map(ok0),
            "obs" => obs(&opts, &positionals),
            "help" | "--help" | "-h" => Ok((format!("{USAGE}\n"), 0)),
            other => Err(format!("unknown command {other:?}")),
        }
    }?;
    let report = match &trace {
        None => report,
        Some(tc) => {
            let note = tc.finish()?;
            format!("{report}{note}\n")
        }
    };
    let report = match stats {
        None => report,
        Some(format) => {
            let snapshot = ossm_obs::registry().snapshot();
            let rendered = Reporter::new(format).render(&snapshot);
            if rendered.is_empty() {
                let note = if ossm_obs::ENABLED {
                    "-- stats: nothing recorded --\n"
                } else {
                    "-- stats: instrumentation compiled out (rebuild with the `obs` feature) --\n"
                };
                format!("{report}{note}")
            } else if format == StatsFormat::Table {
                format!("{report}\n-- stats --\n{rendered}")
            } else {
                format!("{report}{rendered}")
            }
        }
    };
    Ok(Outcome { report, code })
}

/// Resolves the `--stats` flag: `--stats=table|json`, or bare `--stats`
/// for the table format. `None` when absent.
fn stats_format(opts: &Options) -> Result<Option<StatsFormat>, String> {
    let value: String = opts.get("stats", String::new());
    if !value.is_empty() {
        return value.parse().map(Some);
    }
    Ok(opts.flag("stats").then_some(StatsFormat::Table))
}

fn required(opts: &Options, key: &str) -> Result<String, String> {
    let sentinel = String::new();
    let v: String = opts.get(key, sentinel);
    if v.is_empty() {
        return Err(format!("--{key}=… is required"));
    }
    Ok(v)
}

fn generate(opts: &Options) -> Result<String, String> {
    let kind = required(opts, "kind")?;
    let out = PathBuf::from(required(opts, "out")?);
    let n: usize = opts.get("transactions", 10_000);
    let m: usize = opts.get("items", 1000);
    let seed: u64 = opts.get("seed", 1);
    let dataset = match kind.as_str() {
        "regular" => QuestConfig {
            num_transactions: n,
            num_items: m,
            num_patterns: (m * 2).max(10),
            seed,
            ..QuestConfig::default()
        }
        .generate(),
        "skewed" => SkewedConfig {
            num_transactions: n,
            num_items: m,
            seed,
            ..Default::default()
        }
        .generate(),
        "alarm" | "nokia" => AlarmConfig {
            num_windows: n,
            num_alarm_types: m,
            seed,
            ..Default::default()
        }
        .generate(),
        other => return Err(format!("unknown kind {other:?} (regular|skewed|alarm)")),
    };
    ossm_data::io::save(&out, &dataset).map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(format!(
        "generated {kind}: {} transactions over {} items -> {}\n",
        dataset.len(),
        dataset.num_items(),
        out.display()
    ))
}

fn pack(opts: &Options) -> Result<String, String> {
    let input = PathBuf::from(required(opts, "in")?);
    let out = PathBuf::from(required(opts, "out")?);
    let page_bytes: usize = opts.get("page-bytes", ossm_data::page::DEFAULT_PAGE_BYTES);
    let dataset = load_dataset(&input)?;
    ossm_data::disk::write_paged(&out, &dataset, page_bytes)
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    let store = DiskStore::open(&out, 1).map_err(|e| e.to_string())?;
    Ok(format!(
        "packed {} transactions into {} pages of {} bytes -> {}\n",
        dataset.len(),
        store.num_pages(),
        page_bytes,
        out.display()
    ))
}

fn inspect(opts: &Options) -> Result<String, String> {
    let input = PathBuf::from(required(opts, "in")?);
    let mut out = String::new();
    match classify(&input)? {
        FileKind::Paged => {
            let store = DiskStore::open(&input, 1).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "paged dataset: {} pages, {} transactions, {} items",
                store.num_pages(),
                store.num_transactions(),
                store.num_items()
            );
            let _ = writeln!(
                out,
                "aggregate index loaded with zero data-page reads (io: {:?})",
                store.io_stats()
            );
        }
        FileKind::Flat => {
            let d = load_dataset(&input)?;
            let avg = if d.is_empty() {
                0.0
            } else {
                d.transactions().iter().map(Itemset::len).sum::<usize>() as f64 / d.len() as f64
            };
            let _ = writeln!(
                out,
                "flat dataset: {} transactions, {} items, avg basket {:.2}",
                d.len(),
                d.num_items(),
                avg
            );
            let singles = d.singleton_supports();
            let mut top: Vec<usize> = (0..d.num_items()).collect();
            top.sort_by_key(|&i| std::cmp::Reverse(singles[i]));
            let _ = writeln!(out, "top items:");
            for &i in top.iter().take(5) {
                let _ = writeln!(
                    out,
                    "  item {i}: support {} ({:.2}%)",
                    singles[i],
                    100.0 * singles[i] as f64 / d.len().max(1) as f64
                );
            }
        }
        FileKind::Map => {
            let ossm = persist::load(&input).map_err(|e| format!("{}: {e}", input.display()))?;
            let _ = writeln!(
                out,
                "OSSM map: {} segments over {} items, {} transactions",
                ossm.num_segments(),
                ossm.num_items(),
                ossm.num_transactions()
            );
        }
    }
    Ok(out)
}

fn parse_strategy(
    opts: &Options,
    store: &ossm_data::PageStore,
    n_user: usize,
) -> Result<Strategy, String> {
    let name: String = opts.get("strategy", "greedy".to_owned());
    let n_mid: usize = opts.get("nmid", 200);
    Ok(match name.as_str() {
        "greedy" => Strategy::Greedy,
        "rc" => Strategy::Rc,
        "random" => Strategy::Random,
        "random-rc" => Strategy::RandomRc { n_mid },
        "random-greedy" => Strategy::RandomGreedy { n_mid },
        // Measure the data and apply the Figure 7 recipe.
        "auto" => ossm_core::recipe::auto_strategy(store, n_user, opts.flag("cost-sensitive")),
        other => return Err(format!("unknown strategy {other:?}")),
    })
}

fn segment(opts: &Options) -> Result<String, String> {
    let input = PathBuf::from(required(opts, "in")?);
    let n_user: usize = opts.get("nuser", 40);
    let seed: u64 = opts.get("seed", 1);
    let store = load_page_store(&input, opts)?;
    let strategy = parse_strategy(opts, &store, n_user)?;
    let mut builder = OssmBuilder::new(n_user).strategy(strategy).seed(seed);
    let bubble_pct: f64 = opts.get("bubble-pct", 0.0);
    if bubble_pct > 0.0 {
        let bubble_minsup: f64 = opts.get("bubble-minsup", 0.0025);
        builder = builder.bubble(bubble_minsup, bubble_pct);
    }
    let (ossm, report) = builder.build(&store);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "built {} OSSM: {} pages -> {} segments in {} ({}, eq.2 loss {})",
        report.algorithm,
        report.num_pages,
        report.num_segments,
        fmt_duration(report.segmentation_time),
        fmt_bytes(report.memory_bytes),
        report.total_loss
    );
    if let Some(len) = report.bubble_len {
        let _ = writeln!(out, "bubble list: {len} items");
    }
    let save: String = opts.get("out", String::new());
    if !save.is_empty() {
        let path = PathBuf::from(save);
        persist::save_atomic(&path, &ossm)
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(out, "saved -> {}", path.display());
    }
    Ok(out)
}

fn mine(opts: &Options) -> Result<String, String> {
    let input = PathBuf::from(required(opts, "in")?);
    let minsup: f64 = opts.get("minsup", 0.01);
    let algo: String = opts.get("algo", "apriori".to_owned());
    let top: usize = opts.get("top", 10);
    let ossm_path: String = opts.get("ossm", String::new());
    let ossm: Option<Ossm> = if ossm_path.is_empty() {
        None
    } else {
        Some(persist::load(Path::new(&ossm_path)).map_err(|e| format!("loading OSSM: {e}"))?)
    };

    // The streaming miner works straight off a page file; everything else
    // needs the dataset in memory.
    if algo == "streaming" {
        if classify(&input)? != FileKind::Paged {
            return Err("--algo=streaming needs a paged input (see `ossm pack`)".into());
        }
        let mut store =
            DiskStore::open(&input, opts.get("pool-pages", 64)).map_err(|e| e.to_string())?;
        let min_support = ((minsup * store.num_transactions() as f64).ceil() as u64).max(1);
        let out = StreamingApriori::new()
            .mine(&mut store, min_support, ossm.as_ref())
            .map_err(|e| e.to_string())?;
        let mut report = String::new();
        let _ = writeln!(
            report,
            "streaming apriori: {} frequent patterns, {} passes, {} page reads",
            out.patterns.len(),
            out.passes,
            out.page_reads
        );
        report.push_str(&top_patterns(&out.patterns, top));
        return Ok(report);
    }

    let dataset = load_dataset(&input)?;
    let min_support = dataset.absolute_threshold(minsup).max(1);
    // Counting back-end for the level-wise miners; Apriori keeps its
    // historical hash-tree default, DHP and Partition their linear scan.
    let backend: Option<CountingBackend> = opts.raw("backend").map(str::parse).transpose()?;
    let outcome: MiningOutcome = match (algo.as_str(), &ossm) {
        ("apriori", Some(map)) => Apriori::new()
            .with_backend(backend.unwrap_or(CountingBackend::HashTree))
            .mine_filtered(&dataset, min_support, &OssmFilter::new(map)),
        ("apriori", None) => Apriori::new()
            .with_backend(backend.unwrap_or(CountingBackend::HashTree))
            .mine(&dataset, min_support),
        ("dhp", Some(map)) => {
            let mut dhp = Dhp::default();
            if let Some(b) = backend {
                dhp.backend = b;
            }
            dhp.mine_filtered(&dataset, min_support, &OssmFilter::new(map))
        }
        ("dhp", None) => {
            let mut dhp = Dhp::default();
            if let Some(b) = backend {
                dhp.backend = b;
            }
            dhp.mine(&dataset, min_support)
        }
        ("partition", _) => {
            let mut part = Partition::new(opts.get("partitions", 4)).parallel();
            if let Some(b) = backend {
                part.backend = b;
            }
            part.mine(&dataset, min_support)
        }
        ("depth", Some(map)) => {
            DepthProject::new().mine_filtered(&dataset, min_support, &OssmFilter::new(map))
        }
        ("depth", None) => DepthProject::new().mine(&dataset, min_support),
        ("fpgrowth", _) => FpGrowth::new().mine(&dataset, min_support),
        ("eclat", ossm) => {
            ossm_mining::Eclat::new().mine_filtered(&dataset, min_support, ossm.as_ref())
        }
        ("charm", _) => ossm_mining::Charm::new().mine(&dataset, min_support),
        ("genmax", _) => ossm_mining::GenMax::new().mine(&dataset, min_support),
        (other, _) => return Err(format!("unknown algorithm {other:?}")),
    };

    let mut report = String::new();
    let _ = writeln!(
        report,
        "{algo}: {} frequent patterns (min support {min_support}) in {}",
        outcome.patterns.len(),
        fmt_duration(outcome.metrics.elapsed)
    );
    if outcome.metrics.total_filtered_out() > 0 {
        let _ = writeln!(
            report,
            "OSSM pruned {} candidates before counting ({} counted)",
            outcome.metrics.total_filtered_out(),
            outcome.metrics.total_counted()
        );
    }
    report.push_str(&top_patterns(&outcome.patterns, top));
    Ok(report)
}

fn top_patterns(patterns: &ossm_mining::FrequentPatterns, top: usize) -> String {
    let mut rows: Vec<(&Itemset, u64)> = patterns.iter().collect();
    rows.sort_by_key(|&(p, s)| (std::cmp::Reverse(s), p.clone()));
    let mut table = Table::new(["pattern", "support"]);
    for (p, s) in rows.into_iter().take(top) {
        table.row([format!("{p}"), s.to_string()]);
    }
    table.to_markdown()
}

fn recipe(opts: &Options) -> Result<String, String> {
    let n_user: usize = opts.get("nuser", 40);
    let pages: usize = opts.get("pages", 500);
    let profile = ApplicationProfile {
        large_n_user: n_user >= 100,
        skewed_data: opts.flag("skewed"),
        segmentation_cost_an_issue: opts.flag("cost-sensitive"),
        very_large_p: pages >= 10_000,
    };
    let rec: RecommendedStrategy = recommend(profile);
    Ok(format!(
        "profile: n_user = {n_user}, p = {pages}, skewed = {}, cost-sensitive = {}\n\
         Figure 7 recommends: {rec}\n",
        profile.skewed_data, profile.segmentation_cost_an_issue
    ))
}

/// `ossm verify --in=FILE` — checks every checksum of a persistent
/// artifact. Clean files report and exit zero; any detected corruption is
/// returned as an error, so the binary exits non-zero (scriptable as a
/// pre-flight check before trusting a map's bounds).
fn verify(opts: &Options) -> Result<String, String> {
    let input = PathBuf::from(required(opts, "in")?);
    match classify(&input)? {
        FileKind::Paged => {
            let scan = ossm_data::repair::scan_store(&input)
                .map_err(|e| format!("{}: {e}", input.display()))?;
            if scan.is_clean() {
                Ok(format!("{}: {}\n", input.display(), scan.describe()))
            } else {
                Err(format!(
                    "{}: {}\nrun `ossm repair --in={}` to rebuild from the intact parts",
                    input.display(),
                    scan.describe(),
                    input.display()
                ))
            }
        }
        FileKind::Map => {
            let ossm =
                persist::load(&input).map_err(|e| format!("{}: corrupt: {e}", input.display()))?;
            Ok(format!(
                "{}: clean: OSSM over {} items, {} segments, {} transactions, checksum verified\n",
                input.display(),
                ossm.num_items(),
                ossm.num_segments(),
                ossm.num_transactions()
            ))
        }
        FileKind::Flat => {
            // The flat OSSMDATA codec predates checksums; a full decode
            // still validates structure, domains, and item ordering.
            let d = ossm_data::io::load(&input)
                .map_err(|e| format!("{}: corrupt: {e}", input.display()))?;
            Ok(format!(
                "{}: structurally valid: {} transactions over {} items \
                 (flat format carries no checksums)\n",
                input.display(),
                d.len(),
                d.num_items()
            ))
        }
    }
}

/// `ossm repair --in=FILE [--out=FILE]` — rewrites a damaged paged store
/// as a clean v2 store, salvaging intact pages verbatim, keeping exact
/// index aggregates for pages whose data is lost, and widening (sound
/// over-estimate) where both are gone. Defaults to repairing in place.
fn repair(opts: &Options) -> Result<String, String> {
    let input = PathBuf::from(required(opts, "in")?);
    if classify(&input)? != FileKind::Paged {
        return Err("repair works on paged stores (see `ossm pack`)".into());
    }
    let out_s: String = opts.get("out", String::new());
    let out = if out_s.is_empty() {
        input.clone()
    } else {
        PathBuf::from(out_s)
    };
    let outcome = ossm_data::repair::repair_store(&input, &out)
        .map_err(|e| format!("{}: {e}", input.display()))?;
    Ok(format!(
        "repaired {} -> {}: {} pages restored, {} kept exact index aggregates, \
         {} widened to sound over-estimates{}\n",
        input.display(),
        out.display(),
        outcome.restored,
        outcome.quarantined,
        outcome.widened,
        if outcome.index_rebuilt {
            " (index rebuilt)"
        } else {
            ""
        }
    ))
}

/// `ossm obs diff BASELINE CURRENT` — compares two instrumentation
/// snapshot files (the `BENCH_obs.json` line format) with the same
/// flattening and thresholds as the `regress` bench binary, and prints its
/// markdown report. Exit codes separate the two failure modes: a
/// comparison that ran and breached a gate exits 2, while unreadable or
/// unparseable input is an `Err` (exit 1) — a script can retry the former
/// baseline-side and must fix the latter.
///
/// `ossm obs dump FILE.jsonl` — renders a flight-recorder dump (written on
/// panic or injected fault) as a human-readable timeline.
fn obs(opts: &Options, positionals: &[String]) -> Result<(String, i32), String> {
    const OBS_USAGE: &str = "usage: ossm obs diff BASELINE.json CURRENT.json \
         [--count-drift=0.05] [--mem-drift=0.10] [--max-time-regress=F]\n       \
         ossm obs dump FILE.jsonl\n       \
         ossm obs serve [ADDR] [--duration=SECS] [--port-file=PATH]\n       \
         ossm obs top [--interval=SECS] [--intervals=N]";
    match positionals.split_first() {
        Some((sub, files)) if sub == "diff" => {
            let [baseline_path, current_path] = files else {
                return Err(format!("obs diff takes exactly two files\n{OBS_USAGE}"));
            };
            let read = |path: &String| -> Result<regress::ObsData, String> {
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                regress::parse_obs_lines(&text).map_err(|e| format!("{path}: {e}"))
            };
            let baseline = read(baseline_path)?;
            let current = read(current_path)?;
            let thresholds = regress::Thresholds {
                count_drift: opts.get("count-drift", 0.05f64),
                time_regress: opts
                    .raw("max-time-regress")
                    .map(|v| {
                        v.parse::<f64>()
                            .map_err(|e| format!("--max-time-regress={v}: invalid value ({e})"))
                    })
                    .transpose()?,
                mem_drift: opts.get("mem-drift", regress::Thresholds::default().mem_drift),
            };
            let report = regress::compare(&baseline, &current, &thresholds);
            let code = if report.failed() { 2 } else { 0 };
            Ok((report.to_markdown(&thresholds), code))
        }
        Some((sub, files)) if sub == "dump" => {
            let [path] = files else {
                return Err(format!("obs dump takes exactly one file\n{OBS_USAGE}"));
            };
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let timeline =
                ossm_obs::recorder::render_timeline(&text).map_err(|e| format!("{path}: {e}"))?;
            Ok((timeline, 0))
        }
        Some((sub, rest)) if sub == "serve" => obs_serve(opts, rest).map(|r| (r, 0)),
        Some((sub, rest)) if sub == "top" => obs_top(opts, rest).map(|r| (r, 0)),
        Some((other, _)) => Err(format!("unknown obs subcommand {other:?}\n{OBS_USAGE}")),
        None => Err(format!("missing obs subcommand\n{OBS_USAGE}")),
    }
}

// ---------------------------------------------------------------------------
// Live telemetry: `ossm obs serve` and `ossm obs top`
// ---------------------------------------------------------------------------

/// Batches appended by the synthetic live-ingest workload.
static INGEST_BATCHES: ossm_obs::Counter = ossm_obs::Counter::new("live.ingest.batches");
/// Transactions appended by the synthetic live-ingest workload.
static INGEST_TRANSACTIONS: ossm_obs::Counter = ossm_obs::Counter::new("live.ingest.transactions");

/// Configuration of the synthetic ingest-and-query workload that backs
/// `ossm obs serve` / `ossm obs top`: durable appends into a
/// [`DurableIncrementalOssm`] paced to look like a stream, each batch
/// followed by timed `ub(X)` probes, so the `req.insert.*` /
/// `req.ub.*` latency histograms populate under load.
struct LiveLoad {
    items: usize,
    batch: usize,
    pace: std::time::Duration,
    queries: usize,
    seed: u64,
    dir: PathBuf,
    /// Remove `dir` when the load finishes (set for the default
    /// temp-dir location, not for a user-supplied `--dir`).
    cleanup: bool,
}

/// What the workload did before it stopped.
struct LiveLoadReport {
    batches: u64,
    transactions: u64,
}

fn live_load_config(opts: &Options) -> LiveLoad {
    let dir_s: String = opts.get("dir", String::new());
    let (dir, cleanup) = if dir_s.is_empty() {
        let dir = std::env::temp_dir().join(format!("ossm-live-{}", std::process::id()));
        (dir, true)
    } else {
        (PathBuf::from(dir_s), false)
    };
    LiveLoad {
        items: opts.get("items", 100),
        batch: opts.get("batch", 64),
        pace: std::time::Duration::from_millis(opts.get("pace-ms", 2)),
        queries: opts.get("queries", 8),
        seed: opts.get("seed", 1),
        dir,
        cleanup,
    }
}

/// Runs the ingest workload until `stop` is set or `deadline` passes.
fn run_live_load(
    cfg: &LiveLoad,
    stop: &std::sync::atomic::AtomicBool,
    deadline: Option<std::time::Instant>,
) -> Result<LiveLoadReport, String> {
    use std::sync::atomic::Ordering;

    let (mut map, _report) = ossm_core::DurableIncrementalOssm::open(
        &cfg.dir,
        cfg.items,
        16,
        ossm_core::LossCalculator::all_items(),
    )
    .map_err(|e| format!("opening live map in {}: {e}", cfg.dir.display()))?;
    // A fixed pool of paper-shaped transactions, cycled forever: the
    // load is about latency under a steady stream, not data volume.
    let dataset = SkewedConfig {
        num_transactions: cfg.batch.max(1) * 8,
        num_items: cfg.items,
        seed: cfg.seed,
        ..Default::default()
    }
    .generate();
    let transactions = dataset.transactions();
    let mut report = LiveLoadReport {
        batches: 0,
        transactions: 0,
    };
    // xorshift64: cheap deterministic query-pattern picks (no global
    // RNG dependency, reproducible across runs with the same seed).
    let mut rng = cfg.seed | 1;
    let mut next_item = |m: usize| {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        (rng % m as u64) as u32
    };
    let mut offset = 0usize;
    loop {
        if stop.load(Ordering::SeqCst) || deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            break;
        }
        let end = (offset + cfg.batch.max(1)).min(transactions.len());
        map.append_transactions(&transactions[offset..end])
            .map_err(|e| format!("live append: {e}"))?;
        INGEST_BATCHES.incr();
        INGEST_TRANSACTIONS.add((end - offset) as u64);
        report.batches += 1;
        report.transactions += (end - offset) as u64;
        offset = if end == transactions.len() { 0 } else { end };
        if map.num_segments() > 0 {
            // Serve a burst of ub(X) queries against the current map —
            // the read side of the paper's time-for-memory trade, timed
            // per probe so the latency quantiles mean something.
            let served = map.snapshot();
            for _ in 0..cfg.queries {
                let a = next_item(cfg.items);
                let b = next_item(cfg.items);
                let pattern = ossm_data::Itemset::new([a, b]);
                let _timer = ossm_core::durable::REQ_UB_LATENCY.time();
                std::hint::black_box(served.upper_bound(&pattern));
            }
        }
        if report.batches % 32 == 0 {
            map.checkpoint().map_err(|e| format!("checkpoint: {e}"))?;
        }
        if !cfg.pace.is_zero() {
            std::thread::sleep(cfg.pace);
        }
    }
    map.checkpoint().map_err(|e| format!("checkpoint: {e}"))?;
    drop(map);
    if cfg.cleanup {
        std::fs::remove_dir_all(&cfg.dir).ok();
    }
    Ok(report)
}

/// `ossm obs serve [ADDR]` — expose live metrics over HTTP while an
/// ingest workload runs on the main thread. `--duration=SECS` bounds the
/// run (0 = until interrupted); `--port-file=PATH` writes the bound
/// address, which makes `ADDR` ending in `:0` usable from scripts.
fn obs_serve(opts: &Options, positionals: &[String]) -> Result<String, String> {
    if !ossm_obs::ENABLED {
        return Err(
            "obs serve needs instrumentation; rebuild with the default `obs` feature".into(),
        );
    }
    let addr = positionals
        .first()
        .cloned()
        .unwrap_or_else(|| opts.get("addr", "127.0.0.1:9185".to_owned()));
    let server =
        ossm_obs::MetricsServer::start(&addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr();
    let port_file: String = opts.get("port-file", String::new());
    if !port_file.is_empty() {
        std::fs::write(&port_file, format!("{bound}\n"))
            .map_err(|e| format!("writing {port_file}: {e}"))?;
    }
    let duration: f64 = opts.get("duration", 0.0);
    let deadline = (duration > 0.0)
        .then(|| std::time::Instant::now() + std::time::Duration::from_secs_f64(duration));
    let cfg = live_load_config(opts);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let load = run_live_load(&cfg, &stop, deadline)?;
    let scrapes = ossm_obs::registry()
        .snapshot()
        .counter("live.http.requests");
    server.shutdown();
    Ok(format!(
        "served live metrics on {bound}: {} scrapes while ingesting {} batches \
         ({} transactions)\n",
        scrapes, load.batches, load.transactions,
    ))
}

/// `ossm obs top` — watch mode: run the ingest workload on a background
/// thread and print one interval-delta frame per `--interval` seconds,
/// `--intervals` times.
fn obs_top(opts: &Options, _positionals: &[String]) -> Result<String, String> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    if !ossm_obs::ENABLED {
        return Err("obs top needs instrumentation; rebuild with the default `obs` feature".into());
    }
    let interval: f64 = opts.get("interval", 1.0);
    if !interval.is_finite() || interval <= 0.0 {
        return Err(format!("--interval={interval}: expected seconds > 0"));
    }
    let intervals: usize = opts.get("intervals", 5);
    let cfg = live_load_config(opts);
    let stop = Arc::new(AtomicBool::new(false));
    let load_stop = Arc::clone(&stop);
    let loader = std::thread::Builder::new()
        .name("ossm-live-load".to_string())
        .spawn(move || run_live_load(&cfg, &load_stop, None))
        .map_err(|e| format!("spawning load thread: {e}"))?;
    let mut tracker = ossm_obs::IntervalTracker::new();
    let mut last_frame = String::new();
    for _ in 0..intervals {
        std::thread::sleep(std::time::Duration::from_secs_f64(interval));
        last_frame = tracker.tick().render_watch();
        print!("{last_frame}");
    }
    stop.store(true, Ordering::SeqCst);
    let load = loader
        .join()
        .map_err(|_| "load thread panicked".to_string())??;
    Ok(format!(
        "{last_frame}watched {intervals} intervals of {interval}s while ingesting {} batches \
         ({} transactions)\n",
        load.batches, load.transactions,
    ))
}

#[derive(PartialEq, Eq, Debug)]
enum FileKind {
    Flat,
    Paged,
    Map,
}

fn classify(path: &Path) -> Result<FileKind, String> {
    use std::io::Read as _;
    let mut f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    // Match against the canonical constants — spelling the magic bytes
    // out here would give the format a second definition site (lint R5).
    match &magic {
        m if m == ossm_data::io::MAGIC => Ok(FileKind::Flat),
        m if m == ossm_data::PAGE_MAGIC => Ok(FileKind::Paged),
        m if m == ossm_core::persist::MAGIC => Ok(FileKind::Map),
        _ => Err(format!("{}: unrecognized file format", path.display())),
    }
}

fn load_dataset(path: &Path) -> Result<Dataset, String> {
    match classify(path)? {
        FileKind::Flat => ossm_data::io::load(path).map_err(|e| format!("{}: {e}", path.display())),
        FileKind::Paged => {
            let mut store = DiskStore::open(path, 16).map_err(|e| e.to_string())?;
            store.to_dataset().map_err(|e| e.to_string())
        }
        FileKind::Map => Err(format!("{}: is an OSSM map, not a dataset", path.display())),
    }
}

fn load_page_store(path: &Path, opts: &Options) -> Result<ossm_data::PageStore, String> {
    let page_bytes: usize = opts.get("page-bytes", ossm_data::page::DEFAULT_PAGE_BYTES);
    Ok(ossm_data::PageStore::pack(load_dataset(path)?, page_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ossm-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn run_ok(args: &[&str]) -> String {
        run(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()).expect("command failed")
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_ok(&["help"]).contains("usage: ossm"));
        assert!(run(&["bogus".to_owned()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn full_pipeline_generate_pack_segment_mine() {
        let db = tmp("pipe.db");
        let pages = tmp("pipe.pages");
        let map = tmp("pipe.ossm");
        let db_s = db.to_str().unwrap();
        let pages_s = pages.to_str().unwrap();
        let map_s = map.to_str().unwrap();

        let g = run_ok(&[
            "generate",
            "--kind=skewed",
            "--transactions=2000",
            "--items=100",
            &format!("--out={db_s}"),
        ]);
        assert!(g.contains("2000 transactions"), "{g}");

        let p = run_ok(&["pack", &format!("--in={db_s}"), &format!("--out={pages_s}")]);
        assert!(p.contains("packed 2000 transactions"), "{p}");

        let i = run_ok(&["inspect", &format!("--in={db_s}")]);
        assert!(i.contains("flat dataset: 2000 transactions"), "{i}");
        let ip = run_ok(&["inspect", &format!("--in={pages_s}")]);
        assert!(ip.contains("paged dataset"), "{ip}");

        let s = run_ok(&[
            "segment",
            &format!("--in={pages_s}"),
            "--nuser=6",
            "--strategy=rc",
            &format!("--out={map_s}"),
        ]);
        assert!(s.contains("-> 6 segments"), "{s}");
        assert!(s.contains("saved ->"), "{s}");

        let m = run_ok(&[
            "mine",
            &format!("--in={db_s}"),
            "--minsup=0.05",
            &format!("--ossm={map_s}"),
            "--top=3",
        ]);
        assert!(m.contains("frequent patterns"), "{m}");

        let st = run_ok(&[
            "mine",
            &format!("--in={pages_s}"),
            "--algo=streaming",
            "--minsup=0.05",
            &format!("--ossm={map_s}"),
        ]);
        assert!(st.contains("streaming apriori"), "{st}");

        for f in [db, pages, map] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn miners_agree_through_the_cli() {
        let db = tmp("agree.db");
        let db_s = db.to_str().unwrap().to_owned();
        run_ok(&[
            "generate",
            "--kind=regular",
            "--transactions=1000",
            "--items=50",
            &format!("--out={db_s}"),
        ]);
        // "algo: N frequent patterns …" — extract N.
        let count_of = |algo: &str| -> String {
            let out = run_ok(&[
                "mine",
                &format!("--in={db_s}"),
                "--minsup=0.02",
                &format!("--algo={algo}"),
            ]);
            out.lines()
                .next()
                .unwrap_or("")
                .split(' ')
                .nth(1)
                .unwrap_or("")
                .to_owned()
        };
        let reference = count_of("apriori");
        assert!(
            reference.parse::<u64>().is_ok(),
            "expected a count, got {reference:?}"
        );
        for algo in ["dhp", "partition", "depth", "fpgrowth", "eclat"] {
            assert_eq!(count_of(algo), reference, "{algo} disagrees");
        }
        std::fs::remove_file(db).ok();
    }

    #[cfg(feature = "obs")]
    #[test]
    fn stats_table_reports_nonzero_instrumentation() {
        let db = tmp("stats.db");
        let pages = tmp("stats.pages");
        let db_s = db.to_str().unwrap();
        let pages_s = pages.to_str().unwrap();
        run_ok(&[
            "generate",
            "--kind=regular",
            "--transactions=1500",
            "--items=60",
            &format!("--out={db_s}"),
        ]);
        run_ok(&["pack", &format!("--in={db_s}"), &format!("--out={pages_s}")]);

        let s = run_ok(&[
            "segment",
            &format!("--in={pages_s}"),
            "--nuser=5",
            "--strategy=greedy",
            "--stats=table",
        ]);
        assert!(s.contains("-- stats --"), "{s}");
        assert!(s.contains("core.seg.greedy.merges"), "{s}");
        assert!(s.contains("core.build.segment"), "{s}");

        let m = run_ok(&[
            "mine",
            &format!("--in={db_s}"),
            "--minsup=0.02",
            "--stats", // bare flag defaults to the table format
        ]);
        assert!(m.contains("mining.apriori.level2.generated"), "{m}");

        for f in [db, pages] {
            std::fs::remove_file(f).ok();
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn stats_json_lines_are_machine_parseable() {
        let db = tmp("stats-json.db");
        let db_s = db.to_str().unwrap();
        run_ok(&[
            "generate",
            "--kind=skewed",
            "--transactions=800",
            "--items=40",
            &format!("--out={db_s}"),
        ]);
        let m = run_ok(&[
            "mine",
            &format!("--in={db_s}"),
            "--minsup=0.05",
            "--stats=json",
        ]);
        let json_lines: Vec<&str> = m.lines().filter(|l| l.starts_with('{')).collect();
        assert!(!json_lines.is_empty(), "{m}");
        for line in json_lines {
            assert!(line.ends_with('}'), "{line}");
            assert!(line.contains(r#""type":"#), "{line}");
            assert!(line.contains(r#""name":"#), "{line}");
        }
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn stats_rejects_unknown_formats() {
        assert!(run(&["help".to_owned(), "--stats=xml".to_owned()]).is_err());
    }

    #[test]
    fn recipe_command() {
        let r = run_ok(&["recipe", "--nuser=150", "--pages=50000", "--skewed"]);
        assert!(r.contains("Random"), "{r}");
        let r2 = run_ok(&["recipe", "--nuser=40", "--pages=50000", "--cost-sensitive"]);
        assert!(r2.contains("Random-RC"), "{r2}");
    }

    #[test]
    fn segment_requires_input() {
        assert!(run(&["segment".to_owned()]).is_err());
    }

    /// Serializes tests that drive the process-global trace collector, so
    /// one test's `trace_take` cannot drain another's spans.
    fn trace_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        match LOCK.get_or_init(|| std::sync::Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn generated_db(name: &str) -> PathBuf {
        let db = tmp(name);
        run_ok(&[
            "generate",
            "--kind=skewed",
            "--transactions=1200",
            "--items=50",
            &format!("--out={}", db.to_str().unwrap()),
        ]);
        db
    }

    #[test]
    fn mine_with_trace_writes_a_chrome_trace() {
        let _guard = trace_lock();
        let db = generated_db("trace-chrome.db");
        let out = tmp("trace-chrome.json");
        let report = run_ok(&[
            "mine",
            &format!("--in={}", db.to_str().unwrap()),
            "--minsup=0.05",
            "--trace=chrome",
            out.to_str().unwrap(),
        ]);
        assert!(report.contains("trace:"), "{report}");
        let text = std::fs::read_to_string(&out).expect("trace file written");
        let events = ossm_obs::json::parse(&text)
            .expect("valid JSON")
            .as_array()
            .expect("chrome traces are a JSON array")
            .to_vec();
        if ossm_obs::ENABLED {
            assert!(!events.is_empty());
            for e in &events {
                assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"), "{text}");
                assert!(e
                    .get("dur")
                    .and_then(ossm_obs::json::Json::as_f64)
                    .is_some());
            }
            let names: Vec<&str> = events
                .iter()
                .filter_map(|e| e.get("name").and_then(|v| v.as_str()))
                .collect();
            assert!(names.contains(&"cli.mine"), "{names:?}");
            assert!(names.contains(&"mining.apriori"), "{names:?}");
        } else {
            assert!(events.is_empty(), "disabled builds record nothing");
            assert!(report.contains("compiled out"), "{report}");
        }
        for f in [db, out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn mine_with_trace_writes_folded_stacks() {
        let _guard = trace_lock();
        let db = generated_db("trace-folded.db");
        let out = tmp("trace-folded.folded");
        run_ok(&[
            "mine",
            &format!("--in={}", db.to_str().unwrap()),
            "--minsup=0.05",
            "--trace=folded",
            out.to_str().unwrap(),
        ]);
        let text = std::fs::read_to_string(&out).expect("trace file written");
        if ossm_obs::ENABLED {
            assert!(
                text.lines().any(|l| l.starts_with("cli.mine")),
                "stacks are rooted at the command span:\n{text}"
            );
            assert!(text.contains("cli.mine;mining.apriori"), "{text}");
            for line in text.lines() {
                let (_, value) = line.rsplit_once(' ').expect("`stack value` shape");
                value.parse::<u64>().expect("integer self-time");
            }
        } else {
            assert!(text.is_empty(), "disabled builds record nothing");
        }
        for f in [db, out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn positional_arguments_need_a_trace_flag() {
        let err = run(&["recipe".to_owned(), "stray".to_owned()]).unwrap_err();
        assert!(err.contains("only used with --trace"), "{err}");
        let err = run(&[
            "recipe".to_owned(),
            "--trace".to_owned(),
            "a".to_owned(),
            "b".to_owned(),
        ])
        .unwrap_err();
        assert!(err.contains("at most one output path"), "{err}");
    }

    #[test]
    fn verify_and_repair_handle_a_bit_flipped_store() {
        let db = tmp("verify.db");
        let pages = tmp("verify.pages");
        let map = tmp("verify.ossm");
        let db_s = db.to_str().unwrap();
        let pages_s = pages.to_str().unwrap();
        let map_s = map.to_str().unwrap();
        run_ok(&[
            "generate",
            "--kind=regular",
            "--transactions=1500",
            "--items=60",
            &format!("--out={db_s}"),
        ]);
        run_ok(&["pack", &format!("--in={db_s}"), &format!("--out={pages_s}")]);
        run_ok(&[
            "segment",
            &format!("--in={pages_s}"),
            "--nuser=4",
            &format!("--out={map_s}"),
        ]);

        // Everything verifies clean right after writing.
        assert!(run_ok(&["verify", &format!("--in={pages_s}")]).contains("clean"));
        assert!(run_ok(&["verify", &format!("--in={map_s}")]).contains("checksum verified"));
        assert!(run_ok(&["verify", &format!("--in={db_s}")]).contains("structurally valid"));

        // Flip one bit in a data page: verify must fail (non-zero exit).
        let mut bytes = std::fs::read(&pages).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x08;
        std::fs::write(&pages, &bytes).unwrap();
        let err = run(&["verify".to_owned(), format!("--in={pages_s}")]).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        assert!(err.contains("ossm repair"), "{err}");

        // Repair in place, then verify passes and the data is usable.
        let r = run_ok(&["repair", &format!("--in={pages_s}")]);
        assert!(r.contains("repaired"), "{r}");
        assert!(run_ok(&["verify", &format!("--in={pages_s}")]).contains("clean"));
        assert!(run_ok(&["inspect", &format!("--in={pages_s}")]).contains("paged dataset"));

        // A flipped map file is rejected too.
        let mut bytes = std::fs::read(&map).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&map, &bytes).unwrap();
        let err = run(&["verify".to_owned(), format!("--in={map_s}")]).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");

        for f in [db, pages, map] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn repair_rejects_non_paged_inputs() {
        let db = tmp("repair-flat.db");
        let db_s = db.to_str().unwrap();
        run_ok(&[
            "generate",
            "--kind=regular",
            "--transactions=100",
            "--items=20",
            &format!("--out={db_s}"),
        ]);
        let err = run(&["repair".to_owned(), format!("--in={db_s}")]).unwrap_err();
        assert!(err.contains("paged"), "{err}");
        std::fs::remove_file(db).ok();
    }

    #[test]
    fn obs_diff_compares_two_snapshots() {
        let base = tmp("diff-base.json");
        let cur = tmp("diff-cur.json");
        std::fs::write(
            &base,
            "{\"type\":\"counter\",\"name\":\"c\",\"value\":100}\n",
        )
        .unwrap();
        std::fs::write(
            &cur,
            "{\"type\":\"counter\",\"name\":\"c\",\"value\":103}\n",
        )
        .unwrap();
        let args = |b: &Path, c: &Path| {
            vec![
                "obs".to_owned(),
                "diff".to_owned(),
                b.to_str().unwrap().to_owned(),
                c.to_str().unwrap().to_owned(),
            ]
        };
        // 3% drift: inside the default 5% gate.
        let report = run(&args(&base, &cur)).expect("diff runs");
        assert!(report.contains("**PASS**"), "{report}");
        assert!(report.contains("counter.c"), "{report}");
        // Tighter gate: the same drift fails.
        let mut tight = args(&base, &cur);
        tight.push("--count-drift=0.01".to_owned());
        assert!(run(&tight).expect("diff runs").contains("**FAIL**"));
        // Argument errors.
        assert!(run(&["obs".to_owned()]).is_err());
        assert!(run(&["obs".to_owned(), "diff".to_owned()]).is_err());
        assert!(run(&["obs".to_owned(), "bogus".to_owned()]).is_err());
        for f in [base, cur] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn obs_diff_exit_code_separates_gate_failure_from_bad_input() {
        let base = tmp("code-base.json");
        let cur = tmp("code-cur.json");
        std::fs::write(
            &base,
            "{\"type\":\"counter\",\"name\":\"c\",\"value\":100}\n",
        )
        .unwrap();
        std::fs::write(
            &cur,
            "{\"type\":\"counter\",\"name\":\"c\",\"value\":200}\n",
        )
        .unwrap();
        let args = |b: &str, c: &str| {
            vec![
                "obs".to_owned(),
                "diff".to_owned(),
                b.to_owned(),
                c.to_owned(),
            ]
        };
        let base_s = base.to_str().unwrap();
        let cur_s = cur.to_str().unwrap();
        // The comparison ran and the gate failed: Ok, exit code 2.
        let outcome = run_with_code(&args(base_s, cur_s)).expect("diff ran");
        assert_eq!(outcome.code, 2, "{}", outcome.report);
        assert!(outcome.report.contains("**FAIL**"));
        // Identical files: Ok, exit code 0.
        let outcome = run_with_code(&args(base_s, base_s)).expect("diff ran");
        assert_eq!(outcome.code, 0, "{}", outcome.report);
        // Unreadable input: Err (the binary exits 1), not a gate failure.
        let gone = tmp("code-gone.json");
        std::fs::remove_file(&gone).ok();
        let err = run_with_code(&args(base_s, gone.to_str().unwrap())).unwrap_err();
        assert!(err.contains("code-gone.json"), "{err}");
        // Unparseable input: Err as well.
        let broken = tmp("code-broken.json");
        std::fs::write(&broken, "{\"type\":\"counter\"\n").unwrap();
        let err = run_with_code(&args(base_s, broken.to_str().unwrap())).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        for f in [base, cur, broken] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn obs_dump_renders_a_flight_recorder_timeline() {
        let dump = tmp("dump.jsonl");
        std::fs::write(
            &dump,
            concat!(
                "{\"type\":\"header\",\"version\":1,\"total\":2,\"events\":2}\n",
                "{\"type\":\"event\",\"seq\":0,\"nanos\":1000,\"thread\":1,\
                 \"kind\":\"wal-append\",\"name\":\"data.wal.append\",\"value\":24}\n",
                "{\"type\":\"event\",\"seq\":1,\"nanos\":2000,\"thread\":1,\
                 \"kind\":\"fault\",\"name\":\"wal.append\",\"value\":24}\n",
            ),
        )
        .unwrap();
        let out = run_ok(&["obs", "dump", dump.to_str().unwrap()]);
        assert!(out.contains("flight recorder timeline (2 events)"), "{out}");
        assert!(out.contains("wal-append"), "{out}");
        assert!(out.contains("fault"), "{out}");
        // A corrupt dump is an input error (exit 1), and the file count
        // must be exactly one.
        std::fs::write(&dump, "not json\n").unwrap();
        assert!(run(&[
            "obs".to_owned(),
            "dump".to_owned(),
            dump.to_str().unwrap().to_owned()
        ])
        .is_err());
        assert!(run(&["obs".to_owned(), "dump".to_owned()]).is_err());
        std::fs::remove_file(dump).ok();
    }

    #[test]
    fn obs_dump_rejects_empty_and_truncated_dumps() {
        let dump = tmp("dump-bad.jsonl");
        let dump_s = dump.to_str().unwrap().to_owned();
        let run_dump = || run(&["obs".to_owned(), "dump".to_owned(), dump_s.clone()]).unwrap_err();
        // A zero-event dump is a failed capture, not a calm success.
        std::fs::write(&dump, "").unwrap();
        let err = run_dump();
        assert!(err.contains("empty flight-recorder dump"), "{err}");
        // Fewer events than the header declares: truncated mid-write.
        std::fs::write(
            &dump,
            concat!(
                "{\"type\":\"header\",\"version\":1,\"total\":3,\"events\":3}\n",
                "{\"type\":\"event\",\"seq\":0,\"nanos\":1,\"thread\":1,\
                 \"kind\":\"fault\",\"name\":\"x\",\"value\":0}\n",
            ),
        )
        .unwrap();
        let err = run_dump();
        assert!(err.contains("truncated"), "{err}");
        assert!(err.contains("declares 3"), "{err}");
        // A final record cut mid-JSON gets the truncation hint.
        std::fs::write(
            &dump,
            "{\"type\":\"event\",\"seq\":0,\"nanos\":1,\"thread\":1,\"kind\":\"fa",
        )
        .unwrap();
        let err = run_dump();
        assert!(err.contains("truncated mid-record"), "{err}");
        std::fs::remove_file(dump).ok();
    }

    #[test]
    fn obs_serve_round_trips_live_metrics_during_ingest() {
        if !ossm_obs::ENABLED {
            let err = run(&["obs".to_owned(), "serve".to_owned()]).unwrap_err();
            assert!(
                err.contains("rebuild with the default `obs` feature"),
                "{err}"
            );
            return;
        }
        let port_file = tmp("serve.port");
        let dir = tmp("serve-load");
        std::fs::remove_file(&port_file).ok();
        // The server binds before the workload starts, so a sibling
        // thread can poll for the written address and scrape mid-run.
        let pf = port_file.clone();
        let fetcher = std::thread::spawn(move || -> String {
            use std::io::{Read as _, Write as _};
            // Keep scraping until the workload's counters show up — the
            // first scrape can land before the first batch is ingested.
            let mut last = String::new();
            for _ in 0..400 {
                let addr = std::fs::read_to_string(&pf).unwrap_or_default();
                let addr = addr.trim().to_owned();
                if !addr.is_empty() {
                    let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
                    write!(conn, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("request");
                    last.clear();
                    conn.read_to_string(&mut last).expect("response");
                    if last.contains("ossm_live_ingest_batches_total") {
                        return last;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            panic!("no scrape showed ingest counters; last response:\n{last}");
        });
        let out = run_ok(&[
            "obs",
            "serve",
            "127.0.0.1:0",
            "--duration=1.2",
            &format!("--port-file={}", port_file.to_str().unwrap()),
            &format!("--dir={}", dir.to_str().unwrap()),
            "--pace-ms=1",
            "--items=40",
        ]);
        let body = fetcher.join().expect("fetcher thread");
        assert!(body.contains("# ossm-livemetrics v1"), "{body}");
        assert!(body.contains("ossm_live_ingest_batches_total"), "{body}");
        assert!(body.contains("ossm_live_ingest_batches_per_sec"), "{body}");
        assert!(out.contains("served live metrics"), "{out}");
        assert!(!out.contains(" 0 scrapes"), "{out}");
        std::fs::remove_file(&port_file).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn obs_top_prints_watch_frames() {
        if !ossm_obs::ENABLED {
            let err = run(&["obs".to_owned(), "top".to_owned()]).unwrap_err();
            assert!(
                err.contains("rebuild with the default `obs` feature"),
                "{err}"
            );
            return;
        }
        let dir = tmp("top-load");
        let out = run_ok(&[
            "obs",
            "top",
            "--interval=0.2",
            "--intervals=2",
            &format!("--dir={}", dir.to_str().unwrap()),
            "--pace-ms=1",
            "--items=40",
        ]);
        assert!(out.contains("ossm-livetop"), "{out}");
        assert!(out.contains("watched 2 intervals"), "{out}");
        assert!(out.contains("live.ingest.batches"), "{out}");
        // Bad intervals are input errors, not panics.
        assert!(run(&[
            "obs".to_owned(),
            "top".to_owned(),
            "--interval=0".to_owned()
        ])
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
