//! Vertical mining: Eclat, CHARM-style closed sets, GenMax-style maximal
//! sets.
//!
//! The paper's related work situates the OSSM against vertical miners
//! (CHARM [21], GenMax/diffsets [20]): they avoid candidate *counting
//! passes* by intersecting per-item transaction-id lists. We implement the
//! family both as a further cross-validation oracle (a completely
//! different counting mechanism that must agree with Apriori and
//! FP-growth) and to show the OSSM composing with it: equation (1) can
//! discharge a branch *before its tidset intersection is materialized* —
//! the vertical analogue of skipping a counting pass.
//!
//! All three miners share one DFS over the prefix tree of itemsets with
//! tidset propagation; CHARM adds closure-by-subsumption, GenMax maximal
//! filtering.

use std::time::Instant;

use ossm_core::Ossm;
use ossm_data::{Dataset, ItemId, Itemset};

use crate::apriori::MiningOutcome;
use crate::metrics::{LevelMetrics, MiningMetrics};
use crate::support::FrequentPatterns;

/// The vertical (tidset) representation of a dataset.
#[derive(Clone, Debug)]
pub struct VerticalIndex {
    num_transactions: u64,
    /// `tidsets[i]` = sorted ids of transactions containing item `i`.
    tidsets: Vec<Vec<u32>>,
}

impl VerticalIndex {
    /// Builds the index in one pass.
    pub fn build(dataset: &Dataset) -> Self {
        let mut tidsets = vec![Vec::new(); dataset.num_items()];
        for (tid, t) in dataset.transactions().iter().enumerate() {
            for item in t.items() {
                tidsets[item.index()].push(tid as u32);
            }
        }
        VerticalIndex {
            num_transactions: dataset.len() as u64,
            tidsets,
        }
    }

    /// The tidset of a single item.
    pub fn tidset(&self, item: ItemId) -> &[u32] {
        &self.tidsets[item.index()]
    }

    /// Number of transactions indexed.
    pub fn num_transactions(&self) -> u64 {
        self.num_transactions
    }

    /// Item-domain size.
    pub fn num_items(&self) -> usize {
        self.tidsets.len()
    }
}

/// Sorted-list intersection.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Which condensed form the DFS reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    All,
    Closed,
    Maximal,
}

/// Eclat: all frequent itemsets by tidset intersection.
#[derive(Clone, Copy, Debug, Default)]
pub struct Eclat;

impl Eclat {
    /// Creates the miner.
    pub fn new() -> Self {
        Eclat
    }

    /// Mines all frequent itemsets.
    ///
    /// # Panics
    /// Panics if `min_support == 0`.
    pub fn mine(&self, dataset: &Dataset, min_support: u64) -> MiningOutcome {
        self.mine_filtered(dataset, min_support, None)
    }

    /// Mines with equation-(1) branch pruning.
    pub fn mine_filtered(
        &self,
        dataset: &Dataset,
        min_support: u64,
        ossm: Option<&Ossm>,
    ) -> MiningOutcome {
        run_vertical(dataset, min_support, ossm, Mode::All)
    }
}

/// CHARM-style closed-itemset miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Charm;

impl Charm {
    /// Creates the miner.
    pub fn new() -> Self {
        Charm
    }

    /// Mines the closed frequent itemsets with their supports.
    ///
    /// # Panics
    /// Panics if `min_support == 0`.
    pub fn mine(&self, dataset: &Dataset, min_support: u64) -> MiningOutcome {
        run_vertical(dataset, min_support, None, Mode::Closed)
    }
}

/// GenMax-style maximal-itemset miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct GenMax;

impl GenMax {
    /// Creates the miner.
    pub fn new() -> Self {
        GenMax
    }

    /// Mines the maximal frequent itemsets with their supports.
    ///
    /// # Panics
    /// Panics if `min_support == 0`.
    pub fn mine(&self, dataset: &Dataset, min_support: u64) -> MiningOutcome {
        run_vertical(dataset, min_support, None, Mode::Maximal)
    }
}

fn run_vertical(
    dataset: &Dataset,
    min_support: u64,
    ossm: Option<&Ossm>,
    mode: Mode,
) -> MiningOutcome {
    assert!(min_support > 0, "support threshold must be at least 1");
    let start = Instant::now();
    let index = VerticalIndex::build(dataset);
    let mut state = Vertical {
        min_support,
        ossm,
        all: FrequentPatterns::new(),
        metrics: MiningMetrics::default(),
    };

    let m = dataset.num_items();
    let mut level1 = LevelMetrics {
        level: 1,
        generated: m as u64,
        counted: m as u64,
        ..Default::default()
    };
    let frequent_items: Vec<ItemId> = (0..m as u32)
        .map(ItemId)
        .filter(|&i| index.tidset(i).len() as u64 >= min_support)
        .collect();
    level1.frequent = frequent_items.len() as u64;
    state.metrics.push_level(level1);

    // DFS in ascending item order; each node carries its tidset.
    state.expand(
        &Itemset::empty(),
        &frequent_items
            .iter()
            .map(|&i| (i, index.tidset(i).to_vec()))
            .collect::<Vec<_>>(),
    );

    // Post-filter for the condensed modes (the DFS recorded every frequent
    // set; subsumption filtering afterwards keeps the DFS simple and the
    // two modes cross-checkable against `crate::patterns`).
    let patterns = match mode {
        Mode::All => state.all,
        Mode::Closed => crate::patterns::closed(&state.all),
        Mode::Maximal => {
            let max = crate::patterns::maximal(&state.all);
            max.into_iter()
                .map(|p| {
                    let s = state.all.support_of(&p).expect("maximal sets are frequent");
                    (p, s)
                })
                .collect()
        }
    };
    let mut metrics = state.metrics;
    metrics.elapsed = start.elapsed();
    MiningOutcome { patterns, metrics }
}

struct Vertical<'a> {
    min_support: u64,
    ossm: Option<&'a Ossm>,
    all: FrequentPatterns,
    metrics: MiningMetrics,
}

impl Vertical<'_> {
    /// Expands `prefix` with the given extension candidates, each carrying
    /// its tidset *relative to the prefix*.
    fn expand(&mut self, prefix: &Itemset, extensions: &[(ItemId, Vec<u32>)]) {
        for (pos, (item, tids)) in extensions.iter().enumerate() {
            let pattern = prefix.with(*item);
            let support = tids.len() as u64;
            debug_assert!(support >= self.min_support);
            self.all.insert(pattern.clone(), support);

            // Children: larger items, intersected tidsets — with the OSSM
            // discharging branches before the intersection happens.
            let mut level = LevelMetrics {
                level: pattern.len() + 1,
                ..Default::default()
            };
            let mut children: Vec<(ItemId, Vec<u32>)> = Vec::new();
            for (next, next_tids) in &extensions[pos + 1..] {
                level.generated += 1;
                let child = pattern.with(*next);
                if let Some(map) = self.ossm {
                    if map.upper_bound(&child) < self.min_support {
                        level.filtered_out += 1;
                        continue;
                    }
                }
                level.counted += 1;
                let tids = intersect(tids, next_tids);
                if tids.len() as u64 >= self.min_support {
                    level.frequent += 1;
                    children.push((*next, tids));
                }
            }
            if level.generated > 0 {
                self.metrics.push_level(level);
            }
            if !children.is_empty() {
                self.expand(&pattern, &children);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::fpgrowth::FpGrowth;
    use crate::patterns;
    use ossm_core::minimize_segments;
    use ossm_data::gen::{AlarmConfig, QuestConfig};

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().copied())
    }

    fn quest(n: usize, m: usize) -> Dataset {
        QuestConfig {
            num_transactions: n,
            num_items: m,
            ..QuestConfig::small()
        }
        .generate()
    }

    #[test]
    fn intersect_merges_sorted_lists() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[2, 3, 5, 8]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[4], &[4]), vec![4]);
    }

    #[test]
    fn vertical_index_matches_supports() {
        let d = quest(200, 20);
        let idx = VerticalIndex::build(&d);
        let singles = d.singleton_supports();
        for i in 0..20u32 {
            assert_eq!(idx.tidset(ItemId(i)).len() as u64, singles[i as usize]);
            assert!(idx.tidset(ItemId(i)).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn eclat_agrees_with_apriori_and_fpgrowth() {
        let d = quest(300, 25);
        for min_support in [5, 10, 20] {
            let e = Eclat::new().mine(&d, min_support);
            assert_eq!(e.patterns, Apriori::new().mine(&d, min_support).patterns);
            assert_eq!(e.patterns, FpGrowth::new().mine(&d, min_support).patterns);
        }
    }

    #[test]
    fn charm_agrees_with_posthoc_closed() {
        let d = quest(250, 20);
        let full = Apriori::new().mine(&d, 6).patterns;
        let charm = Charm::new().mine(&d, 6);
        assert_eq!(charm.patterns, patterns::closed(&full));
    }

    #[test]
    fn genmax_agrees_with_posthoc_maximal() {
        let d = AlarmConfig {
            num_windows: 250,
            num_alarm_types: 18,
            ..AlarmConfig::small()
        }
        .generate();
        let full = Apriori::new().mine(&d, 15).patterns;
        let genmax = GenMax::new().mine(&d, 15);
        let mut expected: Vec<Itemset> = patterns::maximal(&full);
        expected.sort();
        let got: Vec<Itemset> = genmax.patterns.iter().map(|(p, _)| p.clone()).collect();
        assert_eq!(got, expected);
        for (p, s) in genmax.patterns.iter() {
            assert_eq!(full.support_of(p), Some(s));
        }
    }

    #[test]
    fn ossm_branch_pruning_is_lossless_and_saves_intersections() {
        let d = quest(300, 30);
        let min = minimize_segments(&d);
        let plain = Eclat::new().mine(&d, 6);
        let pruned = Eclat::new().mine_filtered(&d, 6, Some(&min.ossm));
        assert_eq!(plain.patterns, pruned.patterns);
        assert!(
            pruned.metrics.total_counted() < plain.metrics.total_counted(),
            "the exact OSSM must skip some intersections"
        );
        // With the exact map, every intersection performed yields a
        // frequent child.
        for l in &pruned.metrics.levels {
            if l.level >= 2 {
                assert_eq!(l.counted, l.frequent, "level {}", l.level);
            }
        }
    }

    #[test]
    fn small_example_by_hand() {
        let d = Dataset::new(
            3,
            vec![set(&[0, 1]), set(&[0, 1, 2]), set(&[0, 2]), set(&[1])],
        );
        let out = Eclat::new().mine(&d, 2);
        assert_eq!(out.patterns.support_of(&set(&[0])), Some(3));
        assert_eq!(out.patterns.support_of(&set(&[0, 1])), Some(2));
        assert_eq!(out.patterns.support_of(&set(&[0, 2])), Some(2));
        assert_eq!(
            out.patterns.support_of(&set(&[0, 1, 2])),
            None,
            "support 1 < 2"
        );
        let closed = Charm::new().mine(&d, 2);
        assert!(closed.patterns.len() <= out.patterns.len());
    }
}
