//! R1 — panic-free I/O.
//!
//! PR 3 converted the disk, WAL, and recovery paths to `io::Result`
//! propagation: a storage fault must surface as an error the caller can
//! handle, never as a process abort halfway through a write. This rule
//! pins that property: no `unwrap()`, `expect()`, or panicking macro in
//! the durability modules outside `#[cfg(test)]` code.

use super::Context;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;

/// Modules whose non-test code must be panic-free (see PR 3).
pub const R1_FILES: &[&str] = &[
    "crates/data/src/disk.rs",
    "crates/data/src/wal.rs",
    "crates/core/src/durable.rs",
    "crates/core/src/persist.rs",
    "crates/core/src/recover.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(ctx: &Context<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in ctx
        .files
        .iter()
        .filter(|f| R1_FILES.contains(&f.path.as_str()))
    {
        for (i, t) in file.toks.iter().enumerate() {
            if file.in_test[i] || t.kind != TokKind::Ident {
                continue;
            }
            let next_is = |p: &str| file.toks.get(i + 1).is_some_and(|n| n.is_punct(p));
            let prev_is_dot = i > 0 && file.toks[i - 1].is_punct(".");
            let call = match t.text.as_str() {
                "unwrap" | "expect" if prev_is_dot && next_is("(") => Some(format!(
                    "`.{}()` on a durability path — propagate `io::Result` instead (PR 3 discipline)",
                    t.text
                )),
                m if PANIC_MACROS.contains(&m) && next_is("!") => Some(format!(
                    "`{m}!` on a durability path — return an error instead of aborting mid-write",
                )),
                _ => None,
            };
            if let Some(message) = call {
                out.push(Diagnostic {
                    rule: "R1",
                    path: file.path.clone(),
                    line: t.line,
                    key: file.key_at(i, &t.text),
                    message,
                });
            }
        }
    }
    out
}
