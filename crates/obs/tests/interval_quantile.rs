//! Behavior tests for the interval-delta engine and the quantile
//! estimator working together. The delta math is ungated arithmetic on
//! [`Snapshot`]s, so most of this file runs under *both* feature
//! configurations; only the registry-backed [`IntervalTracker`] tests
//! need live instrumentation.

use ossm_obs::interval::delta;
use ossm_obs::{GaugeSnapshot, HistogramSnapshot, PhaseSnapshot, Snapshot};

const SEC: u64 = 1_000_000_000;

fn populated() -> Snapshot {
    let mut s = Snapshot::default();
    s.counters.insert("c".to_owned(), 10);
    s.phases.insert(
        "p".to_owned(),
        PhaseSnapshot {
            nanos: 500,
            calls: 4,
        },
    );
    s.histograms.insert(
        "h".to_owned(),
        HistogramSnapshot {
            count: 6,
            sum: 60,
            buckets: vec![(4, 6)],
        },
    );
    s.gauges.insert(
        "g".to_owned(),
        GaugeSnapshot {
            current: 7,
            peak: 9,
        },
    );
    s
}

#[test]
fn delta_of_identical_snapshots_is_all_zero() {
    let s = populated();
    let d = delta(&s, &s, 2 * SEC);
    assert_eq!(d.resets, 0);
    assert!(!d.is_empty(), "rows exist even when nothing moved");
    let c = &d.counters["c"];
    assert_eq!((c.total, c.delta, c.per_sec), (10, 0, 0.0));
    let p = &d.phases["p"];
    assert_eq!(p.nanos_delta, 0);
    assert_eq!(p.calls_delta, 0);
    assert_eq!(p.calls_per_sec, 0.0);
    let h = &d.histograms["h"];
    assert_eq!((h.count_delta, h.sum_delta, h.per_sec), (0, 0, 0.0));
    let g = &d.gauges["g"];
    assert_eq!((g.current, g.delta, g.peak), (7, 0, 9));
}

#[test]
fn rates_scale_with_the_interval_and_vanish_at_zero_elapsed() {
    let prev = Snapshot::default();
    let mut cur = Snapshot::default();
    cur.counters.insert("c".to_owned(), 30);
    let d = delta(&prev, &cur, 2 * SEC);
    assert_eq!(d.counters["c"].delta, 30);
    assert!((d.counters["c"].per_sec - 15.0).abs() < 1e-9);
    assert!((d.elapsed_secs() - 2.0).abs() < 1e-12);
    // An instantaneous interval yields rate 0, not inf/NaN.
    let d = delta(&prev, &cur, 0);
    assert_eq!(d.counters["c"].per_sec, 0.0);
}

#[test]
fn monotone_values_moving_backwards_count_as_resets() {
    let prev = populated();
    let mut cur = populated();
    cur.counters.insert("c".to_owned(), 3); // below prev's 10
    let d = delta(&prev, &cur, SEC);
    assert_eq!(d.resets, 1);
    // After a reset the cumulative value IS the interval's activity.
    assert_eq!(d.counters["c"].delta, 3);

    // Histogram count falling back is a reset too.
    let mut cur = populated();
    cur.histograms.get_mut("h").unwrap().count = 2;
    cur.histograms.get_mut("h").unwrap().sum = 20;
    let d = delta(&prev, &cur, SEC);
    assert_eq!(d.resets, 1);
    assert_eq!(d.histograms["h"].count_delta, 2);
}

#[test]
fn gauge_current_is_signed_but_a_falling_peak_is_a_reset() {
    let prev = populated(); // current=7 peak=9
    let mut cur = populated();
    cur.gauges.insert(
        "g".to_owned(),
        GaugeSnapshot {
            current: 2,
            peak: 9,
        },
    );
    let d = delta(&prev, &cur, SEC);
    // A falling level is normal operation: signed delta, no reset.
    assert_eq!(d.resets, 0);
    assert_eq!(d.gauges["g"].delta, -5);

    cur.gauges.insert(
        "g".to_owned(),
        GaugeSnapshot {
            current: 2,
            peak: 3,
        },
    );
    let d = delta(&prev, &cur, SEC);
    assert_eq!(d.resets, 1, "peak is monotone; moving back marks a reset");
}

#[test]
fn vanished_metrics_are_reset_evidence() {
    let prev = populated();
    let cur = Snapshot::default();
    let d = delta(&prev, &cur, SEC);
    assert!(d.is_empty(), "rows key off the current snapshot");
    assert_eq!(
        d.resets, 4,
        "one per vanished counter/phase/histogram/gauge"
    );
}

#[test]
fn histogram_rows_carry_cumulative_quantiles() {
    let prev = Snapshot::default();
    let mut cur = Snapshot::default();
    cur.histograms.insert(
        "h".to_owned(),
        HistogramSnapshot {
            count: 100,
            sum: 0,
            // 90 fast samples in [32,64), 10 slow in [512,1024).
            buckets: vec![(32, 90), (512, 10)],
        },
    );
    let d = delta(&prev, &cur, SEC);
    let q = d.histograms["h"].quantiles.expect("non-empty histogram");
    assert!(q.p50 >= 32.0 && q.p50 < 64.0, "p50={}", q.p50);
    assert!(q.p95 >= 512.0 && q.p95 < 1024.0, "p95={}", q.p95);
    assert!(q.p99 >= 512.0 && q.p99 < 1024.0, "p99={}", q.p99);
    assert!(q.p50 <= q.p95 && q.p95 <= q.p99, "quantiles are ordered");

    // An empty histogram has no quantiles rather than fabricated zeros.
    let empty = HistogramSnapshot::default();
    assert!(empty.quantiles().is_none());
}

#[cfg(feature = "enabled")]
mod live {
    use ossm_obs::{Counter, IntervalTracker, Latency};

    static TICKS: Counter = Counter::new("test.interval.ticks");
    static LAT: Latency = Latency::new("test.interval.latency");

    #[test]
    fn tracker_reports_only_what_moved_since_the_last_tick() {
        let mut tracker = IntervalTracker::new();
        TICKS.add(5);
        let d = tracker.tick();
        assert_eq!(d.counters["test.interval.ticks"].delta, 5);
        // Nothing moved since: the next tick's delta is zero.
        let d = tracker.tick();
        assert_eq!(d.counters["test.interval.ticks"].delta, 0);
        TICKS.add(2);
        let d = tracker.tick();
        assert_eq!(d.counters["test.interval.ticks"].delta, 2);
    }

    #[test]
    fn latency_spans_feed_watch_frames_with_quantiles() {
        let mut tracker = IntervalTracker::new();
        drop(LAT.time());
        LAT.record_nanos(1 << 20);
        let d = tracker.tick();
        let h = &d.histograms["test.interval.latency"];
        assert!(h.count_total >= 2);
        assert!(h.quantiles.is_some());
        let frame = d.render_watch();
        assert!(frame.contains("ossm-livetop"), "{frame}");
        assert!(frame.contains("test.interval.latency"), "{frame}");
    }
}
