//! Corruption round-trips: every random mutation of a persistent
//! artifact is either *detected* (an error somewhere on the read path) or
//! *harmless* (the decoded result equals the original) — never silently
//! accepted as different data. Silent acceptance is the one outcome that
//! breaks the paper's contract: eq. (1) pruning is only sound while
//! segment supports are the true sums.
//!
//! Mutations are seeded (in-repo `rand` shim), so failures replay
//! deterministically: the loop index is the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ossm_core::{persist, OssmBuilder};
use ossm_data::disk::{write_paged, DiskStore};
use ossm_data::gen::QuestConfig;
use ossm_data::repair::{repair_store, scan_store};
use ossm_data::{Dataset, Itemset, PageStore};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("ossm-corruption-tests")
        .join(name);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn sample() -> Dataset {
    QuestConfig {
        num_transactions: 400,
        num_items: 30,
        ..QuestConfig::small()
    }
    .generate()
}

/// Applies one random mutation to `bytes`: a bit flip, a truncation, or a
/// torn tail (truncate + zero padding back to length, like a crash that
/// persisted only a prefix of the final writes).
fn mutate(bytes: &mut Vec<u8>, rng: &mut StdRng) -> String {
    match rng.gen_range(0..3u32) {
        0 => {
            let at = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            bytes[at] ^= 1 << bit;
            format!("bit flip at {at}:{bit}")
        }
        1 => {
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
            format!("truncated to {keep} bytes")
        }
        _ => {
            let full = bytes.len();
            let keep = rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
            bytes.resize(full, 0);
            format!("torn at {keep} (zero tail)")
        }
    }
}

/// Full strict read of a paged store: open, load every page, and collect
/// the dataset plus the aggregate index.
fn strict_read(path: &std::path::Path) -> std::io::Result<(Dataset, Vec<Vec<u64>>)> {
    let mut store = DiskStore::open(path, 4)?;
    let m = store.num_items();
    let summaries: Vec<Vec<u64>> = store.summaries().iter().map(|s| s.dense(m)).collect();
    Ok((store.to_dataset()?, summaries))
}

#[test]
fn mutated_page_stores_are_detected_or_identical() {
    let dir = tmp_dir("pages");
    let d = sample();
    let clean_path = dir.join("clean.pages");
    write_paged(&clean_path, &d, 1024).expect("write");
    let clean_bytes = std::fs::read(&clean_path).expect("read");
    let baseline = strict_read(&clean_path).expect("clean store reads");

    let path = dir.join("mutated.pages");
    let mut detected = 0u32;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = clean_bytes.clone();
        let what = mutate(&mut bytes, &mut rng);
        std::fs::write(&path, &bytes).expect("write mutant");
        match strict_read(&path) {
            Err(_) => detected += 1,
            Ok(got) => assert_eq!(
                got, baseline,
                "seed {seed} ({what}): mutation accepted with different data"
            ),
        }
    }
    // v2 checksums cover every byte, so effectively all mutants of a
    // non-empty store must be caught (identical-read escapes are only
    // possible for mutations of bytes the format never rereads).
    assert!(detected >= 55, "only {detected}/60 mutants detected");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutated_page_stores_repair_to_sound_aggregates() {
    let dir = tmp_dir("repair");
    let d = sample();
    let clean_path = dir.join("clean.pages");
    write_paged(&clean_path, &d, 1024).expect("write");
    let clean_bytes = std::fs::read(&clean_path).expect("read");

    let path = dir.join("mutated.pages");
    let fixed = dir.join("fixed.pages");
    for seed in 100..130u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = clean_bytes.clone();
        let what = mutate(&mut bytes, &mut rng);
        std::fs::write(&path, &bytes).expect("write mutant");
        // Repair may refuse outright (header too damaged to locate
        // pages) — that is detection, not silent acceptance. When it
        // succeeds, the result must verify clean and its aggregates must
        // dominate the true data that survived, pairwise.
        let Ok(_) = repair_store(&path, &fixed) else {
            continue;
        };
        let scan = scan_store(&fixed).expect("repaired store scans");
        assert!(scan.is_clean(), "seed {seed} ({what}): {}", scan.describe());
        let recovery = ossm_core::recover::aggregates_from_scan(&scan);
        if let Some(ossm) = recovery.into_ossm() {
            for a in 0..4u32 {
                for b in (a + 1)..4u32 {
                    let probe = Itemset::new([a, b]);
                    // The repaired file may hold *fewer* transactions than
                    // the original (quarantined pages), so compare against
                    // its own decoded content — bounds over what a reader
                    // sees must dominate what a reader counts.
                    let truth = DiskStore::open(&fixed, 4)
                        .and_then(|mut s| s.to_dataset())
                        .expect("repaired store reads")
                        .support(&probe);
                    assert!(
                        ossm.upper_bound(&probe) >= truth,
                        "seed {seed} ({what}): bound under-counts {{{a},{b}}}"
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutated_ossm_maps_are_detected_or_identical() {
    let d = sample();
    let store = PageStore::with_page_count(d, 16);
    let (ossm, _) = OssmBuilder::new(5).build(&store);
    let mut clean = Vec::new();
    persist::write_ossm(&mut clean, &ossm).expect("write");

    let mut detected = 0u32;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = clean.clone();
        let what = mutate(&mut bytes, &mut rng);
        match persist::read_ossm(&mut bytes.as_slice()) {
            Err(_) => detected += 1,
            Ok(got) => assert_eq!(
                got, ossm,
                "seed {seed} ({what}): mutation accepted with a different map"
            ),
        }
    }
    assert!(detected >= 55, "only {detected}/60 mutants detected");
}

#[test]
fn appended_garbage_on_a_map_is_rejected() {
    let d = sample();
    let store = PageStore::with_page_count(d, 16);
    let (ossm, _) = OssmBuilder::new(4).build(&store);
    let mut bytes = Vec::new();
    persist::write_ossm(&mut bytes, &ossm).expect("write");
    bytes.extend_from_slice(&[0xAB; 16]);
    assert!(persist::read_ossm(&mut bytes.as_slice()).is_err());
}
