//! Ablation A1: equation-(2) loss evaluation — the paper's O(m²) pair loop
//! vs our O(m log m) sorted identity, and the bubble-list scope reduction.
//!
//! This is the design decision that makes Greedy/RC usable at m = 1000
//! without special hardware (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ossm_core::{Aggregate, LossCalculator};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_aggregate(rng: &mut StdRng, m: usize) -> Aggregate {
    let v: Vec<u64> = (0..m).map(|_| rng.gen_range(0..1000)).collect();
    let n = v.iter().sum();
    Aggregate::new(v, n)
}

fn bench_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_loss");
    for &m in &[100usize, 400, 1000] {
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_aggregate(&mut rng, m);
        let b = random_aggregate(&mut rng, m);

        let fast = LossCalculator::all_items();
        group.bench_with_input(BenchmarkId::new("sorted", m), &m, |bench, _| {
            bench.iter(|| black_box(fast.merge_loss(black_box(&a), black_box(&b))));
        });

        let naive = LossCalculator::all_items().with_naive_evaluation();
        group.bench_with_input(BenchmarkId::new("naive_pairs", m), &m, |bench, _| {
            bench.iter(|| black_box(naive.merge_loss(black_box(&a), black_box(&b))));
        });

        // Bubble list at 10 % of the domain.
        let bubble: Vec<u32> = (0..(m / 10) as u32).collect();
        let scoped = LossCalculator::scoped(bubble);
        group.bench_with_input(BenchmarkId::new("bubble_10pct", m), &m, |bench, _| {
            bench.iter(|| black_box(scoped.merge_loss(black_box(&a), black_box(&b))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_loss);
criterion_main!(benches);
