//! Quantile derivation from log2-bucketed histograms.
//!
//! The histograms record only bucket occupancies, so exact quantiles are
//! unrecoverable; what *is* recoverable is a value guaranteed to lie in
//! the same bucket as the true quantile. Within the located bucket
//! `[lo, 2·lo)` we interpolate linearly by rank, which bounds the error
//! by the bucket width: the estimate is off by at most a factor of 2
//! (one octave), and much less when occupancies are spread. That is the
//! right trade for latency telemetry — p99 answers "which octave", not
//! "which nanosecond" — and it costs nothing beyond the buckets the
//! histograms already keep.
//!
//! This module is ungated: [`HistogramSnapshot`] exists in both feature
//! configurations, and pure math on an empty snapshot is already free.

use crate::snapshot::HistogramSnapshot;

/// The three standard latency quantiles, derived via [`quantile`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quantiles {
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the values recorded in
/// `h`, or `None` when the histogram is empty.
///
/// The rank `ceil(q · n)` (clamped to `1..=n`) is located in the bucket
/// occupancy prefix sum; within bucket `[lo, 2·lo)` the estimate
/// interpolates linearly by rank. Bucket 0 holds exact zeros, so any
/// rank landing there returns `0.0` exactly. The top bucket
/// (`lo = 2^63`) interpolates toward `2^64`, which f64 represents fine.
pub fn quantile(h: &HistogramSnapshot, q: f64) -> Option<f64> {
    let total: u64 = h.buckets.iter().map(|&(_, n)| n).sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // SOUND: ceil + clamp keeps the rank in 1..=total, so the prefix-sum
    // walk below always terminates inside a bucket.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for &(lo, n) in &h.buckets {
        if seen + n >= rank {
            if lo == 0 {
                return Some(0.0);
            }
            // Fraction of this bucket's occupants at or below the rank,
            // in (0, 1]; the log2 bucket [lo, 2·lo) has width lo.
            let into = (rank - seen) as f64 / n as f64;
            return Some(lo as f64 + into * lo as f64);
        }
        seen += n;
    }
    None
}

impl HistogramSnapshot {
    /// p50/p95/p99 estimates, or `None` when the histogram is empty.
    pub fn quantiles(&self) -> Option<Quantiles> {
        Some(Quantiles {
            p50: quantile(self, 0.50)?,
            p95: quantile(self, 0.95)?,
            p99: quantile(self, 0.99)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(buckets: Vec<(u64, u64)>) -> HistogramSnapshot {
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            count,
            sum: 0,
            buckets,
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = HistogramSnapshot::default();
        assert_eq!(quantile(&h, 0.5), None);
        assert_eq!(h.quantiles(), None);
    }

    #[test]
    fn single_bucket_interpolates_by_rank() {
        // 10 values in [4, 8): p50 is rank 5 of 10 → halfway → 6.0.
        let h = hist(vec![(4, 10)]);
        assert_eq!(quantile(&h, 0.5), Some(6.0));
        // p100 is the bucket's exclusive upper bound.
        assert_eq!(quantile(&h, 1.0), Some(8.0));
        // p0 clamps to rank 1: one tenth into the bucket.
        assert_eq!(quantile(&h, 0.0), Some(4.4));
    }

    #[test]
    fn zeros_bucket_is_exact() {
        let h = hist(vec![(0, 7)]);
        assert_eq!(quantile(&h, 0.5), Some(0.0));
        assert_eq!(quantile(&h, 0.99), Some(0.0));
        // Mixed: 7 zeros then 3 larger values — p50 is still a zero.
        let m = hist(vec![(0, 7), (16, 3)]);
        assert_eq!(quantile(&m, 0.5), Some(0.0));
        assert!(quantile(&m, 0.99).unwrap() >= 16.0);
    }

    #[test]
    fn all_in_overflow_bucket_stays_in_range() {
        // Everything in the top bucket [2^63, 2^64).
        let top = 1u64 << 63;
        let h = hist(vec![(top, 4)]);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = quantile(&h, q).unwrap();
            assert!(v >= top as f64, "q={q}: {v}");
            assert!(v <= 2.0 * top as f64, "q={q}: {v}");
        }
    }

    #[test]
    fn estimate_lands_in_the_true_quantiles_bucket() {
        // 90 fast values in [64,128), 10 slow in [1024,2048): the true
        // p50 is in the fast bucket; ranks 91..=100 — so the true p95
        // and p99 — are in the slow one.
        let h = hist(vec![(64, 90), (1024, 10)]);
        let q = h.quantiles().unwrap();
        assert!(q.p50 >= 64.0 && q.p50 < 128.0, "{q:?}");
        assert!(q.p95 >= 1024.0 && q.p95 < 2048.0, "{q:?}");
        assert!(q.p99 >= 1024.0 && q.p99 < 2048.0, "{q:?}");
        assert!(q.p50 <= q.p95 && q.p95 <= q.p99, "monotone: {q:?}");
    }

    #[test]
    fn quantiles_ignore_stale_count_field() {
        // The bucket occupancies are the ground truth; a `count` snapshot
        // taken mid-record may disagree by one.
        let mut h = hist(vec![(4, 10)]);
        h.count = 11;
        assert_eq!(quantile(&h, 0.5), Some(6.0));
    }
}
