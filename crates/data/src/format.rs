//! Low-level byte layout of the `OSSMPAGE` paged-store format.
//!
//! Shared between the happy path ([`crate::disk`]) and the recovery path
//! ([`crate::repair`]), which must parse the same bytes leniently. Two
//! format versions exist:
//!
//! * **v1** (legacy, read-only): 36-byte header, raw `page_bytes` slots,
//!   no integrity metadata;
//! * **v2** (current): 44-byte header ending in a CRC32C of the header
//!   fields and a CRC32C of the index region, and each page slot carries
//!   a 4-byte CRC32C trailer over its payload. The *logical* page size
//!   (`page_bytes`, what packing decisions see) is unchanged; the
//!   physical slot is `page_bytes + 4`.
//!
//! ```text
//! v2 header : magic "OSSMPAGE", version u32 = 2, m u32, page_bytes u32,
//!             num_pages u64, index_offset u64, index_crc u32,
//!             header_crc u32 (CRC32C of the 40 bytes before it)
//! v2 page   : payload (page_bytes: num_tx u32, then per transaction
//!             len u32 + len × item u32, zero padding), crc u32
//! index     : per page: num_tx u32, num_entries u32,
//!             then num_entries × (item u32, count u32)
//! ```

use std::io::{self, Read};

use crate::checksum::crc32c;
use crate::disk::PageSummary;
use crate::item::{ItemId, Itemset};

/// On-disk magic for the page-store file format (lint rule R5: defined once here).
pub const MAGIC: &[u8; 8] = b"OSSMPAGE";
pub(crate) const V1: u32 = 1;
pub(crate) const V2: u32 = 2;
pub(crate) const HEADER_V1: u64 = 8 + 4 + 4 + 4 + 8 + 8;
pub(crate) const HEADER_V2: u64 = HEADER_V1 + 4 + 4;
/// Per-page CRC trailer bytes (v2).
pub(crate) const PAGE_TRAILER: u64 = 4;

/// Hard cap on the item-domain size accepted from any header. A corrupt
/// or hostile `m` would otherwise drive multi-gigabyte dense-vector
/// allocations; 16M items is far beyond any workload in the paper's
/// regime (m ≤ 10⁴).
pub(crate) const MAX_ITEMS: usize = 1 << 24;
/// Hard cap on the page size accepted from any header (64 MiB).
pub(crate) const MAX_PAGE_BYTES: u32 = 1 << 26;

/// Parsed and sanity-checked `OSSMPAGE` header.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Header {
    pub version: u32,
    pub m: usize,
    pub page_bytes: u32,
    pub num_pages: u64,
    pub index_offset: u64,
    /// CRC32C the index region must hash to (v2; 0 and unchecked for v1).
    pub index_crc: u32,
    /// Whether the header's own checksum verified (always true for v1,
    /// which has none). Strict readers reject `false`; the repair path
    /// proceeds best-effort when the remaining fields stay plausible.
    pub header_ok: bool,
}

impl Header {
    /// Header length for this version.
    pub fn header_len(&self) -> u64 {
        if self.version >= V2 {
            HEADER_V2
        } else {
            HEADER_V1
        }
    }

    /// Physical bytes of one page slot (payload + v2 CRC trailer).
    pub fn slot_bytes(&self) -> u64 {
        if self.version >= V2 {
            u64::from(self.page_bytes) + PAGE_TRAILER
        } else {
            u64::from(self.page_bytes)
        }
    }

    /// File offset of page `p`'s slot.
    pub fn page_offset(&self, p: u64) -> u64 {
        self.header_len() + p * self.slot_bytes()
    }
}

/// Decodes up to 4 little-endian bytes, zero-padding a short slice.
/// Callers slice exactly 4 bytes; padding (instead of panicking) means a
/// malformed length surfaces as a decode error downstream, never an
/// abort on a durability path.
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    let mut fixed = [0u8; 4];
    for (dst, src) in fixed.iter_mut().zip(b) {
        *dst = *src;
    }
    u32::from_le_bytes(fixed)
}

/// Decodes up to 8 little-endian bytes, zero-padding a short slice.
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    let mut fixed = [0u8; 8];
    for (dst, src) in fixed.iter_mut().zip(b) {
        *dst = *src;
    }
    u64::from_le_bytes(fixed)
}

pub(crate) fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Serializes a v2 header (the only version written).
pub(crate) fn encode_header_v2(
    m: u32,
    page_bytes: u32,
    num_pages: u64,
    index_offset: u64,
    index_crc: u32,
) -> [u8; HEADER_V2 as usize] {
    let mut h = [0u8; HEADER_V2 as usize];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&V2.to_le_bytes());
    h[12..16].copy_from_slice(&m.to_le_bytes());
    h[16..20].copy_from_slice(&page_bytes.to_le_bytes());
    h[20..28].copy_from_slice(&num_pages.to_le_bytes());
    h[28..36].copy_from_slice(&index_offset.to_le_bytes());
    h[36..40].copy_from_slice(&index_crc.to_le_bytes());
    let crc = crc32c(&h[..40]);
    h[40..44].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Reads and parses the header of an `OSSMPAGE` file, sanity-capping
/// every field against `file_len` so a corrupt or hostile header errors
/// here instead of driving huge allocations downstream. A failed v2
/// header checksum is reported via [`Header::header_ok`], not an error,
/// so the repair path can attempt a best-effort scan.
pub(crate) fn read_header<R: Read>(r: &mut R, file_len: u64) -> io::Result<Header> {
    let mut fixed = [0u8; HEADER_V1 as usize];
    r.read_exact(&mut fixed)?;
    if &fixed[..8] != MAGIC {
        return Err(bad("not an OSSM page file"));
    }
    let version = le_u32(&fixed[8..12]);
    if version != V1 && version != V2 {
        return Err(bad(format!("unsupported page-file version {version}")));
    }
    let m = le_u32(&fixed[12..16]) as usize;
    let page_bytes = le_u32(&fixed[16..20]);
    let num_pages = le_u64(&fixed[20..28]);
    let index_offset = le_u64(&fixed[28..36]);
    let (index_crc, header_ok) = if version >= V2 {
        let mut tail = [0u8; 8];
        r.read_exact(&mut tail)?;
        let index_crc = le_u32(&tail[..4]);
        let header_crc = le_u32(&tail[4..]);
        let mut covered = [0u8; 40];
        covered[..36].copy_from_slice(&fixed);
        covered[36..].copy_from_slice(&tail[..4]);
        (index_crc, crc32c(&covered) == header_crc)
    } else {
        (0, true)
    };
    let header = Header {
        version,
        m,
        page_bytes,
        num_pages,
        index_offset,
        index_crc,
        header_ok,
    };
    if m > MAX_ITEMS {
        return Err(bad(format!(
            "implausible item domain m = {m} (cap {MAX_ITEMS})"
        )));
    }
    if !(16..=MAX_PAGE_BYTES).contains(&page_bytes) {
        return Err(bad(format!("implausible page size {page_bytes}")));
    }
    let pages_end = num_pages
        .checked_mul(header.slot_bytes())
        .and_then(|b| b.checked_add(header.header_len()))
        .ok_or_else(|| bad("page region overflows the file offset space"))?;
    if index_offset != pages_end {
        return Err(bad(format!(
            "index offset {index_offset} disagrees with {num_pages} pages ending at {pages_end}"
        )));
    }
    if index_offset > file_len {
        return Err(bad(format!(
            "header claims {num_pages} pages ({index_offset} bytes) but the file has {file_len}"
        )));
    }
    Ok(header)
}

/// Serializes one page's transactions into its fixed-size payload.
/// Returns `None` when the transactions exceed `page_bytes` (the caller
/// rejects oversized transactions before ever buffering them).
pub(crate) fn encode_page_payload(txs: &[Itemset], page_bytes: usize) -> Option<Vec<u8>> {
    let mut buf = Vec::with_capacity(page_bytes);
    buf.extend_from_slice(&(txs.len() as u32).to_le_bytes());
    for t in txs {
        buf.extend_from_slice(&(t.len() as u32).to_le_bytes());
        for item in t.items() {
            buf.extend_from_slice(&item.0.to_le_bytes());
        }
    }
    if buf.len() > page_bytes {
        return None;
    }
    buf.resize(page_bytes, 0);
    Some(buf)
}

/// Decodes a page payload into its transactions, validating structure and
/// the item domain.
pub(crate) fn decode_page(buf: &[u8], m: usize) -> io::Result<Vec<Itemset>> {
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> io::Result<u32> {
        let end = *pos + 4;
        if end > buf.len() {
            return Err(bad("page truncated"));
        }
        let v = le_u32(&buf[*pos..end]);
        *pos = end;
        Ok(v)
    };
    let n = take_u32(&mut pos)?;
    if n as usize > buf.len() / 4 {
        // Each transaction costs at least 4 payload bytes (its len word —
        // empty transactions are legal); an n beyond that is corruption.
        return Err(bad(format!("page claims {n} transactions")));
    }
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let len = take_u32(&mut pos)? as usize;
        if len > (buf.len() - pos) / 4 {
            return Err(bad(format!("transaction claims {len} items")));
        }
        let mut items = Vec::with_capacity(len);
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            let id = take_u32(&mut pos)?;
            if id as usize >= m {
                return Err(bad(format!("page references item {id} outside 0..{m}")));
            }
            if prev.is_some_and(|p| id <= p) {
                return Err(bad("page transaction items not strictly increasing"));
            }
            prev = Some(id);
            items.push(ItemId(id));
        }
        out.push(Itemset::from_sorted(items));
    }
    Ok(out)
}

/// The aggregate summary of a page's transactions (what the index stores).
pub(crate) fn summarize(txs: &[Itemset]) -> PageSummary {
    let mut counts: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    for t in txs {
        for item in t.items() {
            *counts.entry(item.0).or_insert(0) += 1;
        }
    }
    let mut supports: Vec<(u32, u32)> = counts.into_iter().collect();
    supports.sort_unstable();
    PageSummary {
        transactions: txs.len() as u32,
        supports,
    }
}

/// Serializes the per-page aggregate index.
pub(crate) fn encode_index(summaries: &[PageSummary]) -> Vec<u8> {
    let mut buf = Vec::new();
    for s in summaries {
        buf.extend_from_slice(&s.transactions.to_le_bytes());
        buf.extend_from_slice(&(s.supports.len() as u32).to_le_bytes());
        for &(item, count) in &s.supports {
            buf.extend_from_slice(&item.to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
        }
    }
    buf
}

/// Parses the index region. Rejects out-of-domain items, summaries wider
/// than the item domain, and trailing bytes (which a clean writer never
/// leaves and truncation/corruption commonly produce).
pub(crate) fn parse_index(bytes: &[u8], m: usize, num_pages: u64) -> io::Result<Vec<PageSummary>> {
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> io::Result<u32> {
        let end = *pos + 4;
        if end > bytes.len() {
            return Err(bad("index truncated"));
        }
        let v = le_u32(&bytes[*pos..end]);
        *pos = end;
        Ok(v)
    };
    let mut summaries = Vec::with_capacity(usize::try_from(num_pages).unwrap_or(0).min(1 << 20));
    for _ in 0..num_pages {
        let transactions = take_u32(&mut pos)?;
        let entries = take_u32(&mut pos)? as usize;
        if entries > m {
            return Err(bad(format!(
                "index summary claims {entries} distinct items over a domain of {m}"
            )));
        }
        let mut supports = Vec::with_capacity(entries);
        let mut prev: Option<u32> = None;
        for _ in 0..entries {
            let item = take_u32(&mut pos)?;
            let count = take_u32(&mut pos)?;
            if item as usize >= m {
                return Err(bad(format!("index references item {item} outside 0..{m}")));
            }
            if prev.is_some_and(|p| item <= p) {
                return Err(bad("index summary items not strictly increasing"));
            }
            prev = Some(item);
            supports.push((item, count));
        }
        summaries.push(PageSummary {
            transactions,
            supports,
        });
    }
    if pos != bytes.len() {
        return Err(bad(format!(
            "{} trailing bytes after the index",
            bytes.len() - pos
        )));
    }
    Ok(summaries)
}
