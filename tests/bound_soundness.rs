//! Soundness and monotonicity of the equation-(1) upper bound.
//!
//! Whatever the segmentation — random, adversarial, or degenerate — the
//! OSSM bound must never undercount any itemset's support (that is what
//! makes OSSM filtering lossless), and refining a segmentation must never
//! loosen the bound.

mod testkit;

use rand::rngs::StdRng;
use rand::Rng;
use testkit::{case_rng, mask_itemset};

use ossm_core::{Aggregate, Ossm, Segmentation};
use ossm_data::{Dataset, ItemId, Itemset, PageStore};

const CASES: u64 = 64;

/// Random dataset + random transaction-to-segment assignment.
fn assigned_dataset(rng: &mut StdRng) -> (Dataset, Vec<usize>, usize) {
    let m = rng.gen_range(2usize..=8);
    let segs = rng.gen_range(1usize..=5);
    let n = rng.gen_range(1usize..40);
    let mut transactions = Vec::with_capacity(n);
    let mut assignment = Vec::with_capacity(n);
    for _ in 0..n {
        transactions.push(mask_itemset(m, rng.gen_range(1u32..(1 << m))));
        assignment.push(rng.gen_range(0..segs));
    }
    (Dataset::new(m, transactions), assignment, segs)
}

#[test]
fn bound_never_undercounts() {
    for case in 0..CASES {
        let (d, assignment, segs) = assigned_dataset(&mut case_rng(0xB0B1, case));
        let ossm = Ossm::from_transaction_assignment(&d, &assignment, segs);
        let m = d.num_items();
        for mask in 1u32..(1u32 << m) {
            let x = mask_itemset(m, mask);
            assert!(
                ossm.upper_bound(&x) >= d.support(&x),
                "case {case}: bound {} < support {} for {}",
                ossm.upper_bound(&x),
                d.support(&x),
                x
            );
        }
    }
}

#[test]
fn refining_a_segmentation_tightens_bounds() {
    for case in 0..CASES {
        let (d, assignment, segs) = assigned_dataset(&mut case_rng(0xB0B2, case));
        // Coarse = everything in one segment; fine = the random assignment.
        let coarse = Ossm::from_transaction_assignment(&d, &vec![0; d.len()], 1);
        let fine = Ossm::from_transaction_assignment(&d, &assignment, segs);
        let m = d.num_items();
        for mask in 1u32..(1u32 << m) {
            let x = mask_itemset(m, mask);
            assert!(
                fine.upper_bound(&x) <= coarse.upper_bound(&x),
                "case {case}: refinement loosened the bound for {x}"
            );
        }
    }
}

#[test]
fn singleton_bounds_are_exact() {
    for case in 0..CASES {
        let (d, assignment, segs) = assigned_dataset(&mut case_rng(0xB0B3, case));
        let ossm = Ossm::from_transaction_assignment(&d, &assignment, segs);
        for i in 0..d.num_items() as u32 {
            let item = ItemId(i);
            assert_eq!(
                ossm.upper_bound(&Itemset::singleton(item)),
                d.support(&Itemset::singleton(item)),
                "case {case}"
            );
            assert_eq!(
                ossm.singleton_support(item),
                d.support(&Itemset::singleton(item)),
                "case {case}"
            );
        }
    }
}

#[test]
fn pair_specialization_matches_general_bound() {
    for case in 0..CASES {
        let (d, assignment, segs) = assigned_dataset(&mut case_rng(0xB0B4, case));
        let ossm = Ossm::from_transaction_assignment(&d, &assignment, segs);
        let m = d.num_items() as u32;
        for a in 0..m {
            for b in (a + 1)..m {
                assert_eq!(
                    ossm.upper_bound_pair(ItemId(a), ItemId(b)),
                    ossm.upper_bound(&Itemset::new([a, b])),
                    "case {case}: pair ({a}, {b})"
                );
            }
        }
    }
}

/// Per-transaction segments give the exact support for every itemset — the
/// paper's "hypothetical extreme case" where `n = |T|`.
#[test]
fn one_transaction_per_segment_is_exact() {
    let d = Dataset::new(
        4,
        vec![
            Itemset::new([0, 1]),
            Itemset::new([1, 2, 3]),
            Itemset::new([0, 3]),
            Itemset::new([2]),
        ],
    );
    let assignment: Vec<usize> = (0..d.len()).collect();
    let ossm = Ossm::from_transaction_assignment(&d, &assignment, d.len());
    for mask in 1u32..16 {
        let x = mask_itemset(4, mask);
        assert_eq!(ossm.upper_bound(&x), d.support(&x), "itemset {x}");
    }
}

/// The page-store construction and the aggregate construction agree.
#[test]
fn page_and_aggregate_constructions_agree() {
    let d = ossm_data::gen::QuestConfig {
        num_transactions: 300,
        num_items: 20,
        ..ossm_data::gen::QuestConfig::small()
    }
    .generate();
    let store = PageStore::with_page_count(d, 12);
    let seg = Segmentation::from_groups(
        vec![vec![0, 3, 6, 9], vec![1, 4, 7, 10], vec![2, 5, 8, 11]],
        12,
    );
    let via_pages = Ossm::from_pages(&store, &seg);
    let via_aggregates =
        Ossm::from_aggregates(seg.merge_aggregates(&Aggregate::from_pages(&store)));
    assert_eq!(via_pages, via_aggregates);
    assert_eq!(via_pages.num_transactions(), store.dataset().len() as u64);
}
