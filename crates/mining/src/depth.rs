//! A DepthProject-style depth-first miner (Agarwal, Aggarwal, Prasad [1]).
//!
//! DepthProject explores the lexicographic tree of itemsets depth-first:
//! a node's pattern `P` is extended by every frequent item greater than
//! `max(P)`, each extension's support is counted inside the node's
//! *projected* transactions, and frequent extensions recurse. It shines on
//! long patterns, where level-wise miners drown in candidates.
//!
//! Section 7 of the paper: "at each step, the algorithm generates possible
//! frequent lexicographic extensions (i.e. candidates) of a tree node and
//! tests for frequency. If an OSSM is used simultaneously, then known
//! infrequent candidates can be pruned before the frequency counting" —
//! exactly what the [`CandidateFilter`] hook does here.

use std::time::Instant;

use ossm_data::{Dataset, ItemId, Itemset};

use crate::apriori::MiningOutcome;
use crate::filter::{CandidateFilter, NoFilter};
use crate::metrics::{LevelMetrics, MiningMetrics};
use crate::support::FrequentPatterns;

/// DepthProject-style depth-first miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct DepthProject {
    /// Stop recursion below patterns of this length, if set.
    pub max_len: Option<usize>,
}

impl DepthProject {
    /// A miner with no depth limit.
    pub fn new() -> Self {
        DepthProject::default()
    }

    /// Limits the maximum pattern length mined.
    pub fn with_max_len(mut self, max_len: usize) -> Self {
        assert!(max_len > 0, "maximum pattern length must be positive");
        self.max_len = Some(max_len);
        self
    }

    /// Mines without a candidate filter.
    pub fn mine(&self, dataset: &Dataset, min_support: u64) -> MiningOutcome {
        self.mine_filtered(dataset, min_support, &NoFilter)
    }

    /// Mines with a candidate filter applied to every lexicographic
    /// extension before its frequency test.
    ///
    /// # Panics
    /// Panics if `min_support == 0`.
    pub fn mine_filtered(
        &self,
        dataset: &Dataset,
        min_support: u64,
        filter: &dyn CandidateFilter,
    ) -> MiningOutcome {
        assert!(min_support > 0, "support threshold must be at least 1");
        let start = Instant::now();
        let mut state = State {
            dataset,
            min_support,
            filter,
            patterns: FrequentPatterns::new(),
            metrics: MiningMetrics::default(),
            max_len: self.max_len,
        };

        // Root: frequent singletons, counted in one pass.
        let m = dataset.num_items();
        let singles = dataset.singleton_supports();
        let mut level1 = LevelMetrics {
            level: 1,
            generated: m as u64,
            ..Default::default()
        };
        let mut frontier: Vec<(ItemId, u64)> = Vec::new();
        for i in 0..m as u32 {
            let item = ItemId(i);
            if !state
                .filter
                .may_be_frequent(&Itemset::singleton(item), min_support)
            {
                level1.filtered_out += 1;
                continue;
            }
            level1.counted += 1;
            if singles[item.index()] >= min_support {
                frontier.push((item, singles[item.index()]));
            }
        }
        level1.frequent = frontier.len() as u64;
        state.metrics.push_level(level1);

        // All-transactions tid universe, reused by every root branch.
        let all_tids: Vec<u32> = (0..dataset.len() as u32).collect();
        for (item, sup) in frontier {
            let pattern = Itemset::singleton(item);
            state.patterns.insert(pattern.clone(), sup);
            let tids: Vec<u32> = all_tids
                .iter()
                .copied()
                .filter(|&t| dataset.transaction(t as usize).contains(item))
                .collect();
            state.expand(&pattern, &tids);
        }

        state.metrics.elapsed = start.elapsed();
        MiningOutcome {
            patterns: state.patterns,
            metrics: state.metrics,
        }
    }
}

struct State<'a> {
    dataset: &'a Dataset,
    min_support: u64,
    filter: &'a dyn CandidateFilter,
    patterns: FrequentPatterns,
    metrics: MiningMetrics,
    max_len: Option<usize>,
}

impl State<'_> {
    /// Expands the lexicographic node `pattern`, whose projected
    /// transactions are `tids`.
    fn expand(&mut self, pattern: &Itemset, tids: &[u32]) {
        let next_len = pattern.len() + 1;
        if let Some(max) = self.max_len {
            if next_len > max {
                return;
            }
        }
        let last = *pattern.items().last().expect("non-root node");
        let m = self.dataset.num_items();
        if last.index() + 1 >= m || (tids.len() as u64) < self.min_support {
            return; // no extension can be frequent
        }

        // Candidate extensions: items after `last`, OSSM-filtered before
        // the counting step.
        let mut level = LevelMetrics {
            level: next_len,
            ..Default::default()
        };
        let mut extensions: Vec<ItemId> = Vec::new();
        for e in (last.0 + 1)..m as u32 {
            let ext = ItemId(e);
            level.generated += 1;
            if self
                .filter
                .may_be_frequent(&pattern.with(ext), self.min_support)
            {
                extensions.push(ext);
            } else {
                level.filtered_out += 1;
            }
        }
        level.counted = extensions.len() as u64;
        if extensions.is_empty() {
            self.metrics.push_level(level);
            return;
        }

        // One pass over the projected transactions counts every extension.
        let mut counts = vec![0u64; extensions.len()];
        for &tid in tids {
            let t = self.dataset.transaction(tid as usize);
            for (i, &e) in extensions.iter().enumerate() {
                if t.contains(e) {
                    counts[i] += 1;
                }
            }
        }

        let mut frequent: Vec<ItemId> = Vec::new();
        for (&e, &sup) in extensions.iter().zip(&counts) {
            if sup >= self.min_support {
                frequent.push(e);
                self.patterns.insert(pattern.with(e), sup);
            }
        }
        level.frequent = frequent.len() as u64;
        self.metrics.push_level(level);

        // Recurse with each frequent extension's projected tids.
        for e in frequent {
            let child = pattern.with(e);
            let child_tids: Vec<u32> = tids
                .iter()
                .copied()
                .filter(|&t| self.dataset.transaction(t as usize).contains(e))
                .collect();
            self.expand(&child, &child_tids);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::filter::OssmFilter;
    use ossm_core::minimize_segments;
    use ossm_data::gen::{AlarmConfig, QuestConfig};

    fn quest(n: usize, m: usize) -> Dataset {
        QuestConfig {
            num_transactions: n,
            num_items: m,
            ..QuestConfig::small()
        }
        .generate()
    }

    #[test]
    fn agrees_with_apriori() {
        let d = quest(300, 25);
        for min_support in [5, 10, 20] {
            let a = Apriori::new().mine(&d, min_support);
            let dp = DepthProject::new().mine(&d, min_support);
            assert_eq!(a.patterns, dp.patterns, "min_support {min_support}");
        }
    }

    #[test]
    fn agrees_on_long_pattern_data() {
        // Alarm storms make long frequent patterns — DepthProject's home turf.
        let d = AlarmConfig {
            num_windows: 300,
            num_alarm_types: 20,
            ..AlarmConfig::small()
        }
        .generate();
        let a = Apriori::new().mine(&d, 20);
        let dp = DepthProject::new().mine(&d, 20);
        assert_eq!(a.patterns, dp.patterns);
        assert!(
            a.patterns.max_len() >= 3,
            "want long patterns to make the test meaningful"
        );
    }

    #[test]
    fn ossm_pruning_is_lossless_and_reduces_tests() {
        let d = quest(250, 30);
        let min = minimize_segments(&d);
        let plain = DepthProject::new().mine(&d, 6);
        let pruned = DepthProject::new().mine_filtered(&d, 6, &OssmFilter::new(&min.ossm));
        assert_eq!(plain.patterns, pruned.patterns);
        assert!(pruned.metrics.total_counted() <= plain.metrics.total_counted());
        assert!(
            pruned.metrics.total_filtered_out() > 0,
            "the exact OSSM must prune something"
        );
    }

    #[test]
    fn max_len_limits_depth() {
        let d = quest(200, 20);
        let dp = DepthProject::new().with_max_len(2).mine(&d, 4);
        assert!(dp.patterns.max_len() <= 2);
        let full = DepthProject::new().mine(&d, 4);
        for (p, s) in dp.patterns.iter() {
            assert_eq!(full.patterns.support_of(p), Some(s));
        }
    }

    #[test]
    fn empty_result_when_threshold_too_high() {
        let d = quest(50, 10);
        let dp = DepthProject::new().mine(&d, 1000);
        assert!(dp.patterns.is_empty());
    }
}
