//! Telecom-alarm sequence generator — the substitute for the proprietary
//! Nokia data set.
//!
//! The paper's first data set is "a real data set from Nokia on a sequence
//! file containing about 5000 transactions of about 200 distinct types of
//! telecommunications network alarms", which cannot be redistributed. We
//! simulate the closest public description of such data (the episode-mining
//! setting of Mannila–Toivonen–Verkamo [13], which the paper cites for the
//! windowed-transaction framing):
//!
//! * a background process emits alarms of random types at Poisson times;
//! * *alarm storms* occur now and then: a fault in one network element
//!   triggers a correlated set of alarm types that fire densely for the
//!   duration of the storm (this is the temporal skew that makes the data
//!   "real-life", i.e. non-random, which is what the OSSM exploits);
//! * the event sequence is cut into fixed-width time windows; the set of
//!   distinct alarm types inside a window is one transaction (footnote 1 of
//!   the paper: "in the case of episodes, a transaction corresponds to a
//!   sequence of events in a sliding time window").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::dist::{exponential, poisson};
use crate::item::Itemset;
use crate::transaction::Dataset;

/// Parameters of the alarm-sequence generator. Defaults match the paper's
/// description of the Nokia data: ~5000 transactions over ~200 alarm types.
#[derive(Clone, Debug)]
pub struct AlarmConfig {
    /// Number of windows (transactions) to produce.
    pub num_windows: usize,
    /// Number of distinct alarm types (the item domain).
    pub num_alarm_types: usize,
    /// Mean number of background alarms per window.
    pub background_rate: f64,
    /// Number of distinct fault signatures (correlated alarm-type groups).
    pub num_faults: usize,
    /// Mean number of alarm types in one fault signature.
    pub fault_signature_len: f64,
    /// Probability that a new storm starts in any given window.
    pub storm_start_prob: f64,
    /// Mean storm duration, in windows.
    pub storm_duration: f64,
    /// Mean number of signature alarms emitted per stormy window.
    pub storm_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AlarmConfig {
    fn default() -> Self {
        AlarmConfig {
            num_windows: 5000,
            num_alarm_types: 200,
            background_rate: 4.0,
            num_faults: 12,
            fault_signature_len: 6.0,
            storm_start_prob: 0.03,
            storm_duration: 30.0,
            storm_rate: 8.0,
            seed: 0xA1A2_2002,
        }
    }
}

impl AlarmConfig {
    /// A small configuration for unit tests and examples.
    pub fn small() -> Self {
        AlarmConfig {
            num_windows: 800,
            num_alarm_types: 60,
            num_faults: 5,
            ..Self::default()
        }
    }

    /// Generates the windowed alarm dataset.
    pub fn generate(&self) -> Dataset {
        generate(self)
    }
}

/// An in-progress alarm storm: which fault signature, and windows remaining.
struct Storm {
    fault: usize,
    remaining: u64,
}

/// Runs the generator. Prefer [`AlarmConfig::generate`].
pub fn generate(cfg: &AlarmConfig) -> Dataset {
    assert!(cfg.num_alarm_types > 0, "need at least one alarm type");
    assert!(cfg.num_faults > 0, "need at least one fault signature");
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Draw the fault signatures: correlated groups of alarm types.
    let signatures: Vec<Vec<u32>> = (0..cfg.num_faults)
        .map(|_| {
            let len = ((poisson(&mut rng, cfg.fault_signature_len - 1.0) + 1) as usize)
                .min(cfg.num_alarm_types);
            let mut sig = Vec::with_capacity(len);
            while sig.len() < len {
                let a = rng.gen_range(0..cfg.num_alarm_types as u32);
                if !sig.contains(&a) {
                    sig.push(a);
                }
            }
            sig
        })
        .collect();

    let mut storms: Vec<Storm> = Vec::new();
    let mut windows = Vec::with_capacity(cfg.num_windows);
    for _ in 0..cfg.num_windows {
        // Maybe a new storm begins.
        if rng.gen::<f64>() < cfg.storm_start_prob {
            let duration = exponential(&mut rng, cfg.storm_duration).ceil() as u64;
            storms.push(Storm {
                fault: rng.gen_range(0..cfg.num_faults),
                remaining: duration.max(1),
            });
        }
        let mut alarms: Vec<u32> = Vec::new();
        // Background noise.
        for _ in 0..poisson(&mut rng, cfg.background_rate) {
            alarms.push(rng.gen_range(0..cfg.num_alarm_types as u32));
        }
        // Storm emissions: each active storm fires its signature densely.
        for storm in &mut storms {
            let sig = &signatures[storm.fault];
            for _ in 0..poisson(&mut rng, cfg.storm_rate) {
                alarms.push(sig[rng.gen_range(0..sig.len())]);
            }
            storm.remaining -= 1;
        }
        storms.retain(|s| s.remaining > 0);
        // The window's transaction is the set of distinct alarm types seen.
        windows.push(Itemset::new(alarms));
    }
    Dataset::new(cfg.num_alarm_types, windows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = AlarmConfig {
            num_windows: 300,
            ..AlarmConfig::small()
        };
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn shape_matches_configuration() {
        let cfg = AlarmConfig::small();
        let d = cfg.generate();
        assert_eq!(d.len(), cfg.num_windows);
        assert_eq!(d.num_items(), cfg.num_alarm_types);
    }

    #[test]
    fn default_matches_paper_description() {
        let cfg = AlarmConfig::default();
        assert_eq!(cfg.num_windows, 5000, "about 5000 transactions");
        assert_eq!(cfg.num_alarm_types, 200, "about 200 distinct alarm types");
    }

    #[test]
    fn storms_create_cooccurring_signature_alarms() {
        // During storms the signature alarms co-occur far above independence.
        let cfg = AlarmConfig {
            num_windows: 2000,
            ..AlarmConfig::small()
        };
        let d = cfg.generate();
        let singles = d.singleton_supports();
        let n = d.len() as f64;
        let mut top: Vec<usize> = (0..d.num_items()).collect();
        top.sort_by_key(|&i| std::cmp::Reverse(singles[i]));
        top.truncate(12);
        let mut best_lift = 0.0f64;
        for (ai, &a) in top.iter().enumerate() {
            for &b in &top[ai + 1..] {
                let obs = d.support(&Itemset::new([a as u32, b as u32])) as f64 / n;
                let exp = (singles[a] as f64 / n) * (singles[b] as f64 / n);
                if exp > 0.0 {
                    best_lift = best_lift.max(obs / exp);
                }
            }
        }
        assert!(
            best_lift > 1.5,
            "expected correlated alarm pairs, best lift {best_lift}"
        );
    }

    #[test]
    fn alarm_activity_is_bursty_over_time() {
        // Total alarms per window should be visibly non-uniform: windows
        // inside storms carry far more alarms than quiet ones.
        let d = AlarmConfig {
            num_windows: 2000,
            ..AlarmConfig::small()
        }
        .generate();
        let sizes: Vec<usize> = d.transactions().iter().map(Itemset::len).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let max = *sizes.iter().max().unwrap() as f64;
        assert!(max > 2.0 * mean, "no bursts: max {max}, mean {mean}");
    }
}
