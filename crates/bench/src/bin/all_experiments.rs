//! Runs every reproduced table and figure in EXPERIMENTS.md order and
//! prints one consolidated markdown report.
//!
//! Usage: `cargo run -p ossm-bench --release --bin all-experiments --
//! [--smoke] [--pages=…] [--items=…] [--threads=N]
//! [--obs-out=BENCH_obs.json] [--trace[=chrome|folded] [PATH]]
//! [--write-experiments [--experiments-md=EXPERIMENTS.md]]`
//!
//! `--smoke` runs everything at tiny scale (seconds, debug-build friendly);
//! default scale matches the per-binary defaults.
//!
//! Alongside the markdown, the run writes `BENCH_obs.json` (override with
//! `--obs-out=PATH`, disable with `--obs-out=`): one self-describing JSON
//! line per speedup row, followed by the instrumentation snapshot
//! (counters, phase timings, histograms) — so the perf record says *why* a
//! run was fast, not just how fast. That file is what the `regress` binary
//! gates against `BENCH_baseline.json`.
//!
//! `--write-experiments` instead fills the `<!-- FIG4_REGULAR -->`,
//! `<!-- FIG4_SKEWED -->`, `<!-- FIG5 -->`, `<!-- FIG6 -->`,
//! `<!-- SEC7 -->`, and `<!-- ABLATION -->` placeholders of EXPERIMENTS.md
//! with freshly measured tables, idempotently (re-runs replace the filled
//! blocks in place).

use ossm_bench::cli::Options;
use ossm_bench::experiments::{
    fig4, fig5, fig6, obs_json_body, patch_placeholders, run_all, sec7, smoke_options,
};
use ossm_bench::{ablation, traceio};

fn main() {
    traceio::main_with_trace(|opts| {
        let run_opts = if opts.flag("smoke") {
            smoke_options()
        } else {
            opts.clone()
        };
        if opts.flag("write-experiments") {
            return write_experiments(opts, &run_opts);
        }
        let obs_out: String = opts.get("obs-out", "BENCH_obs.json".to_owned());
        let (markdown, rows) = run_all(&run_opts);
        println!("{markdown}");
        if !obs_out.is_empty() {
            match std::fs::write(&obs_out, obs_json_body(&rows)) {
                Ok(()) => eprintln!("wrote instrumentation snapshot -> {obs_out}"),
                Err(e) => {
                    eprintln!("could not write {obs_out}: {e}");
                    return 1;
                }
            }
        }
        0
    });
}

/// Measures every experiment (Figure 4 on both workloads, Figures 5–6,
/// Section 7, the ablations) and patches the results into EXPERIMENTS.md.
fn write_experiments(opts: &Options, run_opts: &Options) -> i32 {
    let path: String = opts.get("experiments-md", "EXPERIMENTS.md".to_owned());
    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read {path}: {e} (run from the workspace root or pass --experiments-md=PATH)");
            return 1;
        }
    };
    ossm_obs::registry().reset();
    eprintln!("measuring figure 4 (regular)…");
    let fig4_regular = fig4(run_opts);
    eprintln!("measuring figure 4 (skewed)…");
    let mut skewed_opts = run_opts.clone();
    skewed_opts.set("workload", "skewed");
    let fig4_skewed = fig4(&skewed_opts);
    eprintln!("measuring figure 5…");
    let fig5 = fig5(run_opts);
    eprintln!("measuring figure 6…");
    let fig6 = fig6(run_opts);
    eprintln!("measuring section 7…");
    let sec7 = sec7(run_opts);
    eprintln!("measuring ablations…");
    let ablation = ablation::all(run_opts);
    let sections: Vec<(&str, &str)> = vec![
        ("FIG4_REGULAR", fig4_regular.markdown.as_str()),
        ("FIG4_SKEWED", fig4_skewed.markdown.as_str()),
        ("FIG5", fig5.markdown.as_str()),
        ("FIG6", fig6.markdown.as_str()),
        ("SEC7", sec7.markdown.as_str()),
        ("ABLATION", ablation.as_str()),
    ];
    let patched = match patch_placeholders(&doc, &sections) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 1;
        }
    };
    if let Err(e) = std::fs::write(&path, patched) {
        eprintln!("cannot write {path}: {e}");
        return 1;
    }
    eprintln!("filled measured tables into {path}");
    0
}
