//! Histogram bucket math, valid with or without the `enabled` feature.

use ossm_obs::{bucket_index, bucket_lower_bound, NUM_BUCKETS};

#[test]
fn zero_gets_its_own_bucket() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_lower_bound(0), 0);
}

#[test]
fn power_of_two_boundaries() {
    // Bucket i ≥ 1 covers [2^(i-1), 2^i): each power of two starts a new
    // bucket, and the value just below it closes the previous one.
    for i in 1..64 {
        let lo = 1u64 << (i - 1);
        assert_eq!(bucket_index(lo), i, "2^{} must open bucket {i}", i - 1);
        assert_eq!(bucket_index(lo * 2 - 1), i, "top of bucket {i}");
        assert_eq!(bucket_lower_bound(i), lo);
    }
}

#[test]
fn extremes_stay_in_range() {
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    assert_eq!(bucket_lower_bound(NUM_BUCKETS - 1), 1u64 << 63);
}

#[test]
fn index_is_monotone_in_the_value() {
    let mut last = 0;
    for v in [0u64, 1, 2, 3, 5, 8, 100, 1 << 20, u64::MAX / 2, u64::MAX] {
        let i = bucket_index(v);
        assert!(i >= last, "bucket_index must be monotone ({v} -> {i})");
        last = i;
    }
}

#[test]
fn every_value_lands_at_or_above_its_bucket_lower_bound() {
    for v in [0u64, 1, 2, 7, 63, 64, 999, 1 << 33, u64::MAX] {
        let i = bucket_index(v);
        assert!(
            bucket_lower_bound(i) <= v,
            "{v} below its bucket's lower bound"
        );
        if i + 1 < NUM_BUCKETS {
            assert!(v < bucket_lower_bound(i + 1), "{v} reaches the next bucket");
        }
    }
}
