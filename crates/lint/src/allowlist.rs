//! Grandfathered-violation allowlist.
//!
//! `crates/lint/allowlist.txt` lets the tool land green on a tree with
//! known, accepted findings and then *ratchet down*: removing a line turns
//! the finding back into a failure, and stale lines (matching nothing) are
//! themselves an error, so the file can only shrink as code is fixed.
//!
//! Format — one entry per line, `#` comments:
//!
//! ```text
//! <rule> <path> <key>
//! R4 crates/core/src/loss.rs weighted_loss.sup
//! ```
//!
//! Keys come from the diagnostics themselves (function-scoped, never line
//! numbers) so entries survive unrelated edits. Policy note: rules R1 and
//! R2 must be fixed, not allowlisted — CI rejects entries for them.

use crate::diag::Diagnostic;

/// One parsed allowlist entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Repo-relative path it applies to.
    pub path: String,
    /// Diagnostic key it matches.
    pub key: String,
}

/// Parsed allowlist plus use tracking for the stale-entry check.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<Entry>,
}

impl Allowlist {
    /// Parses the allowlist text. Malformed lines are reported as errors
    /// (an allowlist that silently drops lines would un-suppress nothing
    /// and suppress nothing predictable).
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), Some(key), None) => entries.push(Entry {
                    rule: rule.to_owned(),
                    path: path.to_owned(),
                    key: key.to_owned(),
                }),
                _ => {
                    return Err(format!(
                        "allowlist line {}: expected `<rule> <path> <key>`, got {line:?}",
                        n + 1
                    ))
                }
            }
        }
        Ok(Allowlist { entries })
    }

    /// The parsed entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Splits diagnostics into (kept, suppressed-count) and returns any
    /// stale entries that matched nothing.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, usize, Vec<Entry>) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for d in diags {
            let hit = self
                .entries
                .iter()
                .position(|e| e.rule == d.rule && e.path == d.path && e.key == d.key);
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed += 1;
                }
                None => kept.push(d),
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|(_, u)| !**u)
            .map(|(e, _)| e.clone())
            .collect();
        (kept, suppressed, stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, path: &str, key: &str) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.into(),
            line: 1,
            key: key.into(),
            message: "m".into(),
        }
    }

    #[test]
    fn suppresses_matching_and_reports_stale() {
        let a = Allowlist::parse(
            "# comment\nR4 crates/core/src/x.rs f.sup\nR5 crates/data/src/y.rs <file>.magic\n",
        )
        .expect("parse");
        let (kept, suppressed, stale) = a.apply(vec![
            diag("R4", "crates/core/src/x.rs", "f.sup"),
            diag("R4", "crates/core/src/x.rs", "g.sup"),
        ]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].key, "g.sup");
        assert_eq!(suppressed, 1);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "R5");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Allowlist::parse("R1 only-two-fields\n").is_err());
        assert!(Allowlist::parse("R1 a b c-too-many\n").is_err());
    }
}
