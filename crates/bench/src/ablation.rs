//! Ablation studies for the design decisions DESIGN.md §6 calls out.
//!
//! Unlike the Criterion benches (which time code), these studies measure
//! *quality* and *work*, which Criterion cannot express:
//!
//! * **A1 (loss evaluation)** — wall time of the paper's O(m²) pair loop
//!   vs the sorted O(m log m) identity, at paper-scale m, plus equality
//!   spot-checks.
//! * **A3 (heuristic quality)** — eq. (2) loss of Greedy / RC / Random /
//!   hybrids against the *exhaustive optimum* on small page counts, where
//!   the optimum is computable (Example 4's combinatorics).
//! * **A4 (lossless pre-pass)** — effect of the Lemma 1 group-by-
//!   configuration pre-pass on final loss.
//! * **A5 (incremental vs rebuild)** — bound quality of the streaming
//!   appender against a same-budget full rebuild.

use std::fmt::Write as _;

use ossm_core::seg::{
    hybrid::random_greedy, Greedy, Optimal, Random, RandomClosest, SegmentationAlgorithm,
};
use ossm_core::{Aggregate, IncrementalOssm, LossCalculator, Ossm, OssmBuilder, Strategy};
use ossm_data::Itemset;

use crate::cli::Options;
use crate::runner::timed;
use crate::table::{fmt_duration, Table};
use crate::workloads::{Workload, WorkloadKind};

/// A1: naive vs sorted loss evaluation timing.
pub fn loss_evaluation(opts: &Options) -> String {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Ablation A1 — equation (2) evaluation: O(m²) vs O(m log m)\n"
    );
    let mut table = Table::new(["m", "naive pair loop", "sorted identity", "ratio"]);
    let seed: u64 = opts.get("seed", 7);
    let mut rng = StdRng::seed_from_u64(seed);
    for m in [100usize, 400, 1000, 2000] {
        let a = Aggregate::new((0..m).map(|_| rng.gen_range(0..1000)).collect(), 1000);
        let b = Aggregate::new((0..m).map(|_| rng.gen_range(0..1000)).collect(), 1000);
        let naive_calc = LossCalculator::all_items().with_naive_evaluation();
        let fast_calc = LossCalculator::all_items();
        // Repeat to get measurable times.
        let reps = 50;
        let (t_naive, naive) = timed(|| {
            (0..reps)
                .map(|_| naive_calc.merge_loss(&a, &b))
                .max()
                .unwrap_or(0)
        });
        let (t_fast, fast) = timed(|| {
            (0..reps)
                .map(|_| fast_calc.merge_loss(&a, &b))
                .max()
                .unwrap_or(0)
        });
        assert_eq!(naive, fast, "the two evaluations must agree");
        table.row([
            m.to_string(),
            fmt_duration(t_naive / reps),
            fmt_duration(t_fast / reps),
            format!(
                "{:.1}x",
                t_naive.as_secs_f64() / t_fast.as_secs_f64().max(1e-12)
            ),
        ]);
    }
    out.push_str(&table.to_markdown());
    out
}

/// A3: heuristic loss vs the exhaustive optimum on small inputs.
pub fn heuristic_quality(opts: &Options) -> String {
    let items: usize = opts.get("items", 60);
    let trials: usize = opts.get("trials", 8);
    let seed: u64 = opts.get("seed", 3);
    let calc = LossCalculator::all_items();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Ablation A3 — heuristic loss vs exhaustive optimum\n\n\
         {trials} trials, p = 9 pages of skewed-synthetic data, n_user = 3, m = {items}. \
         Cells: total eq. (2) loss relative to optimal (1.00 = optimal).\n"
    );
    let mut table = Table::new([
        "trial",
        "Optimal",
        "Greedy",
        "RC",
        "Random",
        "Random-Greedy",
    ]);
    let mut sums = [0.0f64; 4];
    for t in 0..trials {
        let w = Workload {
            kind: WorkloadKind::Skewed,
            pages: 9,
            items,
            seed: seed + t as u64,
        };
        let inputs = Aggregate::from_pages(&w.store());
        let opt_loss = calc.segmentation_loss(&inputs, &Optimal::default().segment(&inputs, 3));
        let rel = |algo: &dyn SegmentationAlgorithm| -> f64 {
            let loss = calc.segmentation_loss(&inputs, &algo.segment(&inputs, 3));
            if opt_loss == 0 {
                if loss == 0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                loss as f64 / opt_loss as f64
            }
        };
        let g = rel(&Greedy::default());
        let rc = rel(&RandomClosest::new(calc.clone(), seed + t as u64));
        let rnd = rel(&Random::new(seed + t as u64));
        let hyb = rel(&random_greedy(calc.clone(), 6, seed + t as u64));
        sums[0] += g;
        sums[1] += rc;
        sums[2] += rnd;
        sums[3] += hyb;
        table.row([
            t.to_string(),
            opt_loss.to_string(),
            format!("{g:.2}"),
            format!("{rc:.2}"),
            format!("{rnd:.2}"),
            format!("{hyb:.2}"),
        ]);
    }
    table.row([
        "mean".to_owned(),
        "1.00".to_owned(),
        format!("{:.2}", sums[0] / trials as f64),
        format!("{:.2}", sums[1] / trials as f64),
        format!("{:.2}", sums[2] / trials as f64),
        format!("{:.2}", sums[3] / trials as f64),
    ]);
    out.push_str(&table.to_markdown());
    out
}

/// A4: effect of the Lemma 1 lossless pre-pass.
pub fn prepass_effect(opts: &Options) -> String {
    let pages: usize = opts.get("pages", 40);
    let items: usize = opts.get("items", 100);
    let n_user: usize = opts.get("nuser", 6);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Ablation A4 — Lemma 1 group-by-configuration pre-pass\n\n\
         skewed-synthetic, p = {pages}, m = {items}, n_user = {n_user}. \
         Final eq. (2) loss with and without the lossless pre-pass.\n"
    );
    let mut table = Table::new(["Strategy", "Loss without pre-pass", "Loss with pre-pass"]);
    let store = Workload::skewed(pages, items).store();
    for strategy in [Strategy::Random, Strategy::Rc, Strategy::Greedy] {
        let with = OssmBuilder::new(n_user)
            .strategy(strategy)
            .lossless_prepass(true)
            .build(&store)
            .1;
        let without = OssmBuilder::new(n_user)
            .strategy(strategy)
            .lossless_prepass(false)
            .build(&store)
            .1;
        table.row([
            format!("{strategy:?}"),
            without.total_loss.to_string(),
            with.total_loss.to_string(),
        ]);
    }
    out.push_str(&table.to_markdown());
    out
}

/// A5: incremental appends vs full rebuild, at equal segment budget.
pub fn incremental_vs_rebuild(opts: &Options) -> String {
    let pages: usize = opts.get("pages", 60);
    let items: usize = opts.get("items", 100);
    let n_user: usize = opts.get("nuser", 8);
    let store = Workload::skewed(pages, items).store();
    let min_support = store.dataset().absolute_threshold(0.01);

    let mut inc = IncrementalOssm::new(n_user, LossCalculator::all_items())
        .expect("segment budget is positive");
    inc.append_store(&store);
    let streamed = inc.snapshot();
    let (rebuilt, _) = OssmBuilder::new(n_user)
        .strategy(Strategy::Greedy)
        .build(&store);
    let single = Ossm::single_segment(&store);

    // Compare total bound slack over all frequent-item pairs.
    let totals = store.total_supports();
    let frequent: Vec<u32> = (0..items as u32)
        .filter(|&i| totals[i as usize] >= min_support)
        .collect();
    let slack = |map: &Ossm| -> u64 {
        let mut s = 0u64;
        for (i, &a) in frequent.iter().enumerate() {
            for &b in &frequent[i + 1..] {
                let x = Itemset::new([a, b]);
                s += map.upper_bound(&x) - store.dataset().support(&x);
            }
        }
        s
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Ablation A5 — incremental appends vs full rebuild\n\n\
         skewed-synthetic, p = {pages}, m = {items}, budget {n_user} segments. \
         Total bound slack (Σ ub − sup) over frequent-item pairs; lower is tighter.\n"
    );
    let mut table = Table::new(["Construction", "Total bound slack"]);
    table.row([
        "single segment (no OSSM)".to_owned(),
        slack(&single).to_string(),
    ]);
    table.row([
        "incremental appends".to_owned(),
        slack(&streamed).to_string(),
    ]);
    table.row([
        "full Greedy rebuild".to_owned(),
        slack(&rebuilt).to_string(),
    ]);
    out.push_str(&table.to_markdown());
    out
}

/// All ablations in order.
pub fn all(opts: &Options) -> String {
    let mut out = String::new();
    for section in [
        loss_evaluation(opts),
        heuristic_quality(opts),
        prepass_effect(opts),
        incremental_vs_rebuild(opts),
    ] {
        out.push_str(&section);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Options {
        Options::parse(
            ["--items=20", "--trials=2", "--pages=10", "--nuser=3"]
                .iter()
                .map(|s| (*s).to_owned()),
        )
    }

    #[test]
    fn loss_evaluation_reports_agreeing_methods() {
        let r = loss_evaluation(&tiny());
        assert!(r.contains("O(m²) vs O(m log m)"));
        assert!(r.contains("2000"));
    }

    #[test]
    fn heuristic_quality_reports_relative_losses() {
        let r = heuristic_quality(&tiny());
        assert!(r.contains("mean"));
        assert!(r.contains("Optimal"));
    }

    #[test]
    fn prepass_and_incremental_sections_render() {
        assert!(prepass_effect(&tiny()).contains("pre-pass"));
        assert!(incremental_vs_rebuild(&tiny()).contains("bound slack"));
    }
}
