//! `ossm-alloc` — a counting [`GlobalAlloc`] wrapper around the system
//! allocator that reports every allocation and deallocation to
//! [`ossm_obs::alloc`], where bytes are attributed to the subsystem
//! scope open on the current thread (see `ossm_obs::alloc_scope`).
//!
//! Opt-in: the binary crate enables it behind the `obs-alloc` feature
//! and installs it once:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ossm_alloc::CountingAlloc = ossm_alloc::CountingAlloc::new();
//! ```
//!
//! The hooks are lock-free and never allocate, so installing the wrapper
//! is safe from the very first allocation of the process. Overhead is
//! two relaxed atomic adds and one thread-local read per call — real,
//! which is why the feature is opt-in rather than default.
//!
//! This is the workspace's single sanctioned `unsafe` site: wrapping the
//! system allocator cannot be expressed safely, so this crate opts out
//! of the workspace-level `forbid(unsafe_code)` and instead carries a
//! root-level `deny` with one scoped, documented `allow`.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::alloc::{GlobalAlloc, Layout, System};

/// The system allocator, with every call reported to `ossm_obs::alloc`.
pub struct CountingAlloc;

impl CountingAlloc {
    /// A counting allocator. `const`, so it can initialize the
    /// `#[global_allocator]` static.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract; the observation hooks run strictly after a
// successful allocation / before a deallocation, never touch the
// returned memory, and never allocate themselves (plain atomics and a
// thread-local read), so they cannot re-enter the allocator.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            ossm_obs::alloc::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        ossm_obs::alloc::on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            ossm_obs::alloc::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            ossm_obs::alloc::on_dealloc(layout.size());
            ossm_obs::alloc::on_alloc(new_size);
        }
        new_ptr
    }
}
