//@path: crates/data/src/disk.rs
//@expect: R1
//! Seeded violation for rule R1: an `unwrap()` (and a `panic!`) on a
//! durability path, outside any `#[cfg(test)]` region. The lint must
//! flag both; the same calls inside the test mod below must stay clean.

use std::fs::File;

pub fn read_header(path: &str) -> u32 {
    let _f = File::open(path).unwrap();
    if path.is_empty() {
        panic!("empty path");
    }
    0
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Result<u32, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
